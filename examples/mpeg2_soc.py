#!/usr/bin/env python3
"""The MPEG-2 codec SoC case study (paper §5, final paragraph).

The paper validates its model by exploring the design space of "a video
MPEG-2 compressing and decompressing SoC ... 18 tasks implemented on six
processors, three of them software processors with a RTOS model".  This
example runs the synthetic equivalent and performs a small design-space
exploration over the three knobs the paper highlights:

* the **scheduling policy** of the software processors,
* the **RTOS overhead** magnitudes (processor / RTOS change),
* the **implementation technique** (procedural vs threaded engines --
  identical results, different simulation cost).

Run:  python examples/mpeg2_soc.py
"""

import time

from repro.kernel.time import US, format_time
from repro.workloads import Mpeg2Soc

FRAMES = 24


def run_variant(label: str, **kwargs) -> dict:
    start = time.perf_counter()
    soc = Mpeg2Soc(frames=FRAMES, seed=0, **kwargs)
    soc.run()
    wall = time.perf_counter() - start
    info = soc.summary()
    e2e = soc.latencies("end_to_end")
    return {
        "label": label,
        "fps": info["throughput_fps"],
        "mean_e2e": info["mean_e2e_latency"],
        "max_e2e": info["max_e2e_latency"],
        "enc_util": info["processors"]["DSP_enc"]["utilization"],
        "preemptions": sum(
            p["preemptions"] for p in info["processors"].values()
        ),
        "switches": soc.system.sim.process_switch_count,
        "wall": wall,
        "frames": info["frames_completed"],
    }


def main() -> None:
    print(f"MPEG-2 SoC design-space exploration ({FRAMES} frames)\n")
    baseline = run_variant("baseline (prio preemptive, 5us overheads)")
    variants = [
        baseline,
        run_variant("zero-cost RTOS", scheduling_duration=0,
                    context_load_duration=0, context_save_duration=0),
        run_variant("slow RTOS (50us each)", scheduling_duration=50 * US,
                    context_load_duration=50 * US,
                    context_save_duration=50 * US),
        run_variant("FIFO scheduling", policy="fifo"),
        run_variant("round robin 2ms", policy="round_robin",
                    time_slice=2000 * US),
        run_variant("threaded engine (paper §4.1)", engine="threaded"),
    ]

    header = (f"{'variant':38} {'fps':>6} {'mean e2e':>10} {'max e2e':>10} "
              f"{'enc util':>9} {'preempt':>8} {'switches':>9} {'wall s':>7}")
    print(header)
    print("-" * len(header))
    for v in variants:
        print(
            f"{v['label']:38} {v['fps']:6.2f} "
            f"{format_time(v['mean_e2e'] or 0):>10} "
            f"{format_time(v['max_e2e'] or 0):>10} "
            f"{v['enc_util']:9.2%} {v['preemptions']:8d} "
            f"{v['switches']:9d} {v['wall']:7.3f}"
        )

    print("\nobservations (the shape the paper's DSE relies on):")
    print(" * RTOS overheads lengthen latency monotonically;")
    print(" * policy changes reshuffle preemption counts and latencies;")
    print(" * the threaded engine reproduces the baseline numbers exactly")
    threaded = variants[-1]
    assert threaded["mean_e2e"] == baseline["mean_e2e"]
    print(f"   while needing {threaded['switches'] - baseline['switches']} "
          "more simulation thread switches (the §4 efficiency argument).")


if __name__ == "__main__":
    main()
