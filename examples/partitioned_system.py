#!/usr/bin/env python3
"""Time-partitioned scheduling: a custom policy at work (paper §3.1).

The paper's model makes the scheduling policy generic; this example uses
that extension point for something commercial RTOSes ship as a major
feature: ARINC-653-style time partitioning.  A flight-control partition
and a cabin partition share one CPU under a cyclic major frame; a
background task soaks up whatever is left.  The TimeLine shows tasks cut
at exact window boundaries.

Run:  python examples/partitioned_system.py
"""

from repro.kernel.time import MS, format_time
from repro.mcse import System
from repro.rtos import TimePartitionPolicy
from repro.trace import TimelineChart, TraceRecorder

MAJOR_FRAME = [("flight", 5 * MS), ("cabin", 3 * MS)]


def main() -> None:
    system = System("partitioned")
    recorder = TraceRecorder(system.sim)
    policy = TimePartitionPolicy(MAJOR_FRAME)
    cpu = system.processor("cpu", policy=policy)

    def periodic(work, period, jobs):
        def body(fn):
            release = 0
            for _ in range(jobs):
                yield from fn.execute(work)
                release += period
                if system.now < release:
                    yield from fn.delay(release - system.now)

        return body

    def batch(work):
        def body(fn):
            yield from fn.execute(work)

        return body

    flight = system.function(
        "flight_ctl", periodic(3 * MS, 8 * MS, 5), priority=9
    )
    flight.partition = "flight"
    nav = system.function("nav", periodic(1 * MS, 8 * MS, 5), priority=5)
    nav.partition = "flight"
    cabin = system.function(
        "cabin_ui", periodic(2 * MS, 8 * MS, 5), priority=5
    )
    cabin.partition = "cabin"
    background = system.function("maintenance", batch(6 * MS), priority=1)
    # no partition: the maintenance task runs in any window's slack

    for fn in (flight, nav, cabin, background):
        cpu.map(fn)

    system.run(48 * MS)

    chart = TimelineChart.from_recorder(recorder)
    print(chart.render_ascii(width=96))
    print()
    print(f"major frame: {format_time(policy.major_frame)}  "
          f"({', '.join(f'{p}={format_time(d)}' for p, d in MAJOR_FRAME)})")
    print(f"window boundaries crossed: {policy.boundary_count}")
    for fn in (flight, nav, cabin, background):
        print(f"  {fn.name:12} cpu_time={format_time(fn.task.cpu_time)} "
              f"partition={getattr(fn, 'partition', '-')}")

    # isolation check: flight work never ran inside a cabin window
    from repro.analysis import state_intervals
    from repro.trace.records import TaskState

    for interval in state_intervals(recorder, "flight_ctl",
                                    TaskState.RUNNING, end_time=48 * MS):
        assert policy.window_at(interval.start) == "flight"
    print("\nisolation verified: flight tasks only ran in flight windows.")


if __name__ == "__main__":
    main()
