#!/usr/bin/env python3
"""Mutual-exclusion blocking and priority inversion (paper Figure 7).

Reproduces the paper's §5 blocking scenario: a low-priority task holds a
shared variable when a high-priority task needs it; a middle-priority
task then runs in between -- the classic priority inversion.  The paper's
remedy is "disabling preemption during access to shared data"; this
example runs the scenario four ways and compares how long the
high-priority task is delayed:

1. plain shared variable (inversion happens),
2. the paper's fix: non-preemptive critical region,
3. priority inheritance,
4. priority ceiling.

Run:  python examples/mutual_exclusion.py
"""

from repro.analysis import blocking_intervals
from repro.kernel.time import US, format_time
from repro.mcse import System
from repro.rtos import CeilingSharedVariable, InheritanceSharedVariable
from repro.trace import TimelineChart, TraceRecorder


def build(variant: str):
    """The 3-task inversion scenario with the selected remedy."""
    system = System(f"fig7_{variant}")
    recorder = TraceRecorder(system.sim)
    cpu = system.processor(
        "Processor",
        scheduling_duration=2 * US,
        context_load_duration=2 * US,
        context_save_duration=2 * US,
    )
    if variant == "inheritance":
        shared = InheritanceSharedVariable(system.sim, "SharedVar_1")
    elif variant == "ceiling":
        shared = CeilingSharedVariable(system.sim, "SharedVar_1", ceiling=9)
    else:
        shared = system.shared("SharedVar_1")
    mask = variant == "preemption_mask"
    done = {}

    def low(fn):  # Function_3-like: lowest priority, owns the resource
        yield from fn.execute(1 * US)
        yield from fn.lock(shared)      # acquired around t=17us
        if mask:
            cpu.set_preemptive(False)   # the paper's remedy
        yield from fn.execute(40 * US)  # long critical section
        yield from fn.unlock(shared)
        if mask:
            cpu.set_preemptive(True)
        yield from fn.execute(5 * US)

    def high(fn):  # Function_2-like: needs the same resource
        yield from fn.delay(30 * US)    # wakes while Low holds the lock
        yield from fn.lock(shared)      # blocks: "waiting for resource"
        yield from fn.execute(10 * US)
        yield from fn.unlock(shared)
        done["high"] = fn.sim.now

    def mid(fn):  # unrelated middle-priority work causing the inversion
        yield from fn.delay(45 * US)
        yield from fn.execute(60 * US)
        done["mid"] = fn.sim.now

    cpu.map(system.function("Low", low, priority=1))
    cpu.map(system.function("High", high, priority=9))
    cpu.map(system.function("Mid", mid, priority=5))
    if variant in ("plain", "preemption_mask"):
        # The inversion hazard is this example's whole point ("plain"
        # demonstrates it; "preemption_mask" bounds it dynamically, which
        # static analysis cannot see) -- tell `pyrtos-sc lint` so.
        system.lint_suppress = ("RTS111",)
    return system, recorder, done


def main() -> None:
    results = {}
    for variant in ("plain", "preemption_mask", "inheritance", "ceiling"):
        system, recorder, done = build(variant)
        system.run()
        blocked = blocking_intervals(recorder, "High")
        blocked_total = sum(i.duration for i in blocked)
        results[variant] = (blocked_total, done["high"], recorder)
        if variant == "plain":
            print("TimeLine with a plain shared variable "
                  "(note High stuck in 'm' while Mid runs):\n")
            chart = TimelineChart.from_recorder(recorder)
            print(chart.render_ascii(width=100))
            print()

    print(f"{'variant':18} {'High blocked for':>18} {'High finishes at':>18}")
    for variant, (blocked_total, finish, _) in results.items():
        print(f"{variant:18} {format_time(blocked_total):>18} "
              f"{format_time(finish):>18}")

    plain = results["plain"][0]
    for variant in ("preemption_mask", "inheritance", "ceiling"):
        assert results[variant][0] < plain, variant
    print("\nall three remedies bound the blocking below the plain case;")
    print("the paper's preemption-mask remedy is the simplest, the ceiling")
    print("protocol gives the tightest bound here.")


if __name__ == "__main__":
    main()
