#!/usr/bin/env python3
"""Aperiodic servers: bounding event-driven load next to periodic work.

A common real-time design question the RTOS model answers early: how
should sporadic operator commands be served next to hard periodic
control loops?  Serving them at top priority directly would ruin the
loops' response; a *server* bounds their interference.  This example
compares three designs on the same workload:

1. requests served by a top-priority handler (unbounded interference),
2. a polling server (budget at period boundaries),
3. a deferrable server (budget preserved while idle).

Run:  python examples/aperiodic_servers.py
"""

import random

from repro.kernel.time import MS, US, format_time
from repro.mcse import System
from repro.rtos.servers import DeferrableServer, PollingServer

PERIODIC_WCET = 3 * MS
PERIODIC_PERIOD = 10 * MS
REQUEST_WORK = 1 * MS
HORIZON = 200 * MS


def request_times(seed=5):
    rng = random.Random(seed)
    # a burst of commands lands at ~51ms (the stress case for bounding)
    for index in range(6):
        yield 51 * MS + index * 300 * US
    t = 60 * MS
    while True:
        t += rng.randint(3, 25) * MS
        if t >= HORIZON - 10 * MS:
            return
        yield t


def build(design: str):
    system = System(design)
    cpu = system.processor("cpu", scheduling_duration=20 * US,
                           context_load_duration=20 * US,
                           context_save_duration=20 * US)
    periodic_responses = []

    def periodic(fn):
        release = 0
        while release + PERIODIC_PERIOD <= HORIZON:
            yield from fn.execute(PERIODIC_WCET)
            periodic_responses.append(system.now - release)
            release += PERIODIC_PERIOD
            if system.now < release:
                yield from fn.delay(release - system.now)

    cpu.map(system.function("control_loop", periodic, priority=5))

    aperiodic_responses = []
    if design == "direct":
        from repro.mcse.events import CounterEvent

        arrivals = CounterEvent(system.sim, "arrivals")
        pending = []

        def handler(fn):
            while True:
                yield from fn.wait(arrivals)
                arrival = pending.pop(0)
                yield from fn.execute(REQUEST_WORK)
                aperiodic_responses.append(system.now - arrival)

        cpu.map(system.function("handler", handler, priority=9))

        def submit():
            pending.append(system.sim.now)
            arrivals.signal()

        submitter = submit
        server = None
    else:
        cls = PollingServer if design == "polling" else DeferrableServer
        server = cls(system, cpu, "server", period=10 * MS, budget=2 * MS,
                     priority=9)
        submitter = lambda: server.submit(REQUEST_WORK)

    for t in request_times():
        system.sim.schedule_callback(t, submitter)

    system.run(HORIZON)
    if server is not None:
        aperiodic_responses = [r for r in server.response_times()
                               if r is not None]
    return periodic_responses, aperiodic_responses


def main() -> None:
    print(f"{'design':12} {'periodic worst':>15} {'aperiodic mean':>15} "
          f"{'aperiodic worst':>16}")
    rows = {}
    for design in ("direct", "polling", "deferrable"):
        periodic, aperiodic = build(design)
        rows[design] = (max(periodic), aperiodic)
        mean = sum(aperiodic) / len(aperiodic) if aperiodic else 0
        worst = max(aperiodic) if aperiodic else 0
        print(f"{design:12} {format_time(max(periodic)):>15} "
              f"{format_time(round(mean)):>15} {format_time(worst):>16}")

    print("\ntakeaways:")
    print(" * direct top-priority service gives the best aperiodic response")
    print("   but the worst periodic interference;")
    print(" * the polling server bounds interference but delays requests to")
    print("   period boundaries;")
    print(" * the deferrable server keeps the bound AND serves promptly --")
    print("   the textbook trade-off, visible in one simulation each.")
    assert rows["deferrable"][0] <= rows["direct"][0]


if __name__ == "__main__":
    main()
