#!/usr/bin/env python3
"""HW/SW co-simulation: clocked hardware next to RTOS software.

The paper's headline capability: "co-simulating with SystemC hardware
and software parts, including our RTOS model and application tasks."
Here the hardware side is modeled at the register-transfer-ish level --
a clocked 3-stage filter built from method processes and signals (the
``sc_method``/``sc_signal`` substrate) -- while the software side is two
RTOS tasks on one processor. They meet at an MCSE queue, exactly like a
memory-mapped FIFO between an FPGA block and a CPU.

Run:  python examples/hw_sw_cosimulation.py
"""

from repro.kernel import Clock, Signal
from repro.kernel.time import US, format_time
from repro.mcse import System
from repro.trace import TimelineChart, TraceRecorder

CLOCK_PERIOD = 10 * US
SAMPLES = 24


def main() -> None:
    system = System("cosim")
    sim = system.sim
    recorder = TraceRecorder(sim)

    # ------------------------------------------------------------------
    # Hardware: a clocked 3-stage moving-average pipeline (RTL style)
    # ------------------------------------------------------------------
    clock = Clock(sim, "clk", period=CLOCK_PERIOD)
    stage0 = Signal(sim, "stage0", initial=0)
    stage1 = Signal(sim, "stage1", initial=0)
    stage2 = Signal(sim, "stage2", initial=0)
    sample_count = {"n": 0}
    to_sw = system.queue("hw2sw", capacity=4)

    def pipeline_on_posedge():
        # three pipeline registers shifting every clock edge
        n = sample_count["n"]
        if n >= SAMPLES:
            return
        sample_count["n"] = n + 1
        new_sample = (n * 7) % 13  # a deterministic "sensor" pattern
        stage2.write(stage1.read())
        stage1.write(stage0.read())
        stage0.write(new_sample)

    emitted = {"n": 0}

    def average_on_negedge():
        # at the falling edge the registers are stable: emit the average
        if sample_count["n"] < 3 or emitted["n"] >= SAMPLES - 2:
            return
        emitted["n"] += 1
        value = (stage0.read() + stage1.read() + stage2.read()) // 3
        if not to_sw.try_put(("avg", value)):
            drops["n"] += 1  # hardware cannot block: it drops

    drops = {"n": 0}
    sim.method(pipeline_on_posedge, sensitive=(clock.posedge,),
               name="pipeline", initialize=False)
    sim.method(average_on_negedge, sensitive=(clock.negedge,),
               name="averager", initialize=False)

    # ------------------------------------------------------------------
    # Software: two RTOS tasks consuming the hardware's output
    # ------------------------------------------------------------------
    cpu = system.processor(
        "cpu", scheduling_duration=1 * US,
        context_load_duration=1 * US, context_save_duration=1 * US,
    )
    received = []

    def dsp_task(fn):
        while len(received) < SAMPLES - 2:
            tag, value = yield from fn.read(to_sw)
            yield from fn.execute(3 * US)  # per-sample processing
            received.append(value)

    def housekeeping(fn):
        while len(received) < SAMPLES - 2:
            yield from fn.execute(2 * US)
            yield from fn.delay(40 * US)

    cpu.map(system.function("dsp", dsp_task, priority=9))
    cpu.map(system.function("housekeeping", housekeeping, priority=1))

    system.run(SAMPLES * CLOCK_PERIOD + 100 * US)

    # ------------------------------------------------------------------
    print(f"hardware clock: {format_time(CLOCK_PERIOD)} period, "
          f"{clock.cycle_count} cycles simulated")
    print(f"samples through the HW pipeline: {sample_count['n']}, "
          f"dropped at the HW/SW boundary: {drops['n']}")
    print(f"software consumed {len(received)} averaged samples; "
          f"first five: {received[:5]}")
    print(f"CPU utilization: {cpu.utilization():.2%}, "
          f"preemptions: {cpu.preemption_count}")
    print()
    chart = TimelineChart.from_recorder(recorder)
    print(chart.render_ascii(width=100))

    # the pipeline fill (2 cycles) delays the first output; after that
    # the software keeps up and nothing is dropped
    assert len(received) == SAMPLES - 2
    assert drops["n"] == 0
    # the moving average is correct for the known input pattern
    expected0 = ((0 * 7) % 13 + (1 * 7) % 13 + (2 * 7) % 13) // 3
    assert received[0] == expected0


if __name__ == "__main__":
    main()
