#!/usr/bin/env python3
"""Design-space exploration of a periodic real-time workload.

The paper's purpose statement: "provide results to help designers in
their design-space exploration and timing-constraints verification as
early as possible".  This example does both on a synthetic periodic task
set:

1. sweeps the RTOS overheads (processor/RTOS choice) and reports when
   deadlines start being missed;
2. compares scheduling policies at high utilization;
3. cross-checks the simulation against analytical response-time
   analysis (RTA);
4. demonstrates automatic timing-constraint verification (the paper's
   stated future work, implemented in :mod:`repro.analysis.constraints`).

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import (
    ConstraintSet,
    DeadlineConstraint,
    response_time_analysis,
    total_utilization,
)
from repro.kernel.time import MS, US, format_time
from repro.trace import TraceRecorder
from repro.workloads import build_periodic_system, generate_periodic_taskset

SEED = 7
HYPERPERIODS = 10


def sweep_overheads(tasks) -> None:
    print("1) RTOS-overhead sweep (priority preemptive)")
    print(f"   task-set utilization (no overheads): "
          f"{total_utilization(tasks):.2%}\n")
    print(f"   {'overhead each':>14} {'misses':>7} {'worst response':>15}")
    for overhead_us in (0, 50, 200, 500, 1000, 2000):
        overhead = overhead_us * US
        system, result = build_periodic_system(
            tasks,
            scheduling_duration=overhead,
            context_load_duration=overhead,
            context_save_duration=overhead,
        )
        system.run(200 * MS)
        worst = max(
            (result.worst_response(t.name) or 0) for t in tasks
        )
        print(f"   {format_time(overhead):>14} {result.total_misses():>7} "
              f"{format_time(worst):>15}")
    print()


def compare_policies(tasks) -> None:
    print("2) scheduling-policy comparison (500us overheads)")
    print(f"   {'policy':>22} {'misses':>7} {'preemptions':>12}")
    for policy, kwargs in (
        ("priority_preemptive", {}),
        ("fifo", {}),
        ("round_robin", {"policy_kwargs": {"time_slice": 2 * MS}}),
        ("edf", {"set_deadlines": True}),
    ):
        system, result = build_periodic_system(
            tasks,
            policy=policy,
            scheduling_duration=500 * US,
            context_load_duration=500 * US,
            context_save_duration=500 * US,
            **kwargs,
        )
        system.run(200 * MS)
        cpu = system.processors["cpu"]
        print(f"   {policy:>22} {result.total_misses():>7} "
              f"{cpu.preemption_count:>12}")
    print()


def rta_cross_check(tasks) -> None:
    print("3) simulation vs analytical RTA (zero overheads)")
    analytical = response_time_analysis(tasks)
    system, result = build_periodic_system(tasks)
    system.run(400 * MS)
    print(f"   {'task':>8} {'RTA bound':>12} {'simulated worst':>16}")
    for task in tasks:
        bound = analytical[task.name]
        worst = result.worst_response(task.name)
        marker = "==" if worst == bound else "<="
        print(f"   {task.name:>8} {format_time(bound):>12} "
              f"{format_time(worst):>14} {marker}")
    print()


def verify_constraints(tasks) -> None:
    print("4) automatic timing-constraint verification")
    system, result = build_periodic_system(
        tasks,
        scheduling_duration=200 * US,
        context_load_duration=200 * US,
        context_save_duration=200 * US,
    )
    recorder = TraceRecorder(system.sim)
    constraints = ConstraintSet()
    for task in tasks:
        constraints.add(DeadlineConstraint(task.name, task.period))
    system.run(200 * MS)
    print("   " + constraints.report(recorder).replace("\n", "\n   "))
    print()


def main() -> None:
    tasks = generate_periodic_taskset(
        5, total_utilization=0.65, seed=SEED,
        period_min=5 * MS, period_max=50 * MS,
    )
    print("task set:")
    for task in tasks:
        print(f"   {task.name}: C={format_time(task.wcet)} "
              f"T={format_time(task.period)} prio={task.priority}")
    print()
    sweep_overheads(tasks)
    compare_policies(tasks)
    rta_cross_check(tasks)
    verify_constraints(tasks)


if __name__ == "__main__":
    main()
