#!/usr/bin/env python3
"""Quickstart: the paper's §5 example, end to end.

Builds the Figure-6 system -- a hardware ``Clock`` plus three software
functions (priorities 5/3/2) on one processor running a priority-based
preemptive RTOS with 5us scheduling / context-load / context-save
durations -- then:

* prints the TimeLine chart (the paper's Figure 6),
* reproduces the paper's measurements: the 15us reaction time (1) and
  the overhead cases (a), (b), (c),
* prints the Figure-8 statistics.

Run:  python examples/quickstart.py
"""

from repro.analysis import reaction_latencies, switch_sequences
from repro.kernel.time import US, format_time
from repro.mcse import System
from repro.trace import (
    TimelineChart,
    TraceRecorder,
    format_report,
    relation_stats,
    task_stats_from_functions,
)


def build_system() -> "tuple[System, TraceRecorder]":
    system = System("fig6")
    recorder = TraceRecorder(system.sim)

    # -- relations -------------------------------------------------------
    clk = system.event("Clk", policy="fugitive")       # like sc_event
    event_1 = system.event("Event_1", policy="boolean")

    # -- the processor and its RTOS --------------------------------------
    cpu = system.processor(
        "Processor",
        policy="priority_preemptive",
        scheduling_duration=5 * US,
        context_load_duration=5 * US,
        context_save_duration=5 * US,
    )

    # -- behaviors --------------------------------------------------------
    def function_1(fn):
        yield from fn.wait(clk)            # woken by the hardware clock
        yield from fn.execute(20 * US)
        yield from fn.signal(event_1)      # wakes Function_2 (case (c))
        yield from fn.execute(10 * US)

    def function_2(fn):
        yield from fn.wait(event_1)
        yield from fn.execute(30 * US)

    def function_3(fn):
        yield from fn.execute(200 * US)    # long background computation

    def clock(fn):                          # a hardware task: not mapped
        yield from fn.delay(100 * US)
        yield from fn.signal(clk)

    cpu.map(system.function("Function_1", function_1, priority=5))
    cpu.map(system.function("Function_2", function_2, priority=3))
    cpu.map(system.function("Function_3", function_3, priority=2))
    system.function("Clock", clock)
    return system, recorder


def main() -> None:
    system, recorder = build_system()
    end = system.run()
    print(f"simulation finished at t={format_time(end)}\n")

    chart = TimelineChart.from_recorder(recorder)
    print(chart.render_ascii(width=100))
    print()

    # the paper's measurement (1): Clk -> Function_1 reaction
    latency = reaction_latencies(recorder, "Clk", "Function_1")[0]
    print(f"(1) reaction Clk -> Function_1 running : {format_time(latency)}"
          f"   (paper: 15us)")

    # overhead patterns on the processor row
    for interval, kinds in switch_sequences(recorder, "Processor"):
        label = {
            ("context_save", "scheduling", "context_load"):
                "(b) preemption: save+sched+load",
            ("scheduling", "context_load"):
                "(a) task end: sched+load",
            ("scheduling",):
                "(c) wake without preemption: sched only",
            ("context_save", "scheduling"):
                "block into idle: save+sched",
        }.get(kinds, str(kinds))
        print(f"    overhead window {format_time(interval.start):>7} .. "
              f"{format_time(interval.end):>7} = "
              f"{format_time(interval.duration):>5}  {label}")

    print()
    print(format_report(
        task_stats_from_functions(system.functions.values()),
        relation_stats(system.relations.values()),
        system.processors.values(),
    ))


if __name__ == "__main__":
    main()
