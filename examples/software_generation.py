#!/usr/bin/env python3
"""Software generation from a validated model (paper §6 future work).

"This approach has been selected for simulation efficiency reasons, but
also to ease software generation for a final implementation using
commercial RTOS.  This software generation is a goal of our future
work."

The workflow below implements it: one declarative specification is

1. **simulated** with the RTOS model (timing, TimeLine, constraints),
2. **generated** as a C application against a generic RTOS API, with a
   POSIX reference port, and
3. (if a C compiler is on PATH) **compiled and executed** natively.

Run:  python examples/software_generation.py [output_dir]
"""

import shutil
import subprocess
import sys
import tempfile

from repro.codegen import generate_c
from repro.kernel.time import format_time
from repro.mcse import build_system


def the_spec():
    """A small producer/consumer system with a supervisor."""
    return {
        "name": "generated_demo",
        "relations": [
            {"kind": "event", "name": "go", "policy": "boolean"},
            {"kind": "queue", "name": "work", "capacity": 4},
            {"kind": "shared", "name": "status", "initial": 0},
        ],
        "processors": [
            {"name": "cpu", "scheduling_duration": "2us",
             "context_load_duration": "2us", "context_save_duration": "2us"},
        ],
        "functions": [
            {"name": "supervisor", "priority": 9, "processor": "cpu",
             "script": [
                 ["execute", "5us"],
                 ["signal", "go"],
                 ["loop", 3, [["delay", "50us"], ["write_shared", "status", 1]]],
             ]},
            {"name": "producer", "priority": 5, "processor": "cpu",
             "script": [
                 ["wait", "go"],
                 ["loop", 6, [["execute", "8us"], ["write", "work", 7]]],
             ]},
            {"name": "consumer", "priority": 3, "processor": "cpu",
             "script": [
                 ["loop", 6, [["read", "work"], ["execute", "12us"]]],
             ]},
        ],
    }


def main() -> None:
    spec = the_spec()

    # 1) validate by simulation
    system = build_system(spec)
    end = system.run()
    print(f"1) simulated the model: finished at t={format_time(end)}, "
          f"{system.processors['cpu'].dispatch_count} dispatches, "
          f"{system.processors['cpu'].preemption_count} preemptions")

    # 2) generate the C application
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="pyrtos_gen_")
    paths = generate_c(spec, out_dir)
    print(f"2) generated {len(paths)} files into {out_dir}:")
    for path in paths:
        print(f"   {path}")
    app = open(f"{out_dir}/app.c").read()
    first_task = app.index("static void task_supervisor")
    print("\n   app.c excerpt:")
    for line in app[first_task:].splitlines()[:10]:
        print(f"   | {line}")

    # 3) compile and run natively when a compiler is available
    if shutil.which("cc") is None:
        print("\n3) no C compiler found on PATH; skipping native build")
        return
    subprocess.run(
        ["cc", "-O1", "app.c", "rtos_port_posix.c", "-lpthread", "-o", "app"],
        cwd=out_dir, check=True,
    )
    result = subprocess.run([f"{out_dir}/app"], timeout=30)
    print(f"\n3) native binary ran to completion "
          f"(exit code {result.returncode})")


if __name__ == "__main__":
    main()
