#!/usr/bin/env python3
"""Monte-Carlo timing analysis with stochastic execution times.

Fixed WCETs answer "can it ever miss"; shipping products also need
"how often, in practice".  This example runs a control task with a
bimodal execution time (cache hit vs miss) under interrupt interference,
across a 60-seed campaign, and reports the response-time distribution,
the p99, and the empirical deadline-miss probability -- per RTOS
overhead class, so the platform decision is made on distributions, not
single numbers.

Run:  python examples/monte_carlo.py
"""

import random

from repro.analysis import ascii_histogram, monte_carlo
from repro.kernel.time import MS, US, format_time
from repro.mcse import System
from repro.workloads import Bimodal, Constant, Normal

DEADLINE = 6 * MS
RUNS = 60

#: Control computation: 2ms nominal, 4.5ms on the slow path (15%).
COMPUTE = Bimodal(
    Normal(2 * MS, 150 * US, minimum=500 * US),
    Normal(4500 * US, 300 * US, minimum=1 * MS),
    p_first=0.85,
)


def make_experiment(overhead):
    def experiment(seed):
        system = System("mc")
        cpu = system.processor(
            "cpu",
            scheduling_duration=overhead,
            context_load_duration=overhead,
            context_save_duration=overhead,
        )
        rng = random.Random(seed)
        responses = []

        def control(fn):
            release = 0
            for _ in range(12):
                yield from fn.execute(COMPUTE.sample(rng))
                responses.append(system.now - release)
                release += 10 * MS
                if system.now < release:
                    yield from fn.delay(release - system.now)

        def interrupt_load(fn):
            while True:
                yield from fn.delay(rng.randint(1, 4) * MS)
                yield from fn.execute(rng.randint(100, 600) * US)

        cpu.map(system.function("control", control, priority=5))
        cpu.map(system.function("irq", interrupt_load, priority=9))
        system.run(130 * MS)
        return {
            "worst_response": max(responses),
            "misses": sum(1 for r in responses if r > DEADLINE),
        }

    return experiment


def main() -> None:
    print(f"{RUNS}-seed campaigns, deadline {format_time(DEADLINE)}:\n")
    print(f"{'RTOS overhead':>14} {'p50 worst':>11} {'p99 worst':>11} "
          f"{'P(any miss)':>12}")
    campaigns = {}
    for overhead_us in (0, 50, 200):
        campaign = monte_carlo(make_experiment(overhead_us * US), runs=RUNS)
        campaigns[overhead_us] = campaign
        worst = campaign["worst_response"]
        p_miss = campaign["misses"].probability(lambda m: m > 0)
        print(f"{format_time(overhead_us * US):>14} "
              f"{format_time(worst.p(50)):>11} "
              f"{format_time(worst.p(99)):>11} {p_miss:>12.2%}")

    print("\nworst-response distribution (zero-overhead RTOS):")
    print(ascii_histogram(campaigns[0]["worst_response"].values, bins=8,
                          width=40))

    # shape: overheads shift the whole distribution right
    assert (campaigns[200]["worst_response"].p(50)
            >= campaigns[0]["worst_response"].p(50))


if __name__ == "__main__":
    main()
