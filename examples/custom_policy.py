#!/usr/bin/env python3
"""Extending the generic RTOS model (paper §3.1 and §3.2).

The paper stresses two extension points of the generic model:

* "designers can also define their own policies by overloading the
  SchedulingPolicy method of our Processor class" -- shown here twice,
  once by subclassing the Processor and once with a policy object;
* the overhead parameters "can be fixed or defined by a user formula
  computed during the simulation according to the current state of the
  simulated system (number of ready tasks for example)" -- shown with an
  O(n) scheduler cost model.

The custom policy here is *shortest-job-first by declared budget*, a
policy the library does not ship.

Run:  python examples/custom_policy.py
"""

from repro.kernel.time import NS, US, format_time
from repro.mcse import System
from repro.rtos import ProceduralProcessor, SchedulingPolicy


# --------------------------------------------------------------------------
# Variant A: override the scheduling_policy method (the paper's wording)
# --------------------------------------------------------------------------
class ShortestJobFirstProcessor(ProceduralProcessor):
    """Processor whose election picks the smallest declared budget."""

    def scheduling_policy(self, ready):
        if not ready:
            return None
        return min(ready, key=lambda task: task.function.declared_budget)


# --------------------------------------------------------------------------
# Variant B: a reusable policy object with preemption logic
# --------------------------------------------------------------------------
class ShortestJobFirstPolicy(SchedulingPolicy):
    """SJF as a policy object; also preempts when a shorter job arrives."""

    name = "sjf"

    def select(self, processor, ready):
        if not ready:
            return None
        return min(ready, key=lambda task: task.function.declared_budget)

    def should_preempt(self, processor, running, candidate):
        return (
            candidate.function.declared_budget
            < running.function.declared_budget
        )


def build(cpu_factory):
    system = System("sjf_demo")
    cpu = cpu_factory(system)
    finish_order = []

    def make(tag, budget):
        def body(fn):
            fn.declared_budget = budget  # visible to the scheduler
            yield from fn.execute(budget)
            finish_order.append((tag, system.now))

        return body

    jobs = [("huge", 50 * US), ("tiny", 2 * US), ("mid", 10 * US),
            ("small", 4 * US)]
    for tag, budget in jobs:
        fn = system.function(tag, make(tag, budget))
        fn.declared_budget = budget
        cpu.map(fn)
    return system, finish_order


def main() -> None:
    # Variant A: subclassed processor
    system, order = build(
        lambda s: ShortestJobFirstProcessor(s.sim, "cpu")
    )
    system.run()
    print("A) subclassed Processor.scheduling_policy (SJF):")
    for tag, t in order:
        print(f"   {tag:6} finished at {format_time(t)}")
    assert [tag for tag, _ in order] == ["tiny", "small", "mid", "huge"]

    # Variant B: policy object on a stock processor
    system, order = build(
        lambda s: s.processor("cpu", policy=ShortestJobFirstPolicy())
    )
    system.run()
    print("\nB) SJF as a policy object:")
    for tag, t in order:
        print(f"   {tag:6} finished at {format_time(t)}")

    # Formula overheads: an O(n) scheduler on a slow core
    system = System("formula_demo")
    cpu = system.processor(
        "cpu",
        scheduling_duration=lambda c: (500 + 250 * c.ready_count) * NS,
        context_load_duration=1 * US,
        context_save_duration=1 * US,
    )
    done = []

    def worker(fn):
        yield from fn.execute(20 * US)
        done.append(system.now)

    for index in range(6):
        cpu.map(system.function(f"w{index}", worker, priority=index))
    system.run()
    print("\nC) O(n) scheduling-duration formula (cost falls as the ready"
          " queue drains):")
    print(f"   total RTOS overhead: {format_time(cpu.overhead_time)} over "
          f"{format_time(system.now)} "
          f"({cpu.overhead_ratio():.2%} of the run)")


if __name__ == "__main__":
    main()
