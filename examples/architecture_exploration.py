#!/usr/bin/env python3
"""One functional model, several architectures (paper §2).

"it is essential to take into account the implementation early on the
design process to explore efficiently the design space ... it is
necessary to simulate the system according to the platform on which it
runs."

The same MCSE functional model -- a sensor front-end feeding a filter
chain and a logger -- is elaborated against four platforms:

  A. fully concurrent (the untimed functional baseline, §2),
  B. everything on one CPU,
  C. two CPUs split front/back, linked by a queue,
  D. two CPUs linked by a shared bus (wire costs included).

Only the platform section of the spec changes; behaviors are untouched.

Run:  python examples/architecture_exploration.py
"""

from repro.baselines import build_untimed
from repro.comm import Bus, RemoteQueue
from repro.kernel.time import US, format_time
from repro.mcse import System
from repro.trace import TraceRecorder
from repro.analysis import latency_summary

SAMPLES = 30
OVERHEADS = dict(scheduling_duration=5 * US, context_load_duration=5 * US,
                 context_save_duration=5 * US)


def functional_model(system, link_queue):
    """Behaviors + relations; platform-independent."""
    raw = system.queue("raw", capacity=4)
    filtered = link_queue  # the cut point between front and back end
    latencies = []

    def sensor(fn):
        for index in range(SAMPLES):
            yield from fn.delay(100 * US)
            yield from fn.write(raw, (index, system.now))

    def filter_stage(fn):
        for _ in range(SAMPLES):
            sample = yield from fn.read(raw)
            yield from fn.execute(30 * US)
            yield from fn.write(filtered, sample)

    def analyzer(fn):
        for _ in range(SAMPLES):
            index, born = yield from fn.read(filtered)
            yield from fn.execute(40 * US)
            latencies.append(system.now - born)

    def logger(fn):
        for _ in range(SAMPLES):
            yield from fn.delay(100 * US)
            yield from fn.execute(15 * US)

    functions = {
        "sensor": system.function("sensor", sensor, priority=9),
        "filter": system.function("filter", filter_stage, priority=5),
        "analyzer": system.function("analyzer", analyzer, priority=4),
        "logger": system.function("logger", logger, priority=1),
    }
    return functions, latencies


def architecture_a():
    system = System("A_concurrent")
    _, latencies = functional_model(system, system.queue("filtered", 4))
    return system, latencies


def architecture_b():
    system = System("B_one_cpu")
    fns, latencies = functional_model(system, system.queue("filtered", 4))
    cpu = system.processor("cpu", **OVERHEADS)
    for fn in fns.values():
        cpu.map(fn)
    return system, latencies


def architecture_c():
    system = System("C_two_cpus")
    fns, latencies = functional_model(system, system.queue("filtered", 4))
    front = system.processor("front", **OVERHEADS)
    back = system.processor("back", **OVERHEADS)
    front.map(fns["sensor"])
    front.map(fns["filter"])
    back.map(fns["analyzer"])
    back.map(fns["logger"])
    return system, latencies


def architecture_d():
    system = System("D_two_cpus_bus")
    bus = Bus(system.sim, "bus", setup=20 * US, per_byte=1 * US)
    link = RemoteQueue(system.sim, "filtered", capacity=4, bus=bus,
                       message_size=16)
    system.relations["filtered"] = link
    fns, latencies = functional_model(system, link)
    front = system.processor("front", **OVERHEADS)
    back = system.processor("back", **OVERHEADS)
    front.map(fns["sensor"])
    front.map(fns["filter"])
    back.map(fns["analyzer"])
    back.map(fns["logger"])
    return system, latencies


def main() -> None:
    print(f"{'architecture':16} {'end':>10} {'sample p50':>11} "
          f"{'sample max':>11} {'note'}")
    rows = {}
    for build in (architecture_a, architecture_b, architecture_c,
                  architecture_d):
        system, latencies = build()
        end = system.run()
        summary = latency_summary(latencies)
        rows[system.name] = summary
        note = {
            "A_concurrent": "functional baseline: no platform effects",
            "B_one_cpu": "serialization + RTOS overheads appear",
            "C_two_cpus": "parallelism restores latency",
            "D_two_cpus_bus": "wire costs claw some of it back",
        }[system.name]
        print(f"{system.name:16} {format_time(end):>10} "
              f"{format_time(summary['p50']):>11} "
              f"{format_time(summary['max']):>11} {note}")

    assert rows["B_one_cpu"]["max"] > rows["A_concurrent"]["max"]
    assert rows["C_two_cpus"]["max"] < rows["B_one_cpu"]["max"]
    assert rows["D_two_cpus_bus"]["p50"] > rows["C_two_cpus"]["p50"]
    print("\nshape: A < C < D < B on sample latency -- exactly the platform")
    print("effects the paper says functional simulation alone cannot show.")


if __name__ == "__main__":
    main()
