#!/usr/bin/env python3
"""Pareto design-space exploration of the MPEG-2 SoC.

Uses the structured DSE driver (:mod:`repro.analysis.dse`) to sweep the
SoC's platform knobs -- scheduling policy and RTOS overhead class -- and
extract the Pareto front over (frame latency, simulation-visible RTOS
cost).  This is the paper's "explore the design space ... and obtain
accurate results" workflow as a ten-line loop.

Run:  python examples/pareto_exploration.py
"""

from repro.analysis import Parameter, explore, pareto_front, tabulate
from repro.kernel.time import US, format_time
from repro.workloads import Mpeg2Soc

FRAMES = 12

SPACE = [
    Parameter("policy", ["priority_preemptive", "fifo"]),
    Parameter("overhead_us", [0, 5, 25, 100]),
    Parameter("queue_capacity", [2, 4]),
]


class _SocRun:
    """Adapter giving the DSE driver the run()/now interface it expects."""

    def __init__(self, config):
        overhead = config["overhead_us"] * US
        self.soc = Mpeg2Soc(
            frames=FRAMES,
            seed=0,
            policy=config["policy"],
            scheduling_duration=overhead,
            context_load_duration=overhead,
            context_save_duration=overhead,
            queue_capacity=config["queue_capacity"],
        )

    def run(self, duration=None):
        self.soc.run()

    @property
    def now(self):
        return self.soc.system.now


def metrics(config, runner):
    soc = runner.soc
    info = soc.summary()
    return {
        "mean_e2e_us": round(info["mean_e2e_latency"] / US),
        "rtos_overhead_us": round(
            sum(cpu.overhead_time for cpu in soc.processors) / US
        ),
        "preemptions": sum(cpu.preemption_count for cpu in soc.processors),
        "fps": round(info["throughput_fps"], 2),
    }


def main() -> None:
    print(f"exploring {2 * 4 * 2} design points "
          f"({FRAMES} frames each)...\n")
    results = explore(SPACE, _SocRun, metrics)
    print(tabulate(results))

    front = pareto_front(
        results, minimize=("mean_e2e_us", "rtos_overhead_us")
    )
    print(f"\nPareto front over (latency, RTOS cost): "
          f"{len(front)} of {len(results)} points")
    print(tabulate(front))

    best_latency = min(results, key=lambda r: r.metrics["mean_e2e_us"])
    print(f"\nbest latency: {best_latency.config} -> "
          f"{format_time(best_latency.metrics['mean_e2e_us'] * US)}")


if __name__ == "__main__":
    main()
