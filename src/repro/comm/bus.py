"""Shared-bus interconnect models.

The paper lists the "communications network" among the implementation
choices whose influence must be simulated (§1: processor, RTOS,
communications network).  This module provides the standard
transaction-level substrate for that: a shared :class:`Bus` with
configurable arbitration, per-transfer setup latency and per-byte cost,
on which inter-processor relations can be mapped
(:class:`~repro.comm.remote.RemoteQueue`).

A transfer holds the bus exclusively for ``setup + size * per_byte``;
competing transfers wait according to the arbitration policy ("fifo" or
"priority").  The bus keeps an occupancy integral so utilization shows
up in the Figure-8-style statistics.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import ModelError
from ..kernel.module import Module
from ..kernel.simulator import Simulator
from ..kernel.time import Time

#: Supported arbitration policies.
ARBITRATIONS = ("fifo", "priority")


class Transfer:
    """One pending or in-flight bus transaction."""

    __slots__ = ("size", "priority", "on_complete", "enqueued_at",
                 "started_at", "duration", "seq")

    def __init__(self, size: int, priority: int,
                 on_complete: Optional[Callable[[], None]],
                 enqueued_at: Time, seq: int) -> None:
        self.size = size
        self.priority = priority
        self.on_complete = on_complete
        self.enqueued_at = enqueued_at
        self.started_at: Optional[Time] = None
        self.duration: Time = 0
        self.seq = seq

    def sort_key(self, arbitration: str):
        if arbitration == "priority":
            return (-self.priority, self.seq)
        return (self.seq,)


class Bus(Module):
    """A shared interconnect with exclusive, arbitrated transfers.

    Parameters
    ----------
    setup:
        Fixed cost per transfer (arbitration + address phase).
    per_byte:
        Additional cost per payload byte.
    arbitration:
        ``"fifo"`` (default) or ``"priority"`` (higher wins, FIFO ties).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "bus",
        *,
        setup: Time = 0,
        per_byte: Time = 0,
        arbitration: str = "fifo",
        parent=None,
    ) -> None:
        super().__init__(sim, name, parent)
        if setup < 0 or per_byte < 0:
            raise ModelError("bus latencies must be non-negative")
        if arbitration not in ARBITRATIONS:
            raise ModelError(
                f"unknown arbitration {arbitration!r}; "
                f"pick one of {ARBITRATIONS}"
            )
        self.setup = setup
        self.per_byte = per_byte
        self.arbitration = arbitration
        self._pending: List[Transfer] = []
        self._current: Optional[Transfer] = None
        self._seq = 0
        # --- statistics ----------------------------------------------
        self.transfer_count = 0
        self.busy_time: Time = 0
        self.total_wait: Time = 0
        self.peak_queue = 0

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def transfer_duration(self, size: int) -> Time:
        """Bus occupancy of a ``size``-byte transfer."""
        return self.setup + size * self.per_byte

    def post(self, size: int, *, priority: int = 0,
             on_complete: Optional[Callable[[], None]] = None) -> Transfer:
        """Post a transfer (DMA-style); ``on_complete`` fires at the end.

        Returns the transfer handle (its ``started_at`` is filled in when
        the bus grants it).
        """
        if size < 0:
            raise ModelError(f"negative transfer size: {size}")
        self._seq += 1
        transfer = Transfer(size, priority, on_complete, self.sim.now,
                            self._seq)
        self._pending.append(transfer)
        self.peak_queue = max(self.peak_queue, len(self._pending))
        self._try_start()
        return transfer

    @property
    def busy(self) -> bool:
        return self._current is not None

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def utilization(self) -> float:
        """Fraction of elapsed time the bus carried a transfer."""
        now = self.sim.now
        return self.busy_time / now if now else 0.0

    def mean_wait(self) -> float:
        """Average queuing delay per completed transfer (femtoseconds)."""
        if self.transfer_count == 0:
            return 0.0
        return self.total_wait / self.transfer_count

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _try_start(self) -> None:
        if self._current is not None or not self._pending:
            return
        best_index = min(
            range(len(self._pending)),
            key=lambda i: self._pending[i].sort_key(self.arbitration),
        )
        transfer = self._pending.pop(best_index)
        transfer.started_at = self.sim.now
        transfer.duration = self.transfer_duration(transfer.size)
        self.total_wait += transfer.started_at - transfer.enqueued_at
        self._current = transfer
        self.sim.schedule_callback(transfer.duration,
                                   lambda: self._finish(transfer))

    def _finish(self, transfer: Transfer) -> None:
        self._current = None
        self.transfer_count += 1
        self.busy_time += transfer.duration
        if transfer.on_complete is not None:
            transfer.on_complete()
        self._try_start()

    def stats(self) -> dict:
        return {
            "bus": self.name,
            "arbitration": self.arbitration,
            "transfers": self.transfer_count,
            "utilization": self.utilization(),
            "mean_wait": self.mean_wait(),
            "peak_queue": self.peak_queue,
        }
