"""Interconnect substrate: shared buses and bus-mapped relations.

Models the "communications network" dimension of the paper's design
space: inter-processor messages cross an arbitrated shared bus with
setup and per-byte costs, so communication contention shows up in the
simulated timing like every other platform effect.
"""

from .bus import Bus, Transfer
from .remote import RemoteQueue

__all__ = ["Bus", "RemoteQueue", "Transfer"]
