"""Relations mapped onto an interconnect.

A :class:`RemoteQueue` behaves exactly like an MCSE
:class:`~repro.mcse.queues.MessageQueue` at both endpoints, but every
message crosses a :class:`~repro.comm.bus.Bus` first: the writer's
``write`` posts a DMA-style transfer (the writing task continues, as a
posted write on a real SoC interconnect does), and the message becomes
visible to readers only when the transfer completes.  Messages arrive in
transfer-completion order, so a priority-arbitrated bus can reorder
messages of different priorities -- which is precisely the kind of
platform effect the paper wants designers to see early.

Message sizes come from a ``sizer`` callable (default: a fixed
``message_size``), so workloads can model headers vs payloads.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ModelError
from ..kernel.simulator import Simulator
from ..mcse.queues import MessageQueue
from .bus import Bus


class RemoteQueue(MessageQueue):
    """A message queue whose writes traverse a shared bus.

    Parameters
    ----------
    bus:
        The interconnect carrying the messages.
    message_size:
        Default payload size in bytes (used when no ``sizer`` given).
    sizer:
        Optional ``sizer(item) -> int`` computing per-message sizes.
    transfer_priority:
        Bus arbitration priority of this queue's transfers.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "remote_queue",
        capacity: Optional[int] = 8,
        *,
        bus: Bus,
        message_size: int = 32,
        sizer: Optional[Callable[[object], int]] = None,
        transfer_priority: int = 0,
        wake_order: str = "fifo",
    ) -> None:
        super().__init__(sim, name, capacity, wake_order)
        if message_size < 0:
            raise ModelError(f"negative message size: {message_size}")
        self.bus = bus
        self.message_size = message_size
        self.sizer = sizer
        self.transfer_priority = transfer_priority
        #: Messages currently crossing the bus.
        self.in_flight = 0

    # ------------------------------------------------------------------
    def _size_of(self, item: object) -> int:
        if self.sizer is not None:
            return int(self.sizer(item))
        return self.message_size

    def try_put(self, item: object) -> bool:
        """Post the message onto the bus; never blocks the writer.

        Destination capacity is still honored: a message arriving at a
        full buffer parks until a slot frees (modelling a flow-controlled
        DMA channel), so ``capacity`` bounds *visible* + parked messages.
        """
        # accounting happens on arrival (the base try_put), so in-flight
        # messages do not double-count accesses
        self.in_flight += 1
        self.bus.post(
            self._size_of(item),
            priority=self.transfer_priority,
            on_complete=lambda: self._arrive(item),
        )
        return True

    def _arrive(self, item: object) -> None:
        self.in_flight -= 1
        if not super().try_put(item):
            # destination full: park as a phantom writer waiting for space
            waiter = self.enqueue_writer(None, item)
            # the slot-free handoff in try_get() will deliver it; an
            # anonymous waiter just needs its payload moved, no wakeup
            waiter.function = None

    def writer_would_block(self) -> bool:
        """Remote writers never block; provided for symmetry/tests."""
        return False
