"""The corpus check pipeline: lint -> simulate -> verify on one spec.

Every corpus consumer (batch matrices, the fuzz loop, seed replay)
pushes a generated spec through the same three stages and reduces the
outcome to one canonical *verdict* dict:

* **lint** -- :func:`repro.analyze.analyze_system` on the built model
  (static RTA, lock-graph, partition-fit rules; no simulation);
* **simulate** -- one nominal bounded run with the verifier's
  :class:`~repro.verify.properties.RunMonitors` attached, so deadline
  misses, deadlocks and mutex misuse are *observed*, not inferred;
* **verify** -- optional bounded model checking
  (:func:`repro.verify.verify_spec`) over scheduling nondeterminism,
  with the minimized counterexample choices carried into the verdict.

The verdict dict is deliberately restricted to *stable* facts (rule
ids, property ids, end times, minimized choices) and rendered through
:func:`verdict_digest` as canonical JSON, which is what lets checked-in
corpus seeds assert byte-identical reproduction across runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..analyze import analyze_system
from ..campaign.spec import canonical_json
from ..errors import ModelError, ReproError, SimulationError
from ..kernel.simulator import Simulator
from ..kernel.time import parse_time
from ..mcse.builder import build_system
from ..verify import verify_spec
from ..verify.properties import RunMonitors

#: Static schedulability rules cross-checked against observed misses.
STATIC_SCHED_RULES = frozenset(("RTS103", "RTS104", "RTS105"))

#: Dynamic property id -> static rules that claim (a superset of) it.
#: This is the precision/recall bookkeeping spine: a static rule is
#: *confirmed* for a spec when its family property was dynamically
#: observed (nominal simulation or bounded exploration) on that spec.
STATIC_DYNAMIC_FAMILIES: Dict[str, tuple] = {
    "RTS-V001": ("RTS110", "RTS130", "RTS161", "RTS162", "RTS166"),
    "RTS-V002": ("RTS103", "RTS104", "RTS105", "RTS140", "RTS141",
                 "RTS150", "RTS151", "RTS153", "RTS180", "RTS182"),
    "RTS-V004": ("RTS183",),
    "SAN303": ("RTS165",),
}


@dataclass
class PipelineOptions:
    """Bounds for one pipeline invocation (all stages)."""

    #: Simulation/verification time bound; ``None`` runs to quiescence
    #: (only safe for terminating scenarios).
    horizon: Optional[int] = None
    #: Run the bounded model checker after the nominal simulation.
    verify: bool = True
    #: DFS run budget for the verify stage (kept small: the fuzz loop
    #: wants throughput, not proofs).
    verify_max_runs: int = 32
    #: Maximum explored choice depth for the verify stage.
    verify_max_depth: int = 12

    @classmethod
    def from_dict(cls, payload: Dict) -> "PipelineOptions":
        horizon = payload.get("horizon")
        if isinstance(horizon, str):
            horizon = parse_time(horizon)
        return cls(
            horizon=horizon,
            verify=bool(payload.get("verify", True)),
            verify_max_runs=int(payload.get("verify_max_runs", 32)),
            verify_max_depth=int(payload.get("verify_max_depth", 12)),
        )

    def to_dict(self) -> Dict:
        return {
            "horizon": self.horizon,
            "verify": self.verify,
            "verify_max_runs": self.verify_max_runs,
            "verify_max_depth": self.verify_max_depth,
        }


def lint_stage(spec: Dict) -> Dict:
    """Static analysis verdict: sorted error/warning/suppressed rule ids.

    Suppressed findings (``lint_suppress`` declarations, behavior
    pragmas) are counted honestly rather than silently dropped, so
    matrix summaries can report how much of a corpus slice relies on
    muted rules.
    """
    system = build_system(spec, sim=Simulator("corpus-lint"))
    report = analyze_system(system)
    errors = sorted({d.rule for d in report.diagnostics
                     if d.severity.name == "ERROR"})
    warnings = sorted({d.rule for d in report.diagnostics
                       if d.severity.name == "WARNING"})
    suppressed = sorted({d.rule for d in report.suppressed})
    return {"errors": errors, "warnings": warnings,
            "suppressed": suppressed}


def simulate_stage(spec: Dict, options: PipelineOptions) -> Dict:
    """One nominal monitored run: observed violations + end time.

    When the spec declares a ``max_blocking`` budget anywhere, the
    RTS-V004 bounded-inversion monitor is armed against the tightest
    declared bound -- the same number the static RTS183 rule checks.
    """
    from ..verify.witness import declared_blocking_bound

    sim = Simulator("corpus-sim")
    system = build_system(spec, sim=sim)
    monitors = RunMonitors(system,
                           inversion_bound=declared_blocking_bound(spec))
    error: Optional[BaseException] = None
    try:
        if options.horizon is not None:
            system.run(until=options.horizon)
        else:
            system.run()
    except SimulationError as exc:
        cause = exc.__cause__
        if isinstance(cause, ModelError):
            error = cause  # mutex misuse: an observation, not a crash
        else:
            raise
    except ModelError as exc:
        error = exc
    monitors.finish(error)
    monitors.detach()
    return {
        "status": "ok",
        "end_time": system.now,
        "violations": sorted({v.property_id for v in monitors.violations}),
    }


def verify_stage(spec: Dict, options: PipelineOptions) -> Dict:
    """Bounded model checking: verdict, violated properties, witness."""
    from ..verify.witness import declared_blocking_bound

    result = verify_spec(
        spec,
        strategy="dfs",
        horizon=options.horizon,
        max_depth=options.verify_max_depth,
        max_runs=options.verify_max_runs,
        inversion_bound=declared_blocking_bound(spec),
    )
    verdict: Dict = {
        "verdict": result.verdict(),
        "complete": result.complete,
        "properties": sorted({v.property_id for v in result.violations}),
    }
    counterexample = result.counterexample
    if counterexample is not None:
        verdict["counterexample"] = {
            "property": counterexample.property_id,
            "choices": list(counterexample.choices),
        }
    return verdict


def differential_check(spec: Dict, lint: Dict, simulate: Dict) -> List[str]:
    """Static-vs-dynamic contradictions; each one is a stack bug.

    The only sound direction for generated periodic sets with zero
    overheads and no blocking is "observed miss implies static flag":
    overhead-free RTA upper-bounds sporadic response times, so a
    nominal-run deadline miss on a task set the RTA rules passed means
    analyzer and simulator disagree about the same mathematics.
    """
    findings: List[str] = []
    if "RTS-V002" not in simulate.get("violations", ()):
        return findings
    if not _rta_exact(spec):
        return findings
    flagged = STATIC_SCHED_RULES & set(lint.get("errors", ())) | \
        STATIC_SCHED_RULES & set(lint.get("warnings", ()))
    if not flagged:
        findings.append(
            "differential: nominal simulation missed a deadline but the "
            "static schedulability rules (RTS103/RTS104/RTS105) passed"
        )
    return findings


def _rta_exact(spec: Dict) -> bool:
    """Whether the spec is inside the exact-RTA model class.

    One processor, fixed-priority preemptive, zero overheads, and only
    non-blocking periodic scripts (execute/delay/loop) with annotated
    profiles -- the class where overhead-free RTA is a sound bound.
    """
    processors = spec.get("processors", ())
    if len(processors) != 1:
        return False
    cpu = processors[0]
    if cpu.get("policy", "priority_preemptive") != "priority_preemptive":
        return False
    for key in ("scheduling_duration", "context_load_duration",
                "context_save_duration"):
        if parse_time(cpu.get(key, 0)):
            return False
    for fn in spec.get("functions", ()):
        if "wcet" not in fn or "period" not in fn:
            return False
        if "jitter" in fn:
            return False
        for op in _flat_ops(fn.get("script", ())):
            if op not in ("execute", "delay", "loop"):
                return False
    return True


def _flat_ops(script: Iterable[Sequence]) -> List[str]:
    ops: List[str] = []
    for op in script:
        name = op[0]
        ops.append(name)
        if name == "loop":
            ops.extend(_flat_ops(op[2]))
    return ops


def static_dynamic_accounting(verdict: Dict) -> Dict[str, Dict]:
    """Per-property static-claimed vs dynamically-observed ledger.

    For every :data:`STATIC_DYNAMIC_FAMILIES` property with activity on
    this spec: which family rules the linter claimed (any severity),
    whether the property was observed dynamically, and the confirmed
    intersection.  Silent properties are omitted so clean specs keep a
    compact verdict.
    """
    lint = verdict.get("lint", {})
    claimed_all = set(lint.get("errors", ())) | \
        set(lint.get("warnings", ()))
    observed = set(verdict.get("simulate", {}).get("violations", ()))
    observed.update(verdict.get("verify", {}).get("properties", ()))
    ledger: Dict[str, Dict] = {}
    for prop, rules in sorted(STATIC_DYNAMIC_FAMILIES.items()):
        claimed = sorted(claimed_all & set(rules))
        seen = prop in observed
        if not claimed and not seen:
            continue
        ledger[prop] = {
            "static": claimed,
            "dynamic": seen,
            "confirmed": claimed if seen else [],
        }
    return ledger


def merge_static_dynamic(totals: Dict[str, Dict[str, int]],
                         ledger: Dict[str, Dict]) -> None:
    """Fold one spec's accounting into per-rule claimed/confirmed totals.

    ``totals[rule] = {"claimed": n, "confirmed": m}`` -- the persisted
    shape batch matrices and the fuzz loop report; ``m / n`` is the
    observed precision of the rule over the corpus slice.
    """
    for entry in ledger.values():
        for rule_id in entry["static"]:
            row = totals.setdefault(rule_id, {"claimed": 0, "confirmed": 0})
            row["claimed"] += 1
            if entry["dynamic"]:
                row["confirmed"] += 1


def run_pipeline(spec: Dict, options: Optional[PipelineOptions] = None,
                 *, stages: str = "all") -> Dict:
    """Run the staged pipeline; never raises for in-model failures.

    Returns the canonical verdict dict.  A stage that raises a
    :class:`ReproError` records a ``crash`` entry (the fuzz loop's
    highest-value finding) and later stages are skipped.
    """
    options = options or PipelineOptions()
    verdict: Dict = {}
    try:
        verdict["lint"] = lint_stage(spec)
    except ReproError as exc:
        verdict["crash"] = {"stage": "lint", "error": type(exc).__name__,
                            "message": str(exc)}
        return verdict
    if stages == "lint":
        return verdict
    try:
        verdict["simulate"] = simulate_stage(spec, options)
    except ReproError as exc:
        verdict["crash"] = {"stage": "simulate",
                            "error": type(exc).__name__,
                            "message": str(exc)}
        return verdict
    verdict["differential"] = differential_check(
        spec, verdict["lint"], verdict["simulate"]
    )
    if not options.verify or stages == "simulate":
        verdict["static_dynamic"] = static_dynamic_accounting(verdict)
        return verdict
    try:
        verdict["verify"] = verify_stage(spec, options)
    except ReproError as exc:
        verdict["crash"] = {"stage": "verify", "error": type(exc).__name__,
                            "message": str(exc)}
        return verdict
    verdict["static_dynamic"] = static_dynamic_accounting(verdict)
    return verdict


def violated_properties(verdict: Dict) -> List[str]:
    """Every property id the pipeline observed, across stages."""
    properties = set(verdict.get("simulate", {}).get("violations", ()))
    properties.update(verdict.get("verify", {}).get("properties", ()))
    if verdict.get("differential"):
        properties.add("DIFFERENTIAL")
    if "crash" in verdict:
        properties.add("CRASH")
    return sorted(properties)


def verdict_digest(verdict: Dict) -> str:
    """SHA-256 over the canonical JSON of a verdict dict."""
    return hashlib.sha256(canonical_json(verdict).encode()).hexdigest()


__all__ = [
    "PipelineOptions",
    "STATIC_DYNAMIC_FAMILIES",
    "STATIC_SCHED_RULES",
    "differential_check",
    "lint_stage",
    "merge_static_dynamic",
    "run_pipeline",
    "simulate_stage",
    "static_dynamic_accounting",
    "verdict_digest",
    "verify_stage",
    "violated_properties",
]
