"""Audit reports: diff two batch-matrix runs cell by cell.

``pyrtos-sc compare a.json b.json`` answers the regression question a
matrix exists to ask: *did any scenario change its verdict between two
runs (or two code revisions)?*  Cells are matched by their stable
:func:`~repro.corpus.matrix.cell_key`; for each matched pair the diff
classifies

* **verdict flips** -- the violated-property set changed (the loudest
  signal: a scenario started or stopped failing);
* **digest drift** -- same properties but a different canonical verdict
  hash (timing or counterexample details moved);
* **metric deltas** -- distribution shift over the numeric metrics
  (currently ``end_time`` and the lint counters).

The report is plain JSON; ``identical`` is True only when every cell
matched with an unchanged verdict digest.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from ..errors import CorpusError

#: Numeric per-cell metrics summarized as distributions in the diff.
NUMERIC_METRICS = ("end_time", "lint_errors", "lint_warnings")


def load_report(path: Path) -> Dict:
    """Load one ``batch-run`` report file."""
    path = Path(path)
    try:
        report = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise CorpusError(f"unreadable report file {path}: {exc}") from None
    if not isinstance(report, dict) or "cells" not in report:
        raise CorpusError(
            f"{path} is not a batch-run report (no 'cells' key)"
        )
    return report


def _cells_by_key(report: Dict) -> Dict[str, Dict]:
    cells: Dict[str, Dict] = {}
    for cell in report.get("cells", ()):
        key = cell.get("key")
        if key is None:
            raise CorpusError("report cell is missing its 'key'")
        if key in cells:
            raise CorpusError(f"report has duplicate cell key {key!r}")
        cells[key] = cell
    return cells


def _distribution(values: List[float]) -> Dict:
    return {
        "n": len(values),
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
    }


def compare_reports(report_a: Dict, report_b: Dict, *,
                    label_a: str = "a", label_b: str = "b") -> Dict:
    """Diff two batch-run reports; returns the audit dict."""
    cells_a = _cells_by_key(report_a)
    cells_b = _cells_by_key(report_b)
    keys_a, keys_b = set(cells_a), set(cells_b)
    matched = sorted(keys_a & keys_b)

    flips: List[Dict] = []
    drifted: List[Dict] = []
    metrics: Dict[str, Dict] = {}
    samples: Dict[str, Dict[str, List[float]]] = {
        name: {"a": [], "b": []} for name in NUMERIC_METRICS
    }
    for key in matched:
        ma = cells_a[key].get("metrics", {})
        mb = cells_b[key].get("metrics", {})
        props_a = list(ma.get("properties", ()))
        props_b = list(mb.get("properties", ()))
        if props_a != props_b:
            flips.append({
                "key": key,
                label_a: props_a,
                label_b: props_b,
            })
        elif ma.get("verdict_sha256") != mb.get("verdict_sha256"):
            drifted.append(key)
        for name in NUMERIC_METRICS:
            for side, m in (("a", ma), ("b", mb)):
                value = m.get(name)
                if isinstance(value, (int, float)):
                    samples[name][side].append(value)
    for name, sides in samples.items():
        if sides["a"] and sides["b"]:
            dist_a = _distribution(sides["a"])
            dist_b = _distribution(sides["b"])
            metrics[name] = {
                label_a: dist_a,
                label_b: dist_b,
                "mean_delta": dist_b["mean"] - dist_a["mean"],
            }

    identical = (
        not flips and not drifted
        and keys_a == keys_b
    )
    return {
        "labels": {"a": label_a, "b": label_b},
        "matched": len(matched),
        "only_a": sorted(keys_a - keys_b),
        "only_b": sorted(keys_b - keys_a),
        "verdict_flips": flips,
        "digest_drift": drifted,
        "metrics": metrics,
        "identical": identical,
    }


def format_comparison(diff: Dict) -> str:
    """Render an audit dict as a short human-readable summary."""
    lines = [
        f"matched cells: {diff['matched']}  "
        f"(only in a: {len(diff['only_a'])}, "
        f"only in b: {len(diff['only_b'])})",
    ]
    if diff["verdict_flips"]:
        lines.append(f"verdict flips: {len(diff['verdict_flips'])}")
        label_a = diff["labels"]["a"]
        label_b = diff["labels"]["b"]
        for flip in diff["verdict_flips"]:
            lines.append(
                f"  {flip['key']}: {flip[label_a] or ['clean']} -> "
                f"{flip[label_b] or ['clean']}"
            )
    if diff["digest_drift"]:
        lines.append(
            f"digest drift (same properties, different verdict hash): "
            f"{len(diff['digest_drift'])}"
        )
    for name, stat in diff["metrics"].items():
        lines.append(
            f"{name}: mean delta {stat['mean_delta']:+g}"
        )
    lines.append("identical" if diff["identical"]
                 else "reports DIFFER")
    return "\n".join(lines)


__all__ = [
    "NUMERIC_METRICS",
    "compare_reports",
    "format_comparison",
    "load_report",
]
