"""Scenario generators: seeded workload specs for every consumer.

The paper evaluates the RTOS model on two hand-built workloads; this
module turns that thin base into a *stream*.  Every generator is a pure
function of ``(seed, params)`` producing a declarative builder spec
(the exact JSON format :func:`repro.mcse.build_system`,
``pyrtos-sc lint``, ``campaign``, ``serve`` and ``verify`` already
consume), so one scenario source feeds every subsystem.

Registry kinds:

===============  ===========================================================
``periodic``     UUniFast utilization sampling, log-uniform periods
                 (Bini & Buttazzo), rate-monotonic priorities
``harmonic``     periodic with power-of-two harmonic period sets
``automotive``   periodic with the classical automotive period set
                 (1/2/5/10/20/50/100/200/1000 ms)
``dag``          random precedence DAGs over counter events (acyclic by
                 construction: edges only go index-upward)
``bursty``       bursty interrupt source driving a sporadic handler over
                 background periodic load
``partitioned``  ARINC-653-style time partitions with per-partition tasks
``contention``   seeded mutex/shared-resource contention; unordered
                 acquisition can (intentionally) deadlock
``smp``          periodic sets over multicore scheduling domains
                 (UUniFast across M cores, heterogeneous speeds,
                 global/partitioned/clustered dispatch, affinity)
``freertos``     FreeRTOS producer/consumer applications emitted as
                 personality specs (:mod:`repro.personality`) -- queues,
                 PI mutexes, task notifications, both scheduler switches
===============  ===========================================================

Determinism contract: ``generate(kind, seed, params)`` depends only on
its arguments -- two calls anywhere, any process, produce byte-identical
canonical JSON (and therefore the same :func:`spec_digest`).
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..campaign.spec import canonical_json
from ..errors import CorpusError
from ..workloads.synthetic import uunifast

#: The classical automotive period set (in microseconds), after the
#: engine-control benchmarks the real-time literature samples from.
AUTOMOTIVE_PERIODS_US = (1_000, 2_000, 5_000, 10_000, 20_000,
                         50_000, 100_000, 200_000, 1_000_000)


def spec_digest(spec: Dict) -> str:
    """SHA-256 over the canonical JSON of a generated spec."""
    return hashlib.sha256(canonical_json(spec).encode()).hexdigest()


def _us(value: int) -> str:
    """Render an integer microsecond count as a builder duration."""
    return f"{int(value)}us"


# ---------------------------------------------------------------------------
# Periodic task sets (UUniFast / harmonic / automotive)
# ---------------------------------------------------------------------------
def _draw_periods(rng: random.Random, n: int, mode: str,
                  period_min_us: int, period_max_us: int) -> List[int]:
    if mode == "loguniform":
        lo, hi = math.log(period_min_us), math.log(period_max_us)
        return [max(1, round(math.exp(rng.uniform(lo, hi))))
                for _ in range(n)]
    if mode == "harmonic":
        base = rng.choice((1_000, 2_000, 5_000))
        return [base * 2 ** rng.randint(0, 4) for _ in range(n)]
    if mode == "automotive":
        return [rng.choice(AUTOMOTIVE_PERIODS_US) for _ in range(n)]
    raise CorpusError(
        f"unknown period mode {mode!r} "
        "(expected loguniform, harmonic or automotive)"
    )


def gen_periodic(rng: random.Random, *, n: int = 4,
                 utilization: float = 0.65, periods: str = "loguniform",
                 period_min_us: int = 1_000, period_max_us: int = 100_000,
                 deadline_ratio: Optional[float] = 1.0,
                 jitter_us: int = 0, overhead_us: int = 0,
                 policy: str = "priority_preemptive",
                 engine: str = "procedural") -> Dict:
    """A periodic task set with UUniFast-sampled utilizations.

    Tasks carry both an executable script (``loop [execute, delay]``)
    and the ``wcet``/``period``/``deadline`` annotations the static
    analyzers read, so the same spec exercises simulation, lint RTA and
    the verifier's deadline watchdogs.  Priorities are rate-monotonic
    (shorter period = higher priority number, the fig6 convention).
    """
    if n < 1:
        raise CorpusError(f"periodic: need at least one task, got {n}")
    if utilization <= 0:
        raise CorpusError(
            f"periodic: utilization must be positive, got {utilization}"
        )
    shares = uunifast(n, utilization, rng)
    period_list = _draw_periods(rng, n, periods, period_min_us,
                                period_max_us)
    tasks: List[Tuple[str, int, int]] = []
    for index, (share, period) in enumerate(zip(shares, period_list)):
        wcet = min(period, max(1, round(period * share)))
        tasks.append((f"T{index}", wcet, period))

    by_rate = sorted(tasks, key=lambda t: (t[2], t[0]))
    priority = {name: len(by_rate) - rank
                for rank, (name, _, _) in enumerate(by_rate)}

    functions: List[Dict] = []
    for name, wcet, period in tasks:
        body: List[list] = [["execute", _us(wcet)]]
        if period > wcet:
            body.append(["delay", _us(period - wcet)])
        fn: Dict[str, Any] = {
            "name": name,
            "priority": priority[name],
            "processor": "cpu0",
            "wcet": _us(wcet),
            "period": _us(period),
            "script": [["loop", None, body]],
        }
        if deadline_ratio is not None:
            fn["deadline"] = _us(max(1, round(period * deadline_ratio)))
        if jitter_us > 0:
            fn["jitter"] = _us(jitter_us)
        functions.append(fn)

    return {
        "name": f"periodic_{periods}_n{n}",
        "relations": [],
        "processors": [{
            "name": "cpu0",
            "engine": engine,
            "policy": policy,
            "scheduling_duration": _us(overhead_us),
            "context_load_duration": _us(overhead_us),
            "context_save_duration": _us(overhead_us),
        }],
        "functions": functions,
    }


def gen_harmonic(rng: random.Random, **params: Any) -> Dict:
    """:func:`gen_periodic` restricted to harmonic period sets."""
    params["periods"] = "harmonic"
    return gen_periodic(rng, **params)


def gen_automotive(rng: random.Random, **params: Any) -> Dict:
    """:func:`gen_periodic` over the automotive period set."""
    params["periods"] = "automotive"
    return gen_periodic(rng, **params)


# ---------------------------------------------------------------------------
# Random precedence DAGs
# ---------------------------------------------------------------------------
def dag_edges(rng: random.Random, nodes: int,
              edge_prob: float) -> List[Tuple[int, int]]:
    """Seeded random DAG edges; acyclic because edges go index-upward."""
    return [(i, j)
            for i in range(nodes)
            for j in range(i + 1, nodes)
            if rng.random() < edge_prob]


def gen_dag(rng: random.Random, *, nodes: int = 6, edge_prob: float = 0.35,
            iterations: int = 3, processors: int = 1,
            cost_min_us: int = 10, cost_max_us: int = 200,
            source_period_us: int = 5_000,
            engine: str = "procedural") -> Dict:
    """A random precedence DAG wired through counter events.

    Node ``i`` waits for every incoming edge event, executes a seeded
    cost, then signals every outgoing edge; source nodes self-release
    every ``source_period_us``.  Counter events memorize signals, so the
    dataflow never loses a token regardless of schedule.  Nodes are
    dealt round-robin onto ``processors`` RTOS processors.
    """
    if nodes < 2:
        raise CorpusError(f"dag: need at least two nodes, got {nodes}")
    if processors < 1:
        raise CorpusError(f"dag: need at least one processor, got {processors}")
    if iterations < 1:
        raise CorpusError(f"dag: iterations must be >= 1, got {iterations}")
    edges = dag_edges(rng, nodes, edge_prob)
    incoming: Dict[int, List[int]] = {i: [] for i in range(nodes)}
    outgoing: Dict[int, List[int]] = {i: [] for i in range(nodes)}
    for src, dst in edges:
        incoming[dst].append(src)
        outgoing[src].append(dst)

    relations = [{"kind": "event", "name": f"e{src}_{dst}",
                  "policy": "counter"}
                 for src, dst in edges]
    costs = {i: rng.randint(cost_min_us, cost_max_us)
             for i in range(nodes)}

    # Priority follows reverse topological depth so successors do not
    # starve their producers on a shared processor.
    depth: Dict[int, int] = {}
    for node in range(nodes):
        depth[node] = 1 + max((depth[src] for src in incoming[node]),
                              default=0)
    functions: List[Dict] = []
    for node in range(nodes):
        body: List[list] = []
        for src in sorted(incoming[node]):
            body.append(["wait", f"e{src}_{node}"])
        if not incoming[node]:
            body.append(["delay", _us(source_period_us)])
        body.append(["execute", _us(costs[node])])
        for dst in sorted(outgoing[node]):
            body.append(["signal", f"e{node}_{dst}"])
        functions.append({
            "name": f"n{node}",
            "priority": nodes - depth[node] + 1,
            "processor": f"cpu{node % processors}",
            "script": [["loop", iterations, body]],
        })

    return {
        "name": f"dag_n{nodes}",
        "relations": relations,
        "processors": [{"name": f"cpu{index}", "engine": engine}
                       for index in range(processors)],
        "functions": functions,
    }


# ---------------------------------------------------------------------------
# Bursty interrupt load
# ---------------------------------------------------------------------------
def gen_bursty(rng: random.Random, *, bursts: int = 4,
               burst_len_max: int = 5, gap_min_us: int = 500,
               gap_max_us: int = 5_000, intra_gap_us: int = 20,
               handler_cost_us: int = 50, background_tasks: int = 2,
               background_utilization: float = 0.3,
               engine: str = "procedural") -> Dict:
    """A bursty interrupt source over background periodic load.

    A low-priority source function emits seeded bursts of ``irq``
    signals (counter event, so back-to-back signals are never lost); a
    top-priority sporadic handler drains them.  Background periodic
    tasks supply preemptable load underneath -- the paper's "reactive
    system under interrupt pressure" shape.
    """
    if bursts < 1 or burst_len_max < 1:
        raise CorpusError("bursty: bursts and burst_len_max must be >= 1")
    source_body: List[list] = []
    for _ in range(bursts):
        gap = rng.randint(gap_min_us, gap_max_us)
        length = rng.randint(1, burst_len_max)
        source_body.append(["delay", _us(gap)])
        source_body.append(["loop", length, [
            ["signal", "irq"], ["delay", _us(intra_gap_us)],
        ]])

    functions: List[Dict] = [
        {"name": "irq_handler", "priority": 100, "processor": "cpu0",
         "script": [["loop", None, [["wait", "irq"],
                                    ["execute", _us(handler_cost_us)]]]]},
        {"name": "irq_source", "script": source_body},
    ]
    if background_tasks > 0:
        background = gen_periodic(
            rng, n=background_tasks,
            utilization=background_utilization,
            periods="loguniform", engine=engine,
        )
        for fn in background["functions"]:
            fn["name"] = f"bg_{fn['name']}"
            functions.append(fn)

    return {
        "name": f"bursty_b{bursts}",
        "relations": [{"kind": "event", "name": "irq",
                       "policy": "counter"}],
        "processors": [{"name": "cpu0", "engine": engine}],
        "functions": functions,
    }


# ---------------------------------------------------------------------------
# Time-partitioned avionics profile
# ---------------------------------------------------------------------------
def gen_partitioned(rng: random.Random, *, partitions: int = 2,
                    tasks_per_partition: int = 2,
                    window_min_us: int = 1_000, window_max_us: int = 5_000,
                    utilization: float = 0.5,
                    engine: str = "procedural") -> Dict:
    """An ARINC-653-style time-partitioned processor.

    One processor runs the ``time_partition`` policy over seeded
    windows; each partition owns periodic tasks whose period is a
    multiple of the major frame, so demand is stationary per frame.
    """
    if partitions < 1:
        raise CorpusError(
            f"partitioned: need at least one partition, got {partitions}"
        )
    if tasks_per_partition < 1:
        raise CorpusError("partitioned: tasks_per_partition must be >= 1")
    windows = [[f"P{index}",
                _us(rng.randint(window_min_us, window_max_us))]
               for index in range(partitions)]
    major_frame = sum(int(d[:-2]) for _, d in windows)

    functions: List[Dict] = []
    for p_index in range(partitions):
        window_us = int(windows[p_index][1][:-2])
        shares = uunifast(tasks_per_partition, utilization, rng)
        for t_index, share in enumerate(shares):
            period = major_frame * rng.choice((1, 2, 4))
            budget = window_us * (period // major_frame)
            wcet = min(budget, max(1, round(budget * share)))
            body: List[list] = [["execute", _us(wcet)]]
            if period > wcet:
                body.append(["delay", _us(period - wcet)])
            functions.append({
                "name": f"P{p_index}_T{t_index}",
                "priority": tasks_per_partition - t_index,
                "processor": "cpu0",
                "partition": f"P{p_index}",
                "wcet": _us(wcet),
                "period": _us(period),
                "script": [["loop", None, body]],
            })

    return {
        "name": f"partitioned_p{partitions}",
        "relations": [],
        "processors": [{"name": "cpu0", "engine": engine,
                        "policy": "time_partition",
                        "windows": windows}],
        "functions": functions,
    }


# ---------------------------------------------------------------------------
# Multicore scheduling domains
# ---------------------------------------------------------------------------
def gen_smp(rng: random.Random, *, cores: int = 2, n: int = 6,
            utilization: float = 1.2, dispatch: str = "global",
            policy: str = "global_edf", heterogeneous: bool = False,
            migration_cost_us: int = 0, affinity_prob: float = 0.0,
            periods: str = "loguniform", period_min_us: int = 1_000,
            period_max_us: int = 100_000,
            deadline_ratio: Optional[float] = 1.0) -> Dict:
    """A periodic task set over a multicore scheduling domain.

    UUniFast samples ``utilization`` (the *total* across the machine,
    so values above 1.0 are meaningful up to ``cores``) over ``n``
    tasks; homes are dealt round-robin over ``cores`` member CPUs.
    ``dispatch`` picks the domain kind: ``global`` / ``clustered``
    (cores split into two halves) migrate under ``policy``;
    ``partitioned`` keeps the round-robin assignment static.
    ``heterogeneous=True`` slows every odd core to a seeded speed in
    {0.5, 0.75}, exercising speed-scaled WCETs and the entry-core
    budget-scaling rule across migrations.  ``affinity_prob`` pins each
    task (with that probability) to a seeded non-empty core subset.
    """
    if cores < 1:
        raise CorpusError(f"smp: need at least one core, got {cores}")
    if n < 1:
        raise CorpusError(f"smp: need at least one task, got {n}")
    if dispatch not in ("global", "partitioned", "clustered"):
        raise CorpusError(
            f"smp: unknown dispatch {dispatch!r} "
            "(expected global, partitioned or clustered)"
        )
    if dispatch == "clustered" and cores < 2:
        raise CorpusError("smp: clustered dispatch needs at least two cores")
    core_names = [f"cpu{index}" for index in range(cores)]
    processors: List[Dict[str, Any]] = []
    for index, core in enumerate(core_names):
        entry: Dict[str, Any] = {"name": core, "engine": "procedural"}
        if heterogeneous and index % 2 == 1:
            entry["speed"] = rng.choice((0.5, 0.75))
        processors.append(entry)

    shares = uunifast(n, utilization, rng)
    period_list = _draw_periods(rng, n, periods, period_min_us,
                                period_max_us)
    functions: List[Dict] = []
    for index, (share, period) in enumerate(zip(shares, period_list)):
        # cap per-task utilization at 1.0: one task can never use more
        # than one core, whatever the dispatch
        wcet = min(period, max(1, round(period * share)))
        body: List[list] = [["execute", _us(wcet)]]
        if period > wcet:
            body.append(["delay", _us(period - wcet)])
        fn: Dict[str, Any] = {
            "name": f"T{index}",
            "processor": core_names[index % cores],
            "wcet": _us(wcet),
            "period": _us(period),
            "script": [["loop", None, body]],
        }
        if deadline_ratio is not None:
            fn["deadline"] = _us(max(1, round(period * deadline_ratio)))
        if affinity_prob > 0 and rng.random() < affinity_prob:
            width = rng.randint(1, cores)
            fn["affinity"] = sorted(rng.sample(core_names, width))
        functions.append(fn)

    domain: Dict[str, Any] = {
        "name": "dom0",
        "kind": dispatch,
        "processors": core_names,
    }
    if dispatch != "partitioned":
        domain["policy"] = policy
        if migration_cost_us > 0:
            domain["migration_cost"] = _us(migration_cost_us)
        if dispatch == "clustered":
            half = max(1, cores // 2)
            domain["clusters"] = [core_names[:half], core_names[half:]]

    return {
        "name": f"smp_{dispatch}_m{cores}n{n}",
        "relations": [],
        "processors": processors,
        "scheduling_domains": [domain],
        "functions": functions,
    }


# ---------------------------------------------------------------------------
# Mutex / shared-resource contention
# ---------------------------------------------------------------------------
def gen_contention(rng: random.Random, *, tasks: int = 3, resources: int = 2,
                   locks_per_task: int = 2, iterations: int = 2,
                   hold_min_us: int = 10, hold_max_us: int = 100,
                   ordered: bool = True, intervals: bool = False,
                   stagger_us: int = 50, think_us: int = 0,
                   processors: int = 1,
                   engine: str = "procedural",
                   protocol: str = "none", periodic: bool = False,
                   period_min_us: int = 1_000, period_max_us: int = 4_000,
                   deadline_frac: Optional[float] = None,
                   jitter_us: int = 0) -> Dict:
    """Seeded nested locking over shared variables.

    With ``ordered=True`` every task acquires its resource subset in
    global index order -- provably deadlock-free.  With
    ``ordered=False`` each task uses its own seeded order, so crossed
    acquisitions (and schedule-dependent deadlocks) become reachable;
    ``intervals=True`` additionally turns the critical-section costs
    into ``lo..hi`` execution intervals for the verifier to explore.

    ``think_us > 0`` inserts a wall-clock *think delay* after each
    acquisition (modelling I/O inside the critical section).  A delay
    yields the CPU, so lower-priority tasks interleave into the lock
    sequence even on one processor -- without it, fixed-priority
    scheduling lets the top task monopolize the CPU through its whole
    sequence and crossed acquisitions are unreachable.
    ``processors > 1`` deals tasks round-robin over truly concurrent
    CPUs for the same effect.

    ``protocol`` selects the resource-access protocol of every shared
    variable (``"none"``, ``"inheritance"``, or ``"ceiling"`` with the
    ceiling at the highest task priority), and ``periodic=True`` turns
    each task into an infinite periodic job -- the critical-section
    body plus a seeded trailing delay -- annotated with
    ``wcet``/``period`` (and ``deadline`` via ``deadline_frac``,
    release ``jitter`` via ``jitter_us``) so the blocking-aware
    schedulability rules (RTS180/RTS182/RTS183) and the verifier's
    deadline watchdogs both engage.
    """
    if tasks < 2:
        raise CorpusError(f"contention: need at least two tasks, got {tasks}")
    if resources < 1:
        raise CorpusError("contention: need at least one resource")
    if processors < 1:
        raise CorpusError("contention: need at least one processor")
    if protocol not in ("none", "inheritance", "ceiling"):
        raise CorpusError(
            f"contention: unknown protocol {protocol!r} "
            "(expected none, inheritance or ceiling)"
        )
    locks_per_task = min(locks_per_task, resources)
    relations: List[Dict] = []
    for index in range(resources):
        relation: Dict = {"kind": "shared", "name": f"R{index}"}
        if protocol == "inheritance":
            relation["protocol"] = "inheritance"
        elif protocol == "ceiling":
            relation["protocol"] = "ceiling"
            relation["ceiling"] = tasks  # the highest task priority
        relations.append(relation)

    functions: List[Dict] = []
    for t_index in range(tasks):
        subset = sorted(rng.sample(range(resources), locks_per_task))
        if not ordered:
            rng.shuffle(subset)
        body: List[list] = []
        wcet_us = 0
        for r_index in subset:
            body.append(["lock", f"R{r_index}"])
            hold = rng.randint(hold_min_us, hold_max_us)
            wcet_us += hold
            if intervals:
                body.append(["execute",
                             f"{hold}us..{hold + hold_max_us}us"])
            else:
                body.append(["execute", _us(hold)])
            if think_us > 0:
                body.append(["delay", _us(think_us)])
        for r_index in reversed(subset):
            body.append(["unlock", f"R{r_index}"])
        fn: Dict[str, Any] = {
            "name": f"T{t_index}",
            "priority": tasks - t_index,
            "processor": f"cpu{t_index % processors}",
            "start_time": _us(t_index * stagger_us),
        }
        if periodic:
            busy_us = wcet_us + think_us * len(subset)
            drawn = rng.randint(period_min_us, period_max_us)
            trailing_us = max(drawn - busy_us, hold_min_us)
            period_us = busy_us + trailing_us
            fn["wcet"] = _us(wcet_us)
            fn["period"] = _us(period_us)
            if deadline_frac is not None:
                fn["deadline"] = _us(max(1, round(period_us
                                                 * deadline_frac)))
            if jitter_us > 0:
                fn["jitter"] = _us(jitter_us)
            fn["script"] = [["loop", None,
                             body + [["delay", _us(trailing_us)]]]]
        else:
            fn["script"] = [["loop", iterations, body]]
        functions.append(fn)

    return {
        "name": f"contention_t{tasks}r{resources}",
        "relations": relations,
        "processors": [{"name": f"cpu{index}", "engine": engine}
                       for index in range(processors)],
        "functions": functions,
    }


# ---------------------------------------------------------------------------
# FreeRTOS personality applications
# ---------------------------------------------------------------------------
def gen_freertos(rng: random.Random, *, producers: int = 2,
                 queue_length: int = 4, iterations: int = 3,
                 use_mutex: bool = True, use_notify: bool = False,
                 poll: bool = False, starve: bool = False,
                 preemption: int = 1,
                 time_slicing: int = 1, period_min_us: int = 500,
                 period_max_us: int = 5_000, exec_min_us: int = 20,
                 exec_max_us: int = 200,
                 engine: str = "procedural") -> Dict:
    """Seeded FreeRTOS producer/consumer application (personality spec).

    ``producers`` periodic tasks push onto one bounded queue; a
    higher-priority consumer drains it, optionally serializing on a
    priority-inheritance mutex and optionally reporting each batch to a
    top-priority monitor through task notifications.  ``poll=True``
    makes the consumer spin with a zero timeout instead of blocking --
    deliberately tripping the RTS171 busy-wait lint so fuzzing reaches
    personality findings, not just healthy systems.  ``starve=True``
    plants the classic off-by-one consumer bug: one more blocking
    receive than messages produced, so the consumer deadlocks once the
    producers retire (an RTS-V001 finding for the fuzz loop).

    The emitted spec carries the ``"personality": "freertos"`` key: the
    builder lowers it transparently, so every corpus consumer
    (lint/simulate/verify/campaign) takes it unchanged.
    """
    if producers < 1:
        raise CorpusError(f"freertos: need at least one producer, "
                          f"got {producers}")
    if queue_length < 1:
        raise CorpusError("freertos: queue_length must be >= 1")
    objects: List[Dict] = [
        {"kind": "queue", "name": "q", "length": queue_length},
    ]
    if use_mutex:
        objects.append({"kind": "mutex", "name": "log_mutex"})

    tasks: List[Dict] = []
    for index in range(producers):
        period = rng.randint(period_min_us, period_max_us)
        cost = rng.randint(exec_min_us, exec_max_us)
        body: List[list] = [
            ["execute", _us(cost)],
            ["xQueueSend", "q", index, _us(period_max_us)],
            ["vTaskDelayUntil", _us(period)],
        ]
        tasks.append({
            "name": f"producer{index}",
            "priority": 1 + rng.randint(0, 1),
            "script": [["loop", iterations, body]],
        })

    receive_tmo = "forever" if starve else _us(10 * period_max_us)
    consume: List[list] = [
        ["xQueueReceive", "q", 0 if poll else receive_tmo],
    ]
    if use_mutex:
        consume += [
            ["xSemaphoreTake", "log_mutex"],
            ["execute", _us(rng.randint(exec_min_us, exec_max_us))],
            ["xSemaphoreGive", "log_mutex"],
        ]
    else:
        consume.append(
            ["execute", _us(rng.randint(exec_min_us, exec_max_us))]
        )
    if use_notify:
        consume.append(["xTaskNotifyGive", "monitor"])
    batches = producers * iterations + (1 if starve else 0)
    tasks.append({
        "name": "consumer",
        "priority": 3,
        "script": [["loop", batches, consume]],
    })
    if use_notify:
        tasks.append({
            "name": "monitor",
            "priority": 4,
            "script": [["loop", producers * iterations, [
                ["ulTaskNotifyTake", _us(20 * period_max_us)],
                ["execute", _us(exec_min_us)],
            ]]],
        })

    return {
        "name": f"freertos_p{producers}q{queue_length}",
        "personality": "freertos",
        "config": {
            "configUSE_PREEMPTION": preemption,
            "configUSE_TIME_SLICING": time_slicing,
            "tick": "1ms",
            "engine": engine,
        },
        "objects": objects,
        "tasks": tasks,
    }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
#: Fuzz parameter samplers: seeded draws over each generator's
#: interesting ranges (including overload and unordered locking, so the
#: fuzz loop reaches violations, not just healthy systems).
def _fuzz_periodic(rng: random.Random) -> Dict:
    return {
        "n": rng.randint(2, 7),
        "utilization": round(rng.uniform(0.3, 1.25), 3),
        "deadline_ratio": round(rng.uniform(0.7, 1.0), 2),
    }


def _fuzz_harmonic(rng: random.Random) -> Dict:
    params = _fuzz_periodic(rng)
    params.pop("periods", None)
    return params


def _fuzz_dag(rng: random.Random) -> Dict:
    return {
        "nodes": rng.randint(3, 8),
        "edge_prob": round(rng.uniform(0.15, 0.6), 3),
        "iterations": rng.randint(1, 3),
        "processors": rng.randint(1, 2),
    }


def _fuzz_bursty(rng: random.Random) -> Dict:
    return {
        "bursts": rng.randint(2, 5),
        "burst_len_max": rng.randint(1, 6),
        "background_tasks": rng.randint(0, 3),
        "background_utilization": round(rng.uniform(0.1, 0.6), 3),
    }


def _fuzz_partitioned(rng: random.Random) -> Dict:
    return {
        "partitions": rng.randint(2, 4),
        "tasks_per_partition": rng.randint(1, 3),
        "utilization": round(rng.uniform(0.3, 1.1), 3),
    }


def _fuzz_smp(rng: random.Random) -> Dict:
    return {
        "cores": rng.randint(2, 4),
        "n": rng.randint(3, 8),
        "utilization": round(rng.uniform(0.5, 2.5), 3),
        "dispatch": rng.choice(("global", "global", "partitioned",
                                "clustered")),
        "policy": rng.choice(("global_edf", "global_rm")),
        "heterogeneous": rng.random() < 0.4,
        "migration_cost_us": rng.choice((0, 0, 5, 20)),
        "affinity_prob": rng.choice((0.0, 0.0, 0.3)),
    }


def _fuzz_freertos(rng: random.Random) -> Dict:
    return {
        "producers": rng.randint(1, 3),
        "queue_length": rng.randint(1, 4),
        "iterations": rng.randint(1, 3),
        "use_mutex": rng.random() < 0.7,
        "use_notify": rng.random() < 0.4,
        "poll": rng.random() < 0.2,
        "starve": rng.random() < 0.3,
        "preemption": 1 if rng.random() < 0.8 else 0,
        "time_slicing": 1 if rng.random() < 0.7 else 0,
    }


def _fuzz_contention(rng: random.Random) -> Dict:
    return {
        "tasks": rng.randint(2, 4),
        "resources": rng.randint(2, 4),
        "locks_per_task": rng.randint(2, 3),
        "ordered": rng.random() < 0.5,
        "intervals": rng.random() < 0.5,
        "think_us": rng.choice((0, 0, 20, 50)),
        "processors": rng.randint(1, 2),
    }


@dataclass(frozen=True)
class Generator:
    """One registered scenario generator."""

    name: str
    build: Callable[..., Dict]
    fuzz: Callable[[random.Random], Dict]
    description: str


GENERATORS: Dict[str, Generator] = {
    gen.name: gen
    for gen in (
        Generator("periodic", gen_periodic, _fuzz_periodic,
                  "UUniFast periodic task sets, log-uniform periods"),
        Generator("harmonic", gen_harmonic, _fuzz_harmonic,
                  "periodic task sets over harmonic period families"),
        Generator("automotive", gen_automotive, _fuzz_harmonic,
                  "periodic task sets over the automotive period set"),
        Generator("dag", gen_dag, _fuzz_dag,
                  "random precedence DAGs wired through counter events"),
        Generator("bursty", gen_bursty, _fuzz_bursty,
                  "bursty interrupt source over background periodic load"),
        Generator("partitioned", gen_partitioned, _fuzz_partitioned,
                  "ARINC-653-style time-partitioned processors"),
        Generator("contention", gen_contention, _fuzz_contention,
                  "seeded nested locking over shared variables"),
        Generator("smp", gen_smp, _fuzz_smp,
                  "periodic task sets over multicore scheduling domains"),
        Generator("freertos", gen_freertos, _fuzz_freertos,
                  "FreeRTOS producer/consumer apps (personality specs)"),
    )
}


def generate(kind: str, seed: int = 0,
             params: Optional[Dict] = None) -> Dict:
    """Build one scenario spec: deterministic in ``(kind, seed, params)``."""
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise CorpusError(
            f"unknown generator {kind!r}; pick one of {sorted(GENERATORS)}"
        ) from None
    rng = random.Random(f"{kind}:{seed}")
    try:
        return generator.build(rng, **(params or {}))
    except TypeError as exc:
        raise CorpusError(f"generator {kind!r}: {exc}") from None


__all__ = [
    "AUTOMOTIVE_PERIODS_US",
    "GENERATORS",
    "Generator",
    "dag_edges",
    "gen_bursty",
    "gen_contention",
    "gen_dag",
    "gen_freertos",
    "gen_partitioned",
    "gen_periodic",
    "gen_smp",
    "generate",
    "spec_digest",
    "uunifast",
]
