"""Regression seeds: fuzz findings frozen as replayable JSON files.

A *seed* is a self-contained record of one interesting scenario the
fuzz loop found: the generated spec itself (embedded, so the seed stays
replayable even after the generator that produced it evolves), the
pipeline options it ran under, and the canonical verdict with its
SHA-256.  ``tests/corpus/test_seeds.py`` replays every checked-in seed
and asserts the stored digest reproduces byte-identically, which turns
each past finding into a permanent regression case.

File format (one JSON object, sorted keys, two-space indent)::

    {
      "format": 1,
      "generator": "contention",
      "scenario_seed": 1234,
      "params": {...},            # fuzz-sampled generator parameters
      "options": {...},           # PipelineOptions.to_dict()
      "spec": {...},              # the embedded scenario spec
      "spec_sha256": "...",
      "verdict": {...},           # canonical pipeline verdict
      "verdict_sha256": "..."
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import CorpusError
from .generators import spec_digest
from .pipeline import (
    PipelineOptions,
    run_pipeline,
    verdict_digest,
    violated_properties,
)

SEED_FORMAT = 1

_REQUIRED_KEYS = frozenset((
    "format", "generator", "scenario_seed", "params", "options",
    "spec", "spec_sha256", "verdict", "verdict_sha256",
))


def make_seed_record(*, generator: str, scenario_seed: int, params: Dict,
                     spec: Dict, verdict: Dict,
                     options: PipelineOptions) -> Dict:
    """Assemble a seed record from one pipeline finding."""
    return {
        "format": SEED_FORMAT,
        "generator": generator,
        "scenario_seed": scenario_seed,
        "params": params,
        "options": options.to_dict(),
        "spec": spec,
        "spec_sha256": spec_digest(spec),
        "verdict": verdict,
        "verdict_sha256": verdict_digest(verdict),
    }


def seed_signature(record: Dict) -> Tuple[str, Tuple[str, ...]]:
    """The dedup key: generator kind + the sorted violated properties.

    Two findings with the same signature witness the same failure class;
    the fuzz loop keeps only the first so the corpus stays small while
    still covering every (generator, failure-mode) pair discovered.
    """
    return (record["generator"],
            tuple(violated_properties(record["verdict"])))


def seed_filename(record: Dict) -> str:
    properties = "_".join(
        p.lower().replace("-", "") for p in
        violated_properties(record["verdict"])
    ) or "clean"
    return (f"{record['generator']}-{properties}-"
            f"{record['spec_sha256'][:10]}.json")


def write_seed(directory: Path, record: Dict) -> Path:
    """Write a seed record to ``directory``; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / seed_filename(record)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def iter_seed_paths(directory: Path) -> List[Path]:
    """All seed files under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def load_seed(path: Path) -> Dict:
    """Load and structurally validate one seed file."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise CorpusError(f"unreadable seed file {path}: {exc}") from None
    if not isinstance(record, dict):
        raise CorpusError(f"seed file {path} is not a JSON object")
    missing = _REQUIRED_KEYS - set(record)
    if missing:
        raise CorpusError(
            f"seed file {path} is missing keys {sorted(missing)}"
        )
    if record["format"] != SEED_FORMAT:
        raise CorpusError(
            f"seed file {path} has format {record['format']!r}, "
            f"this build reads format {SEED_FORMAT}"
        )
    actual = spec_digest(record["spec"])
    if actual != record["spec_sha256"]:
        raise CorpusError(
            f"seed file {path} is corrupt: embedded spec hashes to "
            f"{actual[:12]}..., recorded {record['spec_sha256'][:12]}..."
        )
    return record


def load_corpus(directory: Path) -> List[Dict]:
    """Load every seed under ``directory`` (each validated)."""
    return [load_seed(path) for path in iter_seed_paths(directory)]


def replay_seed(record: Dict) -> Dict:
    """Re-run the pipeline on the embedded spec; returns the verdict."""
    options = PipelineOptions.from_dict(record["options"])
    return run_pipeline(record["spec"], options)


def check_seed(record: Dict, *, path: Optional[Path] = None) -> Dict:
    """Replay one seed and compare digests.

    Returns ``{"ok", "expected", "actual", "verdict"}`` -- the test
    suite and ``pyrtos-sc fuzz --replay`` both key off ``ok``.
    """
    verdict = replay_seed(record)
    actual = verdict_digest(verdict)
    return {
        "ok": actual == record["verdict_sha256"],
        "path": str(path) if path is not None else None,
        "expected": record["verdict_sha256"],
        "actual": actual,
        "verdict": verdict,
    }


__all__ = [
    "SEED_FORMAT",
    "check_seed",
    "iter_seed_paths",
    "load_corpus",
    "load_seed",
    "make_seed_record",
    "replay_seed",
    "seed_filename",
    "seed_signature",
    "write_seed",
]
