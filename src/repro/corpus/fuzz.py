"""The fuzz loop: generate -> lint -> simulate -> verify -> shrink -> seed.

Each iteration draws a generator kind and a scenario seed from one
stream RNG (``random.Random(f"fuzz:{seed}")``), samples that
generator's fuzz parameters, builds the spec and pushes it through the
:mod:`repro.corpus.pipeline`.  Scenarios whose verdict shows any
violated property (or a pipeline crash) become *findings*; a finding
whose :func:`~repro.corpus.seeds.seed_signature` is not already covered
by the on-disk corpus is written to ``tests/corpus/seeds/`` as a
permanent regression case.

Determinism contract: with the same ``(seed, budget, kinds)`` and no
wall-clock bound, two runs anywhere produce the same scenario stream --
:attr:`FuzzReport.stream_sha256` is byte-identical -- and the same
findings.  A wall-bounded run covers a prefix of that stream, which is
why CI can run a 30-second fuzz and still assert "zero *new* seeds on a
clean tree": every prefix finding is already in the checked-in corpus.
"""

from __future__ import annotations

import hashlib
import random
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CorpusError
from ..kernel.simulator import Simulator
from ..kernel.time import MS
from ..mcse.builder import build_system
from ..mcse.model import System
from ..verify.counterexample import minimize
from ..verify.harness import VerifyOptions, run_once
from .generators import GENERATORS, generate, spec_digest
from .pipeline import (
    PipelineOptions,
    merge_static_dynamic,
    run_pipeline,
    violated_properties,
)
from .seeds import load_corpus, make_seed_record, seed_signature, write_seed

#: Default simulation/verification horizon for fuzzed scenarios: long
#: enough for several activations of the slowest default periods, short
#: enough to keep throughput in scenarios/second.
DEFAULT_HORIZON = 200 * MS


@dataclass
class FuzzFinding:
    """One interesting scenario surfaced by the fuzz loop."""

    index: int
    generator: str
    scenario_seed: int
    params: Dict
    spec_sha256: str
    properties: List[str]
    new: bool
    seed_path: Optional[str] = None
    #: Number of forced choices in the minimized counterexample
    #: (0: the default schedule already violates).
    choices: int = 0
    #: Replay runs the minimizer spent confirming the shrink.
    shrink_runs: int = 0

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "generator": self.generator,
            "scenario_seed": self.scenario_seed,
            "params": self.params,
            "spec_sha256": self.spec_sha256,
            "properties": self.properties,
            "new": self.new,
            "seed_path": self.seed_path,
            "choices": self.choices,
            "shrink_runs": self.shrink_runs,
        }


@dataclass
class FuzzReport:
    """The outcome of one fuzz session."""

    seed: int
    budget: int
    kinds: List[str]
    scenarios: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    new_seeds: int = 0
    known: int = 0
    shrink_runs: int = 0
    wall_s: float = 0.0
    stream_sha256: str = ""
    stopped_early: bool = False
    #: Per-rule static-claimed vs verifier-confirmed totals over every
    #: fuzzed scenario (see ``pipeline.merge_static_dynamic``).
    static_dynamic: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def scenarios_per_second(self) -> float:
        return self.scenarios / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "kinds": self.kinds,
            "scenarios": self.scenarios,
            "findings": [f.to_dict() for f in self.findings],
            "new_seeds": self.new_seeds,
            "known": self.known,
            "shrink_runs": self.shrink_runs,
            "wall_s": round(self.wall_s, 3),
            "scenarios_per_second": round(self.scenarios_per_second, 3),
            "stream_sha256": self.stream_sha256,
            "stopped_early": self.stopped_early,
            "static_dynamic": dict(sorted(self.static_dynamic.items())),
        }


def _shrink_metrics(spec: Dict, verdict: Dict,
                    options: PipelineOptions) -> Tuple[int, int]:
    """Confirm the verify-stage counterexample is minimal, counting runs.

    The explorer already hands back minimized choices; re-running
    :func:`repro.verify.counterexample.minimize` over them is idempotent
    and gives the fuzz loop an honest shrink-cost figure (each replay
    builds and runs the model once).
    """
    counterexample = verdict.get("verify", {}).get("counterexample")
    if not counterexample:
        return 0, 0
    choices = list(counterexample["choices"])
    runs = [0]

    def factory(sim: Simulator) -> System:
        runs[0] += 1
        return build_system(spec, sim=sim)

    verify_options = VerifyOptions(
        horizon=options.horizon, max_depth=options.verify_max_depth
    )
    outcome = run_once(factory, tuple(choices), verify_options)
    witness = next(
        (v for v in outcome.violations
         if v.property_id == counterexample["property"]), None
    )
    if witness is None:  # pragma: no cover - replay divergence guard
        return len(choices), runs[0]
    minimized = minimize(factory, choices, witness, verify_options)
    return len(minimized.choices), runs[0]


def fuzz(
    seed: int = 0,
    budget: int = 100,
    *,
    kinds: Optional[Sequence[str]] = None,
    seeds_dir: Optional[Path] = None,
    options: Optional[PipelineOptions] = None,
    max_wall_s: Optional[float] = None,
    write: bool = True,
    shrink: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run the fuzz loop; returns a :class:`FuzzReport`.

    ``seeds_dir`` holds the regression corpus: its existing signatures
    pre-populate the dedup set, new findings are written there (unless
    ``write=False``).  ``max_wall_s`` bounds wall-clock time -- the run
    then covers a prefix of the deterministic stream.
    """
    if budget < 1:
        raise CorpusError(f"fuzz budget must be >= 1, got {budget}")
    kind_list = sorted(kinds) if kinds else sorted(GENERATORS)
    unknown = set(kind_list) - set(GENERATORS)
    if unknown:
        raise CorpusError(
            f"unknown generator kinds {sorted(unknown)}; "
            f"pick from {sorted(GENERATORS)}"
        )
    options = options or PipelineOptions(horizon=DEFAULT_HORIZON)

    seen: Set[Tuple[str, Tuple[str, ...]]] = set()
    if seeds_dir is not None:
        for record in load_corpus(seeds_dir):
            seen.add(seed_signature(record))

    report = FuzzReport(seed=seed, budget=budget, kinds=kind_list)
    stream = hashlib.sha256()
    rng = random.Random(f"fuzz:{seed}")
    started = _time.monotonic()

    for index in range(budget):
        if max_wall_s is not None and \
                _time.monotonic() - started > max_wall_s:
            report.stopped_early = True
            break
        kind = kind_list[rng.randrange(len(kind_list))]
        scenario_seed = rng.randrange(2 ** 31)
        params = GENERATORS[kind].fuzz(
            random.Random(f"{kind}:params:{scenario_seed}")
        )
        spec = generate(kind, scenario_seed, params)
        digest = spec_digest(spec)
        stream.update(digest.encode())
        report.scenarios += 1

        verdict = run_pipeline(spec, options)
        merge_static_dynamic(
            report.static_dynamic, verdict.get("static_dynamic", {})
        )
        properties = violated_properties(verdict)
        if not properties:
            continue

        record = make_seed_record(
            generator=kind, scenario_seed=scenario_seed, params=params,
            spec=spec, verdict=verdict, options=options,
        )
        signature = seed_signature(record)
        finding = FuzzFinding(
            index=index, generator=kind, scenario_seed=scenario_seed,
            params=params, spec_sha256=digest,
            properties=properties, new=signature not in seen,
        )
        if shrink:
            finding.choices, finding.shrink_runs = _shrink_metrics(
                spec, verdict, options
            )
            report.shrink_runs += finding.shrink_runs
        if finding.new:
            seen.add(signature)
            report.new_seeds += 1
            if write and seeds_dir is not None:
                finding.seed_path = str(write_seed(seeds_dir, record))
            if progress is not None:
                progress(
                    f"[{index}] new: {kind} seed={scenario_seed} "
                    f"-> {','.join(properties)}"
                )
        else:
            report.known += 1
        report.findings.append(finding)

    report.wall_s = _time.monotonic() - started
    report.stream_sha256 = stream.hexdigest()
    return report


__all__ = [
    "DEFAULT_HORIZON",
    "FuzzFinding",
    "FuzzReport",
    "fuzz",
]
