"""Declarative batch matrices: a parameter grid fanned through campaign.

A *matrix document* is plain JSON describing a grid of generated
scenarios::

    {
      "name": "utilization-sweep",
      "generator": "periodic",              // or ["periodic", "dag"]
      "seeds": [0, 1, 2],                   // or {"count": 8, "start": 0}
      "parameters": {                       // each key: list of values
        "utilization": [0.5, 0.7, 0.9],
        "n": [3, 5]
      },
      "options": {"horizon": "200ms", "verify": false}
    }

The cartesian product generator x seeds x parameters becomes one
campaign cell each; cells run through the
:class:`repro.campaign.runner.Runner` (process pool, retries, on-disk
:class:`~repro.campaign.cache.ResultCache`), so re-running a matrix
after editing one axis only simulates the new cells.  The report is a
plain dict -- ``pyrtos-sc batch-run`` writes it as JSON and
``pyrtos-sc compare`` diffs two of them.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..campaign.cache import ResultCache
from ..campaign.runner import Runner
from ..campaign.spec import ExperimentSpec, RunRequest, no_run
from ..errors import CorpusError
from .generators import GENERATORS, generate, spec_digest
from .pipeline import (
    PipelineOptions,
    merge_static_dynamic,
    run_pipeline,
    verdict_digest,
    violated_properties,
)

_MATRIX_KEYS = frozenset((
    "name", "generator", "seeds", "parameters", "options",
))


def load_matrix(path: Path) -> Dict:
    """Load and validate a matrix document from a JSON file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise CorpusError(f"unreadable matrix file {path}: {exc}") from None
    return validate_matrix(doc)


def validate_matrix(doc: Dict) -> Dict:
    """Structurally validate a matrix document (returns it unchanged)."""
    if not isinstance(doc, dict):
        raise CorpusError(
            f"matrix document must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    unknown = set(doc) - _MATRIX_KEYS
    if unknown:
        raise CorpusError(
            f"unknown matrix keys {sorted(unknown)}; "
            f"expected a subset of {sorted(_MATRIX_KEYS)}"
        )
    generators = doc.get("generator", sorted(GENERATORS))
    if isinstance(generators, str):
        generators = [generators]
    bad = set(generators) - set(GENERATORS)
    if bad:
        raise CorpusError(
            f"matrix names unknown generators {sorted(bad)}; "
            f"pick from {sorted(GENERATORS)}"
        )
    parameters = doc.get("parameters", {})
    if not isinstance(parameters, dict):
        raise CorpusError("matrix 'parameters' must be an object of lists")
    for key, values in parameters.items():
        if not isinstance(values, list) or not values:
            raise CorpusError(
                f"matrix parameter {key!r} must be a non-empty list, "
                f"got {values!r}"
            )
    _matrix_seeds(doc)  # raises on malformed seed axis
    return doc


def _matrix_seeds(doc: Dict) -> List[int]:
    seeds = doc.get("seeds", [0])
    if isinstance(seeds, dict):
        unknown = set(seeds) - {"count", "start"}
        if unknown:
            raise CorpusError(
                f"matrix seeds object has unknown keys {sorted(unknown)}"
            )
        count = seeds.get("count", 1)
        start = seeds.get("start", 0)
        if not isinstance(count, int) or count < 1:
            raise CorpusError(f"matrix seeds count must be >= 1: {count!r}")
        return list(range(start, start + count))
    if not isinstance(seeds, list) or not all(
            isinstance(s, int) for s in seeds):
        raise CorpusError(
            f"matrix 'seeds' must be a list of integers or "
            f"{{'count', 'start'}}, got {seeds!r}"
        )
    return seeds


def expand_matrix(doc: Dict) -> List[Dict]:
    """The cartesian product: one plain-JSON cell per grid point."""
    validate_matrix(doc)
    generators = doc.get("generator", sorted(GENERATORS))
    if isinstance(generators, str):
        generators = [generators]
    seeds = _matrix_seeds(doc)
    parameters = doc.get("parameters", {})
    options = doc.get("options", {})
    axes = sorted(parameters)
    cells: List[Dict] = []
    for generator in generators:
        for seed in seeds:
            for combo in itertools.product(
                    *(parameters[axis] for axis in axes)):
                cells.append({
                    "generator": generator,
                    "scenario_seed": seed,
                    "params": dict(zip(axes, combo)),
                    "options": dict(options),
                })
    return cells


def cell_key(cell: Dict) -> str:
    """The stable identity of one cell (used by ``compare``)."""
    params = json.dumps(cell.get("params", {}), sort_keys=True,
                        separators=(",", ":"))
    return f"{cell['generator']}:{cell['scenario_seed']}:{params}"


def run_cell(params: Dict) -> Dict:
    """Execute one matrix cell: generate + pipeline -> metrics dict.

    Module-level so the campaign Runner can ship cells to worker
    processes; ``params`` is the plain-JSON cell, which doubles as the
    cache key content.
    """
    spec = generate(params["generator"], params["scenario_seed"],
                    params.get("params") or None)
    options = PipelineOptions.from_dict(params.get("options", {}))
    verdict = run_pipeline(spec, options)
    simulate = verdict.get("simulate", {})
    return {
        "spec_sha256": spec_digest(spec),
        "verdict_sha256": verdict_digest(verdict),
        "properties": violated_properties(verdict),
        "end_time": simulate.get("end_time"),
        "lint_errors": len(verdict.get("lint", {}).get("errors", ())),
        "lint_warnings": len(verdict.get("lint", {}).get("warnings", ())),
        "lint_suppressed": sorted(
            verdict.get("lint", {}).get("suppressed", ())),
        "verify_verdict": verdict.get("verify", {}).get("verdict"),
        "static_dynamic": verdict.get("static_dynamic", {}),
    }


def _identity_metrics(params: Dict, state: Dict) -> Dict:
    return dict(state)


def run_matrix(doc: Dict, *, workers: int = 1,
               cache: Union[bool, str, Path, ResultCache, None] = None,
               timeout: Optional[float] = None,
               progress: bool = False) -> Dict:
    """Run every cell of a matrix document; returns the report dict."""
    validate_matrix(doc)
    cells = expand_matrix(doc)
    if not cells:
        raise CorpusError("matrix expands to zero cells")
    spec = ExperimentSpec(
        name=f"corpus-matrix-{doc.get('name', 'matrix')}",
        build=run_cell,
        metrics=_identity_metrics,
        run=no_run,
    )
    runner = Runner(workers=workers, cache=cache, timeout=timeout,
                    progress=progress)
    requests = [RunRequest(index=index, params=cell)
                for index, cell in enumerate(cells)]
    outcome = runner.execute(spec, requests)

    report_cells: List[Dict] = []
    by_property: Dict[str, int] = {}
    rule_totals: Dict[str, Dict[str, int]] = {}
    suppressed_totals: Dict[str, int] = {}
    end_times: List[int] = []
    for result in outcome.results:
        metrics = result.metrics
        for prop in metrics.get("properties", ()):
            by_property[prop] = by_property.get(prop, 0) + 1
        for rule_id in metrics.get("lint_suppressed", ()):
            suppressed_totals[rule_id] = suppressed_totals.get(rule_id, 0) + 1
        merge_static_dynamic(rule_totals, metrics.get("static_dynamic", {}))
        if isinstance(metrics.get("end_time"), (int, float)):
            end_times.append(metrics["end_time"])
        report_cells.append({
            "index": result.index,
            "key": cell_key(cells[result.index]),
            "cell": cells[result.index],
            "metrics": metrics,
            "cached": result.cached,
            "wall_s": round(result.wall_s, 6),
        })
    failures = [{
        "index": failure.index,
        "key": cell_key(cells[failure.index]),
        "error_type": failure.error_type,
        "message": failure.message,
    } for failure in outcome.failures]

    summary = {
        "cells": len(cells),
        "completed": len(outcome.results),
        "failed": len(failures),
        "violating": sum(1 for c in report_cells
                         if c["metrics"].get("properties")),
        "by_property": dict(sorted(by_property.items())),
        "static_dynamic": dict(sorted(rule_totals.items())),
        # cells whose verdicts lean on suppressions, counted honestly
        # per muted rule rather than silently folded into "clean"
        "suppressed": dict(sorted(suppressed_totals.items())),
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "wall_s": round(outcome.wall_s, 3),
    }
    if end_times:
        summary["end_time"] = {
            "min": min(end_times),
            "max": max(end_times),
            "mean": sum(end_times) / len(end_times),
        }
    return {
        "name": doc.get("name", "matrix"),
        "matrix": doc,
        "cells": report_cells,
        "failures": failures,
        "summary": summary,
    }


__all__ = [
    "cell_key",
    "expand_matrix",
    "load_matrix",
    "run_cell",
    "run_matrix",
    "validate_matrix",
]
