"""Scenario corpus: generators, batch matrices and the workload fuzzer.

The paper evaluates its RTOS model on two hand-built workloads (the
fig6/fig7 system and an MPEG-2 decoder).  This package replaces that
thin base with a *scenario stream* every subsystem can drink from:

* :mod:`~repro.corpus.generators` -- seeded workload generators
  (UUniFast periodic sets, harmonic/automotive period families, random
  precedence DAGs, bursty interrupts, ARINC-653 time partitions,
  mutex contention), all emitting the declarative builder spec JSON;
* :mod:`~repro.corpus.pipeline` -- the shared lint -> simulate ->
  verify check pipeline reducing one spec to a canonical verdict;
* :mod:`~repro.corpus.matrix` -- declarative batch matrices fanned
  through the campaign Runner with cached results
  (``pyrtos-sc batch-run``);
* :mod:`~repro.corpus.compare` -- audit diffs between two matrix runs
  (``pyrtos-sc compare``);
* :mod:`~repro.corpus.fuzz` -- the fuzz loop feeding generated
  scenarios through the pipeline, shrinking findings via the verifier's
  counterexample minimizer and freezing them as regression seeds
  (``pyrtos-sc fuzz``);
* :mod:`~repro.corpus.seeds` -- the replayable seed-file format under
  ``tests/corpus/seeds/``.

Determinism is the design center: generators are pure functions of
``(kind, seed, params)``, the fuzz stream is a pure function of its
seed, and seed files embed the spec they were found with -- so every
finding is reproducible byte-for-byte, forever.
"""

from .compare import compare_reports, format_comparison, load_report
from .fuzz import DEFAULT_HORIZON, FuzzFinding, FuzzReport, fuzz
from .generators import (
    AUTOMOTIVE_PERIODS_US,
    GENERATORS,
    Generator,
    dag_edges,
    gen_bursty,
    gen_contention,
    gen_dag,
    gen_partitioned,
    gen_periodic,
    generate,
    spec_digest,
)
from .matrix import (
    cell_key,
    expand_matrix,
    load_matrix,
    run_cell,
    run_matrix,
    validate_matrix,
)
from .pipeline import (
    PipelineOptions,
    run_pipeline,
    verdict_digest,
    violated_properties,
)
from .seeds import (
    SEED_FORMAT,
    check_seed,
    iter_seed_paths,
    load_corpus,
    load_seed,
    make_seed_record,
    replay_seed,
    seed_signature,
    write_seed,
)

__all__ = [
    "AUTOMOTIVE_PERIODS_US",
    "DEFAULT_HORIZON",
    "FuzzFinding",
    "FuzzReport",
    "GENERATORS",
    "Generator",
    "PipelineOptions",
    "SEED_FORMAT",
    "cell_key",
    "check_seed",
    "compare_reports",
    "dag_edges",
    "expand_matrix",
    "format_comparison",
    "fuzz",
    "gen_bursty",
    "gen_contention",
    "gen_dag",
    "gen_partitioned",
    "gen_periodic",
    "generate",
    "iter_seed_paths",
    "load_corpus",
    "load_matrix",
    "load_report",
    "load_seed",
    "make_seed_record",
    "replay_seed",
    "run_cell",
    "run_matrix",
    "run_pipeline",
    "seed_signature",
    "spec_digest",
    "validate_matrix",
    "verdict_digest",
    "violated_properties",
    "write_seed",
]
