"""The campaign runner: parallel, cached, fault-tolerant execution.

:class:`Runner` takes an :class:`~repro.campaign.spec.ExperimentSpec`
plus a list of :class:`~repro.campaign.spec.RunRequest` points and
executes them

* **in parallel** -- ``workers=N`` shards fresh runs over a process
  pool with chunked dispatch (``imap_unordered``), because one Python
  process cannot use more than one core;
* **cached** -- with ``cache=`` enabled, runs whose content key is
  already on disk are served without simulating, and fresh results are
  appended for the next invocation;
* **fault-tolerant** -- a run that raises (or exceeds ``timeout``
  seconds of wall clock) is retried up to ``retries`` times and then
  recorded as a structured :class:`RunFailure` instead of aborting the
  campaign.

Determinism guarantee: results are re-ordered by run index before
aggregation, so the *content* of a :class:`CampaignResult` depends only
on the spec and the requests -- never on worker count, chunking or
completion order.
"""

from __future__ import annotations

import multiprocessing
import pickle
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import CampaignError, RunTimeout
from .cache import resolve_cache
from .progress import resolve_progress
from .spec import ExperimentSpec, RunRequest


@dataclass
class RunResult:
    """One successful run: its parameters, metrics and provenance."""

    index: int
    params: Dict
    metrics: Dict
    wall_s: float = 0.0
    attempts: int = 1
    cached: bool = False


@dataclass
class RunFailure:
    """One run that failed after every retry.

    ``error_type`` is the exception class name (``"RunTimeout"`` for
    deadline kills), ``traceback`` the formatted worker-side stack.
    """

    index: int
    params: Dict
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    timed_out: bool = False

    def describe(self) -> str:
        return (f"run {self.index} {self.params!r}: {self.error_type}: "
                f"{self.message} (after {self.attempts} attempt(s))")


@dataclass
class CampaignResult:
    """Everything a campaign produced, in deterministic index order."""

    spec_name: str
    results: List[RunResult] = field(default_factory=list)
    failures: List[RunFailure] = field(default_factory=list)
    wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def runs(self) -> int:
        return len(self.results) + len(self.failures)

    def raise_on_failure(self) -> None:
        """Raise :class:`CampaignError` summarising any failed runs."""
        if self.failures:
            preview = "; ".join(f.describe() for f in self.failures[:3])
            more = len(self.failures) - 3
            if more > 0:
                preview += f"; ... and {more} more"
            raise CampaignError(
                f"campaign {self.spec_name!r}: "
                f"{len(self.failures)}/{self.runs} runs failed ({preview})"
            )

    def summary(self) -> dict:
        """A JSON-ready accounting of the campaign execution."""
        return {
            "spec": self.spec_name,
            "runs": self.runs,
            "ok": len(self.results),
            "failed": len(self.failures),
            "cached": sum(1 for r in self.results if r.cached),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 6),
            "runs_per_s": round(self.runs / self.wall_s, 3)
            if self.wall_s > 0 else None,
        }


# ---------------------------------------------------------------------------
# Worker-side execution (must stay module-level: it crosses the pickle
# boundary into pool processes)
# ---------------------------------------------------------------------------
@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`RunTimeout` after ``seconds`` of wall clock.

    Uses ``SIGALRM``/``setitimer``, which only works in a main thread on
    a Unix platform -- exactly where pool workers (and the serial path)
    execute.  Elsewhere the deadline is silently not enforced.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded {seconds}s wall-clock timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _attempt_run(spec: ExperimentSpec, request: RunRequest,
                 timeout: Optional[float], retries: int) -> tuple:
    """Execute one request with bounded retry; never raises."""
    outcome = None
    for attempt in range(1, retries + 2):
        start = time.perf_counter()
        try:
            with _deadline(timeout):
                metrics = spec.execute(request)
            wall = time.perf_counter() - start
            return ("ok", request.index, metrics, wall, attempt)
        except RunTimeout as exc:
            outcome = ("fail", request.index, "RunTimeout", str(exc),
                       "", attempt, True)
        except Exception as exc:  # structured record, not an abort
            outcome = ("fail", request.index, type(exc).__name__,
                       str(exc), traceback.format_exc(), attempt, False)
    return outcome


def _pool_entry(payload) -> tuple:
    spec, request, timeout, retries = payload
    return _attempt_run(spec, request, timeout, retries)


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------
class Runner:
    """Executes campaigns; see the module docstring for semantics.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (default) runs in-process -- no pickling
        requirement, useful for closures and debugging.
    cache:
        ``True`` / path / :class:`ResultCache` to enable the on-disk
        result cache; ``None`` disables it.
    timeout:
        Per-run wall-clock limit in seconds (per attempt).
    retries:
        Extra attempts after a failed run (0 = fail fast per run).
    chunk_size:
        Runs per pool dispatch; default balances scheduling overhead
        against tail latency (``~4`` chunks per worker).
    progress:
        ``True`` or a :class:`ProgressReporter` for live status lines.
    """

    def __init__(self, *, workers: int = 1, cache=None,
                 timeout: Optional[float] = None, retries: int = 0,
                 chunk_size: Optional[int] = None, progress=False,
                 mp_context: Optional[str] = None) -> None:
        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise CampaignError(f"retries must be >= 0, got {retries}")
        self.workers = workers
        self.cache = resolve_cache(cache)
        self.timeout = timeout
        self.retries = retries
        self.chunk_size = chunk_size
        self.progress = progress
        self.mp_context = mp_context

    # -- public API ----------------------------------------------------
    def execute(self, spec: ExperimentSpec,
                requests: Sequence[RunRequest]) -> CampaignResult:
        """Run every request; returns results in index order."""
        started = time.perf_counter()
        reporter = resolve_progress(self.progress, len(requests),
                                    label=spec.name)
        if reporter is not None:
            reporter.start()

        outcome = CampaignResult(spec_name=spec.name, workers=self.workers)
        fingerprint = spec.fingerprint() if self.cache is not None else None
        hits0 = self.cache.hits if self.cache is not None else 0
        miss0 = self.cache.misses if self.cache is not None else 0

        pending: List[RunRequest] = []
        for request in requests:
            record = None
            if self.cache is not None:
                record = self.cache.lookup(spec, request.params,
                                           fingerprint=fingerprint)
            if record is not None:
                outcome.results.append(RunResult(
                    index=request.index, params=dict(request.params),
                    metrics=record["metrics"],
                    wall_s=record.get("wall_s", 0.0), cached=True,
                ))
                if reporter is not None:
                    reporter.update(cached=1)
            else:
                pending.append(request)

        by_index = {request.index: request for request in pending}
        for raw in self._execute_pending(spec, pending):
            self._absorb(spec, fingerprint, by_index, raw, outcome,
                         reporter)

        outcome.results.sort(key=lambda r: r.index)
        outcome.failures.sort(key=lambda f: f.index)
        outcome.wall_s = time.perf_counter() - started
        if self.cache is not None:
            outcome.cache_hits = self.cache.hits - hits0
            outcome.cache_misses = self.cache.misses - miss0
        if reporter is not None:
            reporter.finish(wall_s=outcome.wall_s)
        return outcome

    # -- internals -----------------------------------------------------
    def _execute_pending(self, spec: ExperimentSpec,
                         pending: Sequence[RunRequest]):
        if not pending:
            return
        if self.workers == 1:
            for request in pending:
                yield _attempt_run(spec, request, self.timeout,
                                   self.retries)
            return

        self._check_picklable(spec, pending[0])
        payloads = [(spec, request, self.timeout, self.retries)
                    for request in pending]
        chunk = self.chunk_size or max(
            1, min(32, len(pending) // (self.workers * 4) or 1)
        )
        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.workers, len(pending))
        with context.Pool(processes=workers) as pool:
            for raw in pool.imap_unordered(_pool_entry, payloads,
                                           chunksize=chunk):
                yield raw

    def _absorb(self, spec, fingerprint, by_index, raw, outcome,
                reporter) -> None:
        if raw[0] == "ok":
            _, index, metrics, wall, attempts = raw
            request = by_index[index]
            outcome.results.append(RunResult(
                index=index, params=dict(request.params),
                metrics=metrics, wall_s=wall, attempts=attempts,
            ))
            if self.cache is not None:
                self.cache.store(spec, request.params, metrics,
                                 wall_s=wall, fingerprint=fingerprint)
            if reporter is not None:
                reporter.update(ok=1)
        else:
            _, index, error_type, message, tb, attempts, timed_out = raw
            request = by_index[index]
            outcome.failures.append(RunFailure(
                index=index, params=dict(request.params),
                error_type=error_type, message=message, traceback=tb,
                attempts=attempts, timed_out=timed_out,
            ))
            if reporter is not None:
                reporter.update(failed=1)

    def _check_picklable(self, spec: ExperimentSpec,
                         sample: RunRequest) -> None:
        try:
            pickle.dumps((spec, sample))
        except Exception as exc:
            raise CampaignError(
                f"experiment {spec.name!r} cannot be shipped to worker "
                f"processes: {exc}. Campaign callables must be "
                "module-level functions (or functools.partial over "
                "them); use workers=1 for closures/lambdas."
            ) from None
