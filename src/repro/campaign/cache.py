"""Content-addressed on-disk result cache for campaigns.

Layout: one JSONL file per experiment *version* under the cache root
(default ``.campaign-cache/``)::

    .campaign-cache/<name>-<fingerprint12>.jsonl

Each line is one completed run: ``{"key": ..., "metrics": ..., "wall_s":
...}``.  The key is a SHA-256 over the spec fingerprint plus the
canonical JSON of the run parameters, so

* re-running an identical grid is a 100% hit (no simulation at all),
* editing one parameter axis re-simulates only the new cells, and
* editing the experiment code starts a fresh file (old results are kept
  on disk for forensics but never served).

Files are append-only; a torn final line (crash mid-write) is skipped on
load rather than poisoning the campaign.  Failed runs are never cached
-- a retry after a fix must actually re-run.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Dict, Optional

from .spec import ExperimentSpec, canonical_json

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_ROOT = ".campaign-cache"


def run_key(spec_fingerprint: str, params: Dict) -> str:
    """The content hash identifying one run of one experiment version."""
    payload = spec_fingerprint + "\n" + canonical_json(params)
    return hashlib.sha256(payload.encode()).hexdigest()


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name) or "campaign"


class ResultCache:
    """JSONL-backed result store keyed by run content hashes.

    ``hits`` and ``misses`` account every lookup since construction, so
    callers can report cache effectiveness without extra bookkeeping.

    ``max_entries`` bounds on-disk growth: after every store, whole
    result files are evicted **least-recently-used first** (by file
    mtime -- lookups touch the file they hit) until the total entry
    count across the cache root fits the bound again.  The file just
    written is never evicted, so a single oversized experiment still
    caches its most recent results; ``pruned_files`` counts evictions.
    ``max_entries=None`` (the default) keeps the historical
    grow-without-bound behaviour.
    """

    def __init__(self, root: str = DEFAULT_CACHE_ROOT, *,
                 max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.root = str(root)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.pruned_files = 0
        self._index: Dict[str, Dict[str, dict]] = {}

    # -- file handling -------------------------------------------------
    def path_for(self, spec: ExperimentSpec,
                 fingerprint: Optional[str] = None) -> str:
        fingerprint = fingerprint or spec.fingerprint()
        return os.path.join(
            self.root, f"{_slug(spec.name)}-{fingerprint[:12]}.jsonl"
        )

    def _load(self, path: str) -> Dict[str, dict]:
        if path in self._index:
            return self._index[path]
        index: Dict[str, dict] = {}
        if os.path.exists(path):
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn write; ignore the partial line
                    key = record.get("key")
                    if key:
                        index[key] = record
        self._index[path] = index
        return index

    # -- lookup / store ------------------------------------------------
    def lookup(self, spec: ExperimentSpec, params: Dict, *,
               fingerprint: Optional[str] = None) -> Optional[dict]:
        """The cached record for ``params``, or None (counted as miss)."""
        fingerprint = fingerprint or spec.fingerprint()
        path = self.path_for(spec, fingerprint)
        record = self._load(path).get(run_key(fingerprint, params))
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
            self._touch(path)
        return record

    def store(self, spec: ExperimentSpec, params: Dict, metrics: Dict,
              *, wall_s: float = 0.0,
              fingerprint: Optional[str] = None) -> dict:
        """Append one completed run; returns the stored record."""
        fingerprint = fingerprint or spec.fingerprint()
        path = self.path_for(spec, fingerprint)
        record = {
            "key": run_key(fingerprint, params),
            "params": json.loads(canonical_json(params)),
            "metrics": metrics,
            "wall_s": round(wall_s, 6),
        }
        index = self._load(path)
        os.makedirs(self.root, exist_ok=True)
        with open(path, "a") as handle:
            # NOT sort_keys: the metrics dict must round-trip with its
            # insertion order intact so cached and fresh campaigns
            # aggregate identically.
            handle.write(json.dumps(record) + "\n")
        index[record["key"]] = record
        self._prune(keep=path)
        return record

    def __len__(self) -> int:
        return sum(len(index) for index in self._index.values())

    # -- bounded growth ------------------------------------------------
    @staticmethod
    def _touch(path: str) -> None:
        """Refresh a file's mtime so LRU pruning sees it as recent."""
        try:
            os.utime(path)
        except OSError:
            pass  # the file may have been pruned/removed concurrently

    @staticmethod
    def _count_entries(path: str) -> int:
        try:
            with open(path) as handle:
                return sum(1 for line in handle if line.strip())
        except OSError:
            return 0

    def _prune(self, keep: str) -> None:
        """Evict least-recently-used result files beyond ``max_entries``.

        ``keep`` (the file just appended to) is exempt, so pruning can
        never discard the result that was just computed.
        """
        if self.max_entries is None:
            return
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        files = []
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(self.root, name)
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                continue
            loaded = self._index.get(path)
            count = (len(loaded) if loaded is not None
                     else self._count_entries(path))
            files.append((mtime, path, count))
        total = sum(count for _, _, count in files)
        if total <= self.max_entries:
            return
        keep = os.path.abspath(keep)
        for _, path, count in sorted(files):
            if total <= self.max_entries:
                break
            if os.path.abspath(path) == keep:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            self._index.pop(path, None)
            self.pruned_files += 1
            total -= count


def resolve_cache(cache) -> Optional[ResultCache]:
    """Normalise the user-facing ``cache=`` argument.

    Accepts ``None``/``False`` (off), ``True`` (default root), a path
    string, or a ready :class:`ResultCache` instance.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(str(cache))
    raise TypeError(
        f"cache must be None, bool, a path or a ResultCache, "
        f"got {type(cache).__name__}"
    )
