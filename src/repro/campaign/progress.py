"""Campaign progress and throughput reporting.

A :class:`ProgressReporter` prints a throttled one-line status to
stderr while runs complete -- count, percentage, ok/fail/cached split
and a wall-clock ETA extrapolated from the observed per-run rate -- and
a final throughput summary when the campaign finishes.  On a TTY the
line redraws in place; in logs it emits at most one line per
``min_interval`` seconds so CI output stays readable.
"""

from __future__ import annotations

import sys
import time
from typing import Optional


def _fmt_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    if seconds < 100:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    return f"{minutes}m{secs:02d}s"


class ProgressReporter:
    """Streams ``[done/total] ... eta`` lines; summarises at the end."""

    def __init__(self, total: int, *, label: str = "campaign",
                 stream=None, min_interval: float = 0.5,
                 clock=time.perf_counter) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._clock = clock
        self.ok = 0
        self.failed = 0
        self.cached = 0
        self._started: Optional[float] = None
        self._last_emit = float("-inf")

    # -- lifecycle -----------------------------------------------------
    @property
    def done(self) -> int:
        return self.ok + self.failed + self.cached

    def start(self) -> None:
        self._started = self._clock()

    def update(self, *, ok: int = 0, failed: int = 0,
               cached: int = 0) -> None:
        """Record finished runs; emits a status line when due."""
        if self._started is None:
            self.start()
        self.ok += ok
        self.failed += failed
        self.cached += cached
        now = self._clock()
        if (now - self._last_emit >= self.min_interval
                or self.done >= self.total):
            self._last_emit = now
            self._emit(now)

    def finish(self, *, wall_s: Optional[float] = None) -> str:
        """Print and return the final throughput summary line."""
        if self._started is None:
            self.start()
        if wall_s is None:
            wall_s = self._clock() - self._started
        rate = self.done / wall_s if wall_s > 0 else float("inf")
        summary = (
            f"{self.label}: {self.done}/{self.total} runs in "
            f"{wall_s:.2f}s ({rate:.1f} runs/s; ok={self.ok} "
            f"fail={self.failed} cached={self.cached})"
        )
        self._write(summary + "\n", final=True)
        return summary

    # -- rendering -----------------------------------------------------
    def _emit(self, now: float) -> None:
        elapsed = now - self._started
        fresh = self.ok + self.failed  # cached runs are ~free
        remaining = self.total - self.done
        eta = (elapsed / fresh) * remaining if fresh else 0.0
        pct = 100.0 * self.done / self.total if self.total else 100.0
        line = (
            f"[{self.done}/{self.total}] {pct:3.0f}% ok={self.ok} "
            f"fail={self.failed} cached={self.cached} "
            f"eta {_fmt_eta(eta)}"
        )
        self._write(line)

    def _write(self, text: str, *, final: bool = False) -> None:
        is_tty = getattr(self.stream, "isatty", lambda: False)()
        if is_tty and not final:
            self.stream.write("\r" + text.ljust(78))
        elif is_tty:
            self.stream.write("\r" + text)
        else:
            self.stream.write(text.rstrip("\n") + "\n")
        self.stream.flush()


def resolve_progress(progress, total: int, *,
                     label: str) -> Optional[ProgressReporter]:
    """Normalise the user-facing ``progress=`` argument."""
    if progress is None or progress is False:
        return None
    if progress is True:
        return ProgressReporter(total, label=label)
    if isinstance(progress, ProgressReporter):
        return progress
    raise TypeError(
        f"progress must be a bool or ProgressReporter, "
        f"got {type(progress).__name__}"
    )
