"""Campaign execution: parallel, cached, fault-tolerant batch runs.

The paper's purpose is design-space exploration -- running the same
RTOS model over many seeds and configurations.  This subsystem turns
those one-off loops into an orchestrated batch engine:

* :class:`ExperimentSpec` -- a picklable build/run/metrics triple with
  deterministic per-run seed derivation (:func:`derive_seed`);
* :class:`Runner` -- shards runs over ``workers=N`` processes with
  chunked dispatch, per-run ``timeout`` and bounded ``retries``;
* :class:`ResultCache` -- a content-hash-keyed JSONL store under
  ``.campaign-cache/`` so unchanged grid cells are never re-simulated;
* :class:`ProgressReporter` -- live progress/ETA plus a final
  throughput summary.

The high-level drivers :func:`repro.analysis.monte_carlo` and
:func:`repro.analysis.explore` accept ``workers=`` / ``cache=`` and
delegate here while keeping their serial return types unchanged; see
``docs/campaigns.md`` for semantics and guarantees.
"""

from .cache import DEFAULT_CACHE_ROOT, ResultCache, resolve_cache, run_key
from .experiments import mpeg2_experiment
from .progress import ProgressReporter
from .runner import CampaignResult, RunFailure, RunResult, Runner
from .spec import (
    ExperimentSpec,
    RunRequest,
    callable_fingerprint,
    canonical_json,
    derive_seed,
    mix_seed,
    spec_from_design,
    spec_from_experiment,
)

__all__ = [
    "CampaignResult",
    "DEFAULT_CACHE_ROOT",
    "ExperimentSpec",
    "ProgressReporter",
    "ResultCache",
    "RunFailure",
    "RunRequest",
    "RunResult",
    "Runner",
    "callable_fingerprint",
    "canonical_json",
    "derive_seed",
    "mix_seed",
    "mpeg2_experiment",
    "resolve_cache",
    "run_key",
    "spec_from_design",
    "spec_from_experiment",
]
