"""Experiment specifications: what one campaign run *is*.

A campaign executes the same experiment over many parameter points
(Monte-Carlo seeds, design-space configurations, or both).  The unit of
work is described by an :class:`ExperimentSpec` -- a picklable
build/run/metrics triple -- plus one :class:`RunRequest` per point.
Keeping the spec picklable is what lets the :class:`~repro.campaign.
runner.Runner` ship runs to worker processes, and keeping it
*fingerprintable* is what lets the on-disk cache recognise "same code,
same parameters" across interpreter invocations.

Seed discipline: runs are numbered ``0 .. n-1`` and seeds derive
deterministically from ``(base_seed, index)`` via :func:`derive_seed`,
so a campaign is exactly reproducible and trivially shardable no matter
how runs are distributed over workers.  :func:`mix_seed` is the
decorrelated variant for users who want statistically independent
streams rather than consecutive integers.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..errors import CampaignError

#: Private parameter key carrying the simulation duration for
#: design-space runs (kept out of user-visible config dicts).
DURATION_KEY = "__duration__"

#: Private metric key carrying the final simulated time of a run.
SIM_NOW_KEY = "__sim_now__"


def derive_seed(base_seed: int, index: int) -> int:
    """The campaign seed for run ``index``: ``base_seed + index``.

    Linear derivation matches the documented :func:`repro.analysis.
    monte_carlo` contract ("seeds are base_seed .. base_seed + runs -
    1"), so parallel campaigns aggregate byte-identically to serial
    ones.
    """
    return base_seed + index


def mix_seed(base_seed: int, index: int) -> int:
    """A decorrelated 63-bit seed for run ``index``.

    SHA-256 mixing breaks the arithmetic relationship between
    consecutive runs; use it when the experiment's RNG is sensitive to
    correlated seeds (e.g. low-quality generators seeded with
    neighbouring integers).
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _public_params(params: Dict) -> Dict:
    """The user-visible view of a parameter point (no ``__...`` keys)."""
    return {k: v for k, v in params.items() if not k.startswith("__")}


def _json_default(value):
    raise CampaignError(
        f"campaign parameter value {value!r} is not JSON-serializable; "
        "cacheable campaigns need plain data (numbers, strings, lists, "
        "dicts) as parameters"
    )


def canonical_json(obj) -> str:
    """A canonical (sorted-key, compact) JSON encoding for hashing."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=_json_default)


def callable_fingerprint(fn) -> str:
    """A content hash of a callable: its source, or its identity.

    Editing an experiment function changes the fingerprint, which
    invalidates every cached result computed with the old code.
    ``functools.partial`` objects fingerprint as the inner callable plus
    the bound arguments, so parameterized experiments key correctly.
    """
    if isinstance(fn, functools.partial):
        parts = [callable_fingerprint(fn.func)]
        for value in fn.args:
            parts.append(callable_fingerprint(value) if callable(value)
                         else repr(value))
        for key in sorted(fn.keywords):
            value = fn.keywords[key]
            rendered = (callable_fingerprint(value) if callable(value)
                        else repr(value))
            parts.append(f"{key}={rendered}")
        return "partial(" + ",".join(parts) + ")"
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        source = ""
    qualname = getattr(fn, "__qualname__", repr(fn))
    module = getattr(fn, "__module__", "")
    digest = hashlib.sha256(
        f"{module}.{qualname}\n{source}".encode()
    ).hexdigest()
    return digest


@dataclass
class RunRequest:
    """One parameter point of a campaign.

    ``params`` is everything the experiment needs for this run -- for a
    Monte-Carlo campaign a ``{"seed": ...}`` dict, for a design-space
    sweep the configuration (plus private ``__...`` keys added by the
    drivers).  ``index`` orders results deterministically regardless of
    worker completion order.
    """

    index: int
    params: Dict = field(default_factory=dict)


def run_system(params: Dict, system) -> None:
    """Default run step: ``system.run(duration)`` (duration optional)."""
    system.run(params.get(DURATION_KEY))


def no_run(params: Dict, state) -> None:
    """Run step for experiments whose *build* already does everything."""


def _identity_metrics(params: Dict, state) -> Dict:
    """Metrics step for experiments whose build returned the metrics."""
    return dict(state)


def _call_seeded(experiment: Callable[[int], Dict], params: Dict):
    return experiment(params["seed"])


def _design_build(user_build: Callable[[Dict], Any], params: Dict):
    return user_build(_public_params(params))


def _design_metrics(user_metrics: Callable[[Dict, Any], Dict],
                    params: Dict, system) -> Dict:
    merged = {SIM_NOW_KEY: system.now}
    merged.update(user_metrics(_public_params(params), system))
    return merged


@dataclass
class ExperimentSpec:
    """A picklable build/run/metrics triple describing one experiment.

    * ``build(params)`` turns one parameter point into a ready system
      (or any state object);
    * ``run(params, state)`` executes it (default: ``state.run(...)``);
    * ``metrics(params, state)`` extracts a dict of result values.

    All three callables must be module-level (or ``functools.partial``
    over module-level) functions to cross process boundaries; the
    serial path (``workers=1``) has no such restriction.
    """

    name: str
    build: Callable[[Dict], Any]
    metrics: Callable[[Dict, Any], Dict]
    run: Optional[Callable[[Dict, Any], None]] = None
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.run is None:
            self.run = run_system

    def seed_for(self, index: int) -> int:
        """The deterministic seed of run ``index``."""
        return derive_seed(self.base_seed, index)

    def request(self, index: int, params: Optional[Dict] = None,
                *, seeded: bool = False) -> RunRequest:
        """Build the :class:`RunRequest` for run ``index``."""
        merged = dict(params or {})
        if seeded:
            merged.setdefault("seed", self.seed_for(index))
        return RunRequest(index=index, params=merged)

    def fingerprint(self) -> str:
        """Content hash of the experiment *code* (not its parameters).

        Two specs share a fingerprint exactly when their name, seed
        base and the source of all three callables match -- the cache
        uses this to segregate result files per experiment version.
        """
        payload = "\n".join([
            self.name,
            str(self.base_seed),
            callable_fingerprint(self.build),
            callable_fingerprint(self.run),
            callable_fingerprint(self.metrics),
        ])
        return hashlib.sha256(payload.encode()).hexdigest()

    def execute(self, request: RunRequest) -> Dict:
        """Run one parameter point to completion, returning metrics."""
        state = self.build(request.params)
        self.run(request.params, state)
        return self.metrics(request.params, state)


def spec_from_experiment(experiment: Callable[[int], Dict], *,
                         name: Optional[str] = None,
                         base_seed: int = 0) -> ExperimentSpec:
    """Wrap a Monte-Carlo style ``experiment(seed) -> metrics`` callable."""
    return ExperimentSpec(
        name=name or getattr(experiment, "__name__", "experiment"),
        build=functools.partial(_call_seeded, experiment),
        metrics=_identity_metrics,
        run=no_run,
        base_seed=base_seed,
    )


def spec_from_design(build: Callable[[Dict], Any],
                     metrics: Callable[[Dict, Any], Dict], *,
                     name: str = "explore") -> ExperimentSpec:
    """Wrap design-space ``build(config)`` / ``metrics(config, system)``.

    The resulting metrics dict carries the final simulated time under a
    private key so :func:`repro.analysis.explore` can rebuild its
    :class:`~repro.analysis.dse.ExplorationResult` objects exactly.
    """
    return ExperimentSpec(
        name=name,
        build=functools.partial(_design_build, build),
        metrics=functools.partial(_design_metrics, metrics),
        run=run_system,
    )
