"""Canonical, picklable campaign experiments.

The CLI ``pyrtos-sc campaign`` subcommand and the campaign-scaling
benchmark both need an experiment that (a) exercises the full RTOS
model and (b) crosses process boundaries.  The paper's §5 MPEG-2 SoC
case study is the natural choice: 18 tasks on six processors, three of
them RTOS-scheduled.  Parameterize with ``functools.partial``::

    experiment = functools.partial(mpeg2_experiment, frames=8)
    campaign = monte_carlo(experiment, runs=32, workers=4)
"""

from __future__ import annotations

from typing import Dict

from ..kernel.time import US


def mpeg2_experiment(seed: int, *, frames: int = 8,
                     engine: str = "procedural",
                     policy: str = "priority_preemptive") -> Dict:
    """One seeded MPEG-2 SoC simulation, summarised as plain metrics.

    All values are JSON-native (ints/floats in microseconds or fps), so
    campaigns over this experiment are fully cacheable.
    """
    from ..workloads.mpeg2 import Mpeg2Soc

    soc = Mpeg2Soc(frames=frames, engine=engine, policy=policy, seed=seed)
    soc.run()
    e2e = soc.latencies("end_to_end")
    return {
        "frames_completed": soc.completed_frames(),
        "mean_e2e_us": (sum(e2e) // len(e2e)) // US if e2e else 0,
        "max_e2e_us": max(e2e) // US if e2e else 0,
        "throughput_fps": round(soc.throughput_fps(), 4),
    }
