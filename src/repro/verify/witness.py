"""Concrete witness attempts for static ERROR-severity findings.

The flow analyzer (:mod:`repro.analyze.flow`) claims ERRORs only when
its extraction is exact -- but "exact over the IR" is still a model of
the behavior, not the behavior.  This module closes the loop: every
static rule that asserts a *reachable* failure maps to the dynamic
property (or sanitizer rule) that would observe it, and
:func:`attempt_witness` drives the bounded explorer at the model to
either produce a replayable counterexample (the static claim is
*confirmed*) or record an explicit no-witness justification that ships
with the report.

The corpus pipeline aggregates these outcomes into per-rule
precision/recall accounting (static-claimed vs verifier-confirmed); see
``repro.corpus.pipeline``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Union

from .explorer import VerifyResult, explore_dfs
from .harness import ModelFactory, VerifyOptions, spec_factory

#: Static rule id -> dynamic property/sanitizer rule ids that would
#: observe the claimed failure.  Rules absent here make claims that are
#: not reachability statements (style, declared-metadata mismatches) and
#: have no dynamic witness.
WITNESS_PROPERTIES: Dict[str, Tuple[str, ...]] = {
    # lock-order deadlock cycles and lock leaks starve another task:
    # the explorer's quiescence check reports the blocked set
    "RTS110": ("RTS-V001",),
    "RTS130": ("RTS-V001",),
    "RTS161": ("RTS-V001",),
    "RTS162": ("RTS-V001",),
    "RTS166": ("RTS-V001",),
    # static races reproduce as the runtime race sanitizer's finding
    "RTS165": ("SAN303",),
    # schedulability errors reproduce as deadline-miss violations
    "RTS103": ("RTS-V002",),
    "RTS105": ("RTS-V002",),
    "RTS140": ("RTS-V002",),
    "RTS141": ("RTS-V002",),
    "RTS150": ("RTS-V002",),
    "RTS153": ("RTS-V002",),
    # blocking-aware RTA misses reproduce as deadline-miss violations;
    # an infeasible priority assignment (RTS182 ERROR) implies the
    # *current* assignment misses, so the same property witnesses it
    "RTS180": ("RTS-V002",),
    "RTS182": ("RTS-V002",),
    # a broken max_blocking budget reproduces as a bounded-inversion
    # violation: the explorer runs with inversion_bound set to the
    # tightest declared budget of the spec
    "RTS183": ("RTS-V004",),
}


@dataclass(frozen=True)
class WitnessOutcome:
    """What one witness attempt established for one static rule."""

    rule: str
    target_properties: Tuple[str, ...]
    confirmed: bool
    #: The property/sanitizer rule actually observed, when confirmed.
    property_id: Optional[str] = None
    #: Replayable choice sequence of the witness schedule, if any.
    choices: Optional[Tuple[int, ...]] = None
    #: Human-readable status -- for confirmed witnesses the replay
    #: pointer, otherwise the explicit no-witness justification the
    #: acceptance contract requires.
    justification: str = ""
    runs: int = 0
    complete: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "target_properties": list(self.target_properties),
            "confirmed": self.confirmed,
            "property_id": self.property_id,
            "choices": list(self.choices) if self.choices is not None
            else None,
            "justification": self.justification,
            "runs": self.runs,
            "complete": self.complete,
        }


def witnessable(rule_id: str) -> bool:
    """Whether ``rule_id`` has a dynamic counterpart to witness."""
    return rule_id in WITNESS_PROPERTIES


def _as_factory(target: Union[dict, ModelFactory]) -> ModelFactory:
    if isinstance(target, dict):
        return spec_factory(target)
    if callable(target):
        return target
    raise TypeError(
        f"witness target must be a spec dict or a model factory, "
        f"got {type(target).__name__}"
    )


def attempt_witness(
    target: Union[dict, ModelFactory],
    rule_id: str,
    *,
    horizon: Optional[int] = None,
    max_runs: int = 64,
    max_depth: int = 16,
) -> WitnessOutcome:
    """Try to produce a concrete schedule witnessing a static finding.

    ``target`` is a builder spec dict or a ``Simulator -> System``
    factory (closure-based models have no spec).  The bounded explorer
    runs with the sanitizer enabled whenever the rule's dynamic
    counterpart is a ``SAN`` rule.
    """
    targets = WITNESS_PROPERTIES.get(rule_id)
    if targets is None:
        return WitnessOutcome(
            rule=rule_id, target_properties=(), confirmed=False,
            justification=(
                f"rule {rule_id} makes no reachability claim; no dynamic "
                "witness exists by construction"
            ),
        )
    factory = _as_factory(target)
    inversion_bound = None
    if "RTS-V004" in targets:
        inversion_bound = declared_blocking_bound(target)
        if inversion_bound is None:
            return WitnessOutcome(
                rule=rule_id, target_properties=targets, confirmed=False,
                justification=(
                    "no witness attempted: the RTS-V004 property needs a "
                    "declared max_blocking bound, and the target (not a "
                    "spec, or no function declares one) provides none"
                ),
            )
    options = VerifyOptions(
        horizon=horizon,
        max_depth=max_depth,
        sanitize=any(prop.startswith("SAN") for prop in targets),
        inversion_bound=inversion_bound,
    )
    result = explore_dfs(factory, options, (), max_runs=max_runs)
    return _outcome(rule_id, targets, result, max_runs)


def declared_blocking_bound(
    target: Union[dict, ModelFactory],
) -> Optional[int]:
    """The tightest ``max_blocking`` declared anywhere in a spec.

    This is the inversion bound the RTS-V004 property monitors against;
    the witness harness and the corpus pipeline both derive it from the
    spec so static RTS183 claims and dynamic observations use one
    number.
    """
    if not isinstance(target, dict):
        return None
    from ..kernel.time import parse_time

    bounds = []
    for section in ("functions", "tasks"):
        for entry in target.get(section, ()):
            if not isinstance(entry, dict):
                continue
            declared = entry.get("max_blocking")
            if declared is None:
                continue
            try:
                bounds.append(parse_time(declared))
            except Exception:
                continue
    return min(bounds) if bounds else None


def _outcome(rule_id: str, targets: Tuple[str, ...],
             result: VerifyResult, max_runs: int) -> WitnessOutcome:
    runs = result.stats.runs
    for index, violation in enumerate(result.violations):
        if violation.property_id not in targets:
            continue
        choices: Optional[Tuple[int, ...]] = None
        if index < len(result.counterexamples):
            choices = tuple(result.counterexamples[index].choices)
        return WitnessOutcome(
            rule=rule_id, target_properties=targets, confirmed=True,
            property_id=violation.property_id, choices=choices,
            justification=(
                f"witnessed: {violation.property_id} at "
                f"{violation.location} ({violation.message}); replay the "
                f"recorded choices to reproduce"
            ),
            runs=runs, complete=result.complete,
        )
    for finding in result.sanitizer_findings:
        if finding.rule in targets:
            return WitnessOutcome(
                rule=rule_id, target_properties=targets, confirmed=True,
                property_id=finding.rule,
                justification=(
                    f"witnessed: sanitizer {finding.rule} at "
                    f"{finding.location} ({finding.message})"
                ),
                runs=runs, complete=result.complete,
            )
    if result.complete:
        justification = (
            f"no witness: exhaustive exploration ({runs} run(s), "
            "complete within bounds) reached no "
            f"{'/'.join(targets)} violation -- the static claim "
            "over-approximates within these bounds"
        )
    else:
        justification = (
            f"no witness within bounds ({runs} run(s), exploration "
            f"truncated at max_runs={max_runs}); the claim is neither "
            "confirmed nor refuted"
        )
    return WitnessOutcome(
        rule=rule_id, target_properties=targets, confirmed=False,
        justification=justification, runs=runs, complete=result.complete,
    )


def witness_findings(
    target: Union[dict, ModelFactory],
    report: Any,
    *,
    horizon: Optional[int] = None,
    max_runs: int = 64,
    max_depth: int = 16,
) -> Dict[str, WitnessOutcome]:
    """Attempt one witness per distinct ERROR/WARNING rule of ``report``.

    Returns ``{rule_id: outcome}`` for every error- or warning-severity
    rule that has a dynamic counterpart; witnessless rules are skipped.
    Warnings are included deliberately: a WARNING marks a finding whose
    static extraction was *not* exact (the severity discipline reserves
    ERROR for exact intervals), so a confirmed dynamic witness is
    precisely what upgrades the over-approximation to a proven
    violation.
    """
    outcomes: Dict[str, WitnessOutcome] = {}
    findings = list(report.errors) + list(report.warnings)
    for rule_id in sorted({d.rule for d in findings}):
        if not witnessable(rule_id):
            continue
        outcomes[rule_id] = attempt_witness(
            target, rule_id,
            horizon=horizon, max_runs=max_runs, max_depth=max_depth,
        )
    return outcomes


__all__ = [
    "WITNESS_PROPERTIES",
    "WitnessOutcome",
    "attempt_witness",
    "declared_blocking_bound",
    "witness_findings",
    "witnessable",
]
