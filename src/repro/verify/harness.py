"""Build-and-run instrumentation: one bounded, steered simulation.

The explorer never touches the kernel directly; it asks this module to
execute "the run identified by this choice prefix" and gets back a
:class:`RunOutcome` -- the full choice trail, every property violation,
and whether the depth bound truncated the branching.  Replays use the
same path with a trace recorder attached, which is what makes explored
violations and their exported counterexample traces byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, \
    Set, Tuple

from ..errors import ModelError, SimulationError, VerifyError
from ..kernel.simulator import Simulator
from ..kernel.time import Time, format_time
from ..mcse.builder import build_system
from ..mcse.model import System
from .choices import ChoiceController, ChoicePoint, ScriptedController
from .properties import Invariant, RunMonitors, Violation
from .state import canonical_state

if TYPE_CHECKING:
    from ..analyze.diagnostics import Report
    from ..trace.recorder import TraceRecorder

#: A model factory: receives a fresh :class:`Simulator`, returns the
#: built (not yet run) :class:`System` living on that simulator.
ModelFactory = Callable[[Simulator], System]


@dataclass
class VerifyOptions:
    """Bounds and toggles for one verification problem."""

    #: Absolute time horizon per run (``None``: run to quiescence --
    #: only safe for terminating models).
    horizon: Optional[Time] = None
    #: Maximum explored choice depth; deeper points stop branching and
    #: mark the result incomplete.
    max_depth: int = 64
    #: Run the nondeterminism sanitizer (SAN301/302/303) during
    #: exploration runs as well.
    sanitize: bool = False
    #: RTS-V004 bound on a single continuous resource wait (``None``
    #: disables the property).
    inversion_bound: Optional[Time] = None
    #: RTS-V006 bound: how long a higher-priority task may stay READY
    #: behind a lower-priority running task (``None`` disables).
    preemption_bound: Optional[Time] = None
    #: RTS-V007 bound on any single continuous READY wait (``None``
    #: disables the fairness property).
    starvation_bound: Optional[Time] = None
    #: Also branch each processor's preemptive mode (off by default:
    #: it doubles the space per processor and most models fix the mode).
    explore_preempt_modes: bool = False

    def validate(self) -> None:
        if self.max_depth < 1:
            raise VerifyError(f"max_depth must be >= 1: {self.max_depth}")
        if self.horizon is not None and self.horizon <= 0:
            raise VerifyError(
                f"horizon must be positive: {format_time(self.horizon)}"
            )


@dataclass
class RunOutcome:
    """Everything the explorer needs to know about one completed run."""

    trail: List[ChoicePoint]
    violations: List[Violation]
    truncated: bool
    end_time: Time
    sanitizer_report: Optional["Report"] = None

    @property
    def choices(self) -> Tuple[int, ...]:
        return tuple(point.taken for point in self.trail)


@dataclass
class ExploreContext:
    """Shared dedup state and counters across one exploration."""

    visited: Set[tuple] = field(default_factory=set)
    dedup_hits: int = 0
    depth_hits: int = 0


def spec_factory(spec: dict) -> ModelFactory:
    """A :data:`ModelFactory` elaborating a declarative spec each run."""

    def factory(sim: Simulator) -> System:
        return build_system(spec, sim=sim)

    return factory


def _build_instrumented(
    factory: ModelFactory,
    controller: ChoiceController,
    options: VerifyOptions,
    invariants: Sequence[Invariant],
    *,
    record: bool = False,
) -> Tuple[System, RunMonitors, Optional["TraceRecorder"]]:
    sim = Simulator("verify", sanitize=options.sanitize)
    sim.choice_controller = controller
    recorder = None
    if record:
        from ..trace.recorder import TraceRecorder

        recorder = TraceRecorder()
        sim.set_recorder(recorder)
    system = factory(sim)
    if system.sim is not sim:
        raise VerifyError(
            "the model factory must build on the simulator it is given "
            "(pass sim= through to System/build_system)"
        )
    _pre_run_choices(system, controller, options)
    monitors = RunMonitors(
        system,
        invariants=tuple(invariants),
        inversion_bound=options.inversion_bound,
        preemption_bound=options.preemption_bound,
        starvation_bound=options.starvation_bound,
    )
    return system, monitors, recorder


def _pre_run_choices(system: System, controller: ChoiceController,
                     options: VerifyOptions) -> None:
    """Branch release jitter and (opt-in) preemptive modes before t=0."""
    for name in sorted(system.functions):
        fn = system.functions[name]
        jitter = getattr(fn, "jitter", None)
        if jitter:
            taken = controller.choose(
                "jitter", name, 2,
                labels=("+0", f"+{format_time(jitter)}"),
            )
            if taken:
                fn.start_time += jitter
    if options.explore_preempt_modes:
        for name in sorted(system.processors):
            cpu = system.processors[name]
            taken = controller.choose(
                "preempt_mode", name, 2,
                labels=(
                    f"preemptive={cpu.preemptive}",
                    f"preemptive={not cpu.preemptive}",
                ),
            )
            if taken:
                cpu.set_preemptive(not cpu.preemptive)


def _drive(system: System, options: VerifyOptions) -> Optional[BaseException]:
    """Run to the horizon; a mutex-misuse ModelError becomes a finding."""
    try:
        if options.horizon is not None:
            system.run(until=options.horizon)
        else:
            system.run()
    except SimulationError as exc:
        cause = exc.__cause__
        if isinstance(cause, ModelError):
            return cause  # e.g. unlock of an unowned mutex: RTS-V003
        raise
    except ModelError as exc:
        return exc
    return None


def run_once(
    factory: ModelFactory,
    prefix: Sequence[int],
    options: VerifyOptions,
    invariants: Sequence[Invariant] = (),
    context: Optional[ExploreContext] = None,
    *,
    controller: Optional[ChoiceController] = None,
) -> RunOutcome:
    """Execute the run identified by ``prefix`` (defaults beyond it).

    With an :class:`ExploreContext`, free choice points (at or past the
    prefix) probe the canonical pre-choice state: an already-visited
    state marks the point pruned, so the explorer skips its alternatives
    -- the run that first reached the state already owns that subtree.
    """
    options.validate()
    if controller is None:
        controller = ScriptedController(prefix)
    free_from = len(prefix)
    truncated = [False]
    system, monitors, _ = _build_instrumented(
        factory, controller, options, invariants
    )

    def probe(point: ChoicePoint) -> None:
        position = len(controller.trail) - 1
        if position >= options.max_depth:
            point.pruned = True
            if not truncated[0]:
                truncated[0] = True
                if context is not None:
                    context.depth_hits += 1
        elif context is not None and position >= free_from:
            state = canonical_state(system)
            if state in context.visited:
                point.pruned = True
                context.dedup_hits += 1
            else:
                context.visited.add(state)
        monitors.check_invariants(system.sim.now)

    controller.probe = probe
    error = _drive(system, options)
    controller.probe = None
    monitors.finish(error)
    monitors.detach()
    sanitizer = system.sim.sanitizer
    return RunOutcome(
        trail=list(controller.trail),
        violations=list(monitors.violations),
        truncated=truncated[0],
        end_time=system.sim.now,
        sanitizer_report=sanitizer.report if sanitizer is not None else None,
    )


def replay(
    factory: ModelFactory,
    choices: Sequence[int],
    options: VerifyOptions,
    invariants: Sequence[Invariant] = (),
    *,
    expected: Sequence[ChoicePoint] = (),
) -> Tuple[System, "TraceRecorder", RunOutcome]:
    """Deterministically re-execute a recorded schedule, with tracing.

    Returns ``(system, recorder, outcome)``; the recorder holds the full
    trace of the failing schedule, ready for the standard
    ``trace.{vcd,svg,html}`` exports.
    """
    options.validate()
    controller = ScriptedController(
        choices, expected=expected, strict=bool(expected)
    )
    system, monitors, recorder = _build_instrumented(
        factory, controller, options, invariants, record=True
    )
    error = _drive(system, options)
    monitors.finish(error)
    monitors.detach()
    outcome = RunOutcome(
        trail=list(controller.trail),
        violations=list(monitors.violations),
        truncated=False,
        end_time=system.sim.now,
    )
    return system, recorder, outcome


__all__ = [
    "ModelFactory",
    "VerifyOptions",
    "RunOutcome",
    "ExploreContext",
    "spec_factory",
    "run_once",
    "replay",
]
