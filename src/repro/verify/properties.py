"""The verified property set and its runtime monitors.

Each property gets a stable rule id in the shared diagnostic catalogue
(:mod:`repro.analyze.diagnostics`), so verifier findings render through
the exact same :class:`~repro.analyze.diagnostics.Report` pipeline as the
static linters:

=========  =============================================================
RTS-V001   deadlock: the run went idle with blocked software tasks
RTS-V002   deadline miss: a watchdog expired on some explored schedule
RTS-V003   mutex safety violated, or a wakeup was lost on a relation
RTS-V004   a task's resource-wait exceeded the priority-inversion bound
RTS-V005   a user ``assert_always`` invariant evaluated false
RTS-V006   a ready higher-priority task was not dispatched within the
           preemption bound (the classic Spin-checked FreeRTOS property:
           "the highest-priority ready task runs")
RTS-V007   a ready task was starved of the CPU beyond the starvation
           bound (scheduler fairness, e.g. round-robin time slicing)
=========  =============================================================

Monitors are pure observers: they attach through the simulator's
observer hook (plus one end-of-run sweep over the model), never change
the schedule, and therefore keep explored runs byte-identical to their
later counterexample replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..analyze.diagnostics import rule
from ..errors import VerifyError
from ..kernel.process import Process, ProcessState
from ..kernel.time import Time, format_time
from ..rtos.overheads import formula_arity_error
from ..rtos.watchdog import DeadlineWatchdog
from ..trace.records import StateRecord, TaskState

if TYPE_CHECKING:
    from ..mcse.model import System

RTSV001 = rule("RTS-V001", "deadlock reachable under an explored schedule")
RTSV002 = rule("RTS-V002", "deadline miss reachable under an explored schedule")
RTSV003 = rule("RTS-V003", "mutex misuse or lost wakeup on an explored schedule")
RTSV004 = rule("RTS-V004", "priority inversion exceeds the declared bound")
RTSV005 = rule("RTS-V005", "user invariant violated on an explored schedule")
RTSV006 = rule("RTS-V006",
               "ready higher-priority task not dispatched within the bound")
RTSV007 = rule("RTS-V007", "ready task starved beyond the fairness bound")


@dataclass(frozen=True)
class Violation:
    """One property violation observed during a single run."""

    property_id: str
    message: str
    time: Time
    location: str = "system"

    def describe(self) -> str:
        return (
            f"[{self.property_id}] {self.location} at "
            f"{format_time(self.time)}: {self.message}"
        )


class Invariant:
    """A user ``assert_always`` predicate over the live system."""

    def __init__(self, fn: Callable, name: Optional[str] = None) -> None:
        error = formula_arity_error(fn, "system")
        if error is not None:
            raise VerifyError(
                f"assert_always invariant {fn!r} {error}"
            )
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "invariant")

    def holds(self, system: "System") -> bool:
        return bool(self.fn(system))


class RunMonitors:
    """All property monitors attached to one instrumented run."""

    def __init__(
        self,
        system: "System",
        *,
        invariants: Tuple[Invariant, ...] = (),
        inversion_bound: Optional[Time] = None,
        preemption_bound: Optional[Time] = None,
        starvation_bound: Optional[Time] = None,
    ) -> None:
        self.system = system
        self.invariants = invariants
        self.inversion_bound = inversion_bound
        self.preemption_bound = preemption_bound
        self.starvation_bound = starvation_bound
        self.violations: List[Violation] = []
        self._watchdogs: List[DeadlineWatchdog] = []
        self._blocked_since: Dict[str, Tuple[Time, Optional[str]]] = {}
        self._ready_since: Dict[str, Time] = {}
        self._sched_flagged: set = set()
        self._invariants_broken = set()
        self._attach()

    # ------------------------------------------------------------------
    def _attach(self) -> None:
        sim = self.system.sim
        for name, fn in self.system.functions.items():
            deadline = getattr(fn, "deadline", None)
            if deadline is not None and fn.task is not None:
                self._watchdogs.append(
                    DeadlineWatchdog(sim, name, deadline)
                )
        if self.inversion_bound is not None:
            sim.add_observer(self._observe_inversion)
        if self._scheduling_bounds:
            sim.add_observer(self._observe_scheduling)

    def detach(self) -> None:
        for watchdog in self._watchdogs:
            watchdog.disable()
        if self.inversion_bound is not None:
            self.system.sim.remove_observer(self._observe_inversion)
        if self._scheduling_bounds:
            self.system.sim.remove_observer(self._observe_scheduling)

    @property
    def _scheduling_bounds(self) -> bool:
        return (self.preemption_bound is not None
                or self.starvation_bound is not None)

    # ------------------------------------------------------------------
    # RTS-V004: bounded priority inversion
    # ------------------------------------------------------------------
    def _observe_inversion(self, record: object) -> None:
        if not isinstance(record, StateRecord):
            return
        if record.state is TaskState.WAITING_RESOURCE:
            blocker = self._lower_priority_owner(record.task)
            self._blocked_since[record.task] = (record.time, blocker)
            return
        entry = self._blocked_since.pop(record.task, None)
        if entry is None:
            return
        since, blocker = entry
        self._check_inversion(record.task, since, blocker, record.time)

    def _lower_priority_owner(self, task_name: str) -> Optional[str]:
        fn = self.system.functions.get(task_name)
        if fn is None or fn.task is None:
            return None
        relation = getattr(fn.task, "blocked_on", None)
        owner = getattr(relation, "owner", None)
        if owner is None or owner.task is None:
            return None
        if owner.task.effective_priority < fn.task.effective_priority:
            return owner.name
        return None

    def _check_inversion(self, task: str, since: Time,
                         blocker: Optional[str], until: Time) -> None:
        bound = self.inversion_bound
        if bound is None or blocker is None:
            return
        blocked_for = until - since
        if blocked_for > bound:
            self.violations.append(Violation(
                RTSV004,
                f"blocked on a resource held by lower-priority "
                f"{blocker!r} for {format_time(blocked_for)} "
                f"(bound {format_time(bound)})",
                until,
                location=f"task {task}",
            ))

    # ------------------------------------------------------------------
    # RTS-V006/RTS-V007: scheduling properties (preemption + fairness)
    # ------------------------------------------------------------------
    def _observe_scheduling(self, record: object) -> None:
        if not isinstance(record, StateRecord):
            return
        if record.state is TaskState.READY:
            self._ready_since.setdefault(record.task, record.time)
        else:
            self._ready_since.pop(record.task, None)
        # Every scheduling event advances time; sweep the open READY
        # windows so a violation is stamped as soon as it is observable.
        self._sweep_ready_windows(record.time)

    def _sweep_ready_windows(self, now: Time) -> None:
        for task, since in list(self._ready_since.items()):
            waited = now - since
            if (self.starvation_bound is not None
                    and waited > self.starvation_bound
                    and (RTSV007, task) not in self._sched_flagged):
                self._sched_flagged.add((RTSV007, task))
                self.violations.append(Violation(
                    RTSV007,
                    f"continuously READY for {format_time(waited)} "
                    f"without being dispatched "
                    f"(bound {format_time(self.starvation_bound)})",
                    now,
                    location=f"task {task}",
                ))
            if (self.preemption_bound is not None
                    and waited > self.preemption_bound
                    and (RTSV006, task) not in self._sched_flagged):
                running = self._outprioritized_running(task)
                if running is not None:
                    self._sched_flagged.add((RTSV006, task))
                    self.violations.append(Violation(
                        RTSV006,
                        f"READY for {format_time(waited)} while the "
                        f"lower-priority task {running!r} kept the CPU "
                        f"(bound {format_time(self.preemption_bound)})",
                        now,
                        location=f"task {task}",
                    ))

    def _outprioritized_running(self, task_name: str) -> Optional[str]:
        """The lower-priority task running on ``task_name``'s CPU, if any."""
        fn = self.system.functions.get(task_name)
        if fn is None or fn.task is None:
            return None
        running = fn.task.processor.running
        if running is None or running is fn.task:
            return None
        if running.effective_priority < fn.task.effective_priority:
            return running.name
        return None

    # ------------------------------------------------------------------
    # Invariants (RTS-V005), checked at every choice point + end of run
    # ------------------------------------------------------------------
    def check_invariants(self, now: Time) -> None:
        for invariant in self.invariants:
            if invariant.name in self._invariants_broken:
                continue
            if not invariant.holds(self.system):
                self._invariants_broken.add(invariant.name)
                self.violations.append(Violation(
                    RTSV005,
                    f"assert_always({invariant.name!r}) evaluated false",
                    now,
                ))

    # ------------------------------------------------------------------
    # End-of-run sweep: deadlock, lost wakeups, deadline-miss counters
    # ------------------------------------------------------------------
    def finish(self, error: Optional[BaseException] = None) -> None:
        system = self.system
        sim = system.sim
        now = sim.now
        # still-pending inversion windows count up to the horizon
        for task, (since, blocker) in list(self._blocked_since.items()):
            self._check_inversion(task, since, blocker, now)
        self._blocked_since.clear()
        # still-open READY windows count up to the horizon too: a task
        # starved until the end of the run is the canonical violation.
        if self._scheduling_bounds:
            self._sweep_ready_windows(now)
        self._ready_since.clear()

        if error is not None:
            self.violations.append(Violation(
                RTSV003, f"mutex safety violated: {error}", now,
            ))

        for watchdog in self._watchdogs:
            for activation in watchdog.missed_activations:
                self.violations.append(Violation(
                    RTSV002,
                    f"deadline {format_time(watchdog.deadline)} missed "
                    f"for the activation at {format_time(activation)}",
                    activation + watchdog.deadline,
                    location=f"task {watchdog.task_name}",
                ))

        if not sim.pending_activity():
            blocked = sorted(
                p.name for p in sim.processes
                if isinstance(p, Process)
                and not p.daemon and not p.terminated
                and p.state is ProcessState.WAITING
            )
            if blocked:
                self.violations.append(Violation(
                    RTSV001,
                    "simulation went idle with blocked tasks: "
                    + ", ".join(blocked) + self._deadlock_chain(),
                    now,
                ))
            self._check_lost_wakeups(now)

        self.check_invariants(now)

    def _deadlock_chain(self) -> str:
        """Render who-holds-what for the classic crossed-lock deadlock."""
        parts = []
        for name, fn in self.system.functions.items():
            task = fn.task
            relation = getattr(task, "blocked_on", None) if task else None
            owner = getattr(relation, "owner", None)
            if relation is not None and owner is not None:
                parts.append(
                    f"{name} waits for {relation.name} held by {owner.name}"
                )
        if not parts:
            return ""
        return " (" + "; ".join(sorted(parts)) + ")"

    def _check_lost_wakeups(self, now: Time) -> None:
        for name, relation in self.system.relations.items():
            if relation.waiter_count == 0:
                continue
            locked = getattr(relation, "locked", None)
            if locked is False:
                self.violations.append(Violation(
                    RTSV003,
                    f"{relation.waiter_count} waiter(s) blocked on the "
                    f"*unlocked* shared variable {name!r}: a wakeup was "
                    "lost",
                    now,
                    location=f"shared {name}",
                ))
                continue
            pending = getattr(relation, "pending", None)
            if callable(pending) and pending() > 0:
                self.violations.append(Violation(
                    RTSV003,
                    f"waiter(s) blocked on event {name!r} while "
                    f"{pending()} occurrence(s) are memorized: a wakeup "
                    "was lost",
                    now,
                    location=f"event {name}",
                ))


__all__ = [
    "RTSV001",
    "RTSV002",
    "RTSV003",
    "RTSV004",
    "RTSV005",
    "RTSV006",
    "RTSV007",
    "Violation",
    "Invariant",
    "RunMonitors",
]
