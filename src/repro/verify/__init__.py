"""Bounded model checking over scheduling nondeterminism.

One simulation run shows *one* schedule.  This package drives the same
kernel/RTOS stack through **every** admissible schedule up to a bound,
branching at each nondeterministic decision the model admits:

* same-delta ready-queue ties (the scheduling policy's tie set),
* wake order among equal-top-priority waiters on a relation,
* execution-time intervals (``"20us..50us"`` / ``[lo, hi]`` costs and
  ``wcet`` ranges from the builder),
* release jitter (a function's ``jitter`` annotation), and
* optionally each processor's preemptive mode.

Checked properties carry stable rule ids shared with the static
analyzers (:mod:`repro.analyze`): RTS-V001 no deadlock, RTS-V002 all
deadlines met, RTS-V003 mutex safety / no lost wakeup, RTS-V004 bounded
priority inversion, RTS-V005 user ``assert_always`` invariants, RTS-V006
bounded preemption latency and RTS-V007 scheduler fairness (the last two
power the kernel-personality differential matrix,
:mod:`repro.personality`).

A violation yields a *minimized* :class:`Counterexample`: the exact
choice sequence, deterministically replayable through the standard
:class:`~repro.kernel.simulator.Simulator` +
:class:`~repro.trace.recorder.TraceRecorder` pipeline so the failing
schedule exports to ``trace.{vcd,svg,html}`` byte-identically::

    from repro.verify import verify_spec, replay_spec

    result = verify_spec(spec, horizon=2 * MS)
    if not result.ok:
        ce = result.counterexample
        system, recorder, outcome = replay_spec(spec, ce.choices,
                                                horizon=2 * MS)
        write_vcd(recorder, "failing.vcd")

``pyrtos-sc verify`` is the CLI face of this module, and
``POST /v1/verify`` the service face.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, \
    Tuple, TYPE_CHECKING

from ..analyze.diagnostics import Report, merge_suppressions
from ..analyze.model import analyze_system
from ..errors import VerifyError
from ..kernel.simulator import Simulator
from .choices import ChoiceController, ChoicePoint, RandomController, \
    ScriptedController
from .counterexample import Counterexample, minimize
from .explorer import VerifyResult, VerifyStats, explore_dfs, explore_random
from .harness import ModelFactory, RunOutcome, VerifyOptions, replay, \
    run_once, spec_factory
from .properties import RTSV001, RTSV002, RTSV003, RTSV004, RTSV005, \
    RTSV006, RTSV007, Invariant, RunMonitors, Violation
from .witness import WITNESS_PROPERTIES, WitnessOutcome, attempt_witness, \
    witness_findings, witnessable

if TYPE_CHECKING:
    from ..mcse.model import System
    from ..trace.recorder import TraceRecorder

#: Static schedulability rules the verifier cross-checks against.
_STATIC_SCHED_RULES = frozenset(
    ("RTS103", "RTS104", "RTS105", "RTS150", "RTS151", "RTS153")
)


def assert_always(fn: Callable, name: Optional[str] = None) -> Invariant:
    """Wrap a ``system -> bool`` predicate as an RTS-V005 invariant."""
    return Invariant(fn, name)


def _make_options(options: Optional[VerifyOptions],
                  **kwargs: Any) -> VerifyOptions:
    if options is not None:
        if any(value is not None and value is not False
               for value in kwargs.values()):
            raise VerifyError(
                "pass either options= or individual bound keywords, not both"
            )
        return options
    return VerifyOptions(
        horizon=kwargs.get("horizon"),
        max_depth=kwargs.get("max_depth") or 64,
        sanitize=bool(kwargs.get("sanitize")),
        inversion_bound=kwargs.get("inversion_bound"),
        preemption_bound=kwargs.get("preemption_bound"),
        starvation_bound=kwargs.get("starvation_bound"),
        explore_preempt_modes=bool(kwargs.get("explore_preempt_modes")),
    )


def verify_model(
    factory: ModelFactory,
    *,
    strategy: str = "dfs",
    options: Optional[VerifyOptions] = None,
    invariants: Sequence[Invariant] = (),
    horizon: Optional[int] = None,
    max_depth: Optional[int] = None,
    sanitize: bool = False,
    inversion_bound: Optional[int] = None,
    preemption_bound: Optional[int] = None,
    starvation_bound: Optional[int] = None,
    explore_preempt_modes: bool = False,
    max_runs: int = 10_000,
    runs: int = 100,
    seed: int = 0,
) -> VerifyResult:
    """Check every bounded schedule of the model built by ``factory``.

    ``strategy`` selects the exploration: ``"dfs"`` (exhaustive with
    canonical-state dedup; ``max_runs`` bounds the run count) or
    ``"random"`` (``runs`` seeded samples -- the large-space fallback).
    """
    opts = _make_options(
        options,
        horizon=horizon, max_depth=max_depth, sanitize=sanitize,
        inversion_bound=inversion_bound,
        preemption_bound=preemption_bound,
        starvation_bound=starvation_bound,
        explore_preempt_modes=explore_preempt_modes,
    )
    if strategy in ("dfs", "exhaustive"):
        return explore_dfs(
            factory, opts, invariants, max_runs=max_runs
        )
    if strategy in ("random", "randomized"):
        return explore_random(
            factory, opts, invariants, runs=runs, seed=seed
        )
    raise VerifyError(
        f"unknown strategy {strategy!r} (expected 'dfs' or 'random')"
    )


def verify_spec(spec: dict, **kwargs: Any) -> VerifyResult:
    """:func:`verify_model` over a declarative builder spec."""
    return verify_model(spec_factory(spec), **kwargs)


def replay_model(
    factory: ModelFactory,
    choices: Sequence[int],
    *,
    options: Optional[VerifyOptions] = None,
    invariants: Sequence[Invariant] = (),
    expected: Sequence[ChoicePoint] = (),
    horizon: Optional[int] = None,
    max_depth: Optional[int] = None,
    sanitize: bool = False,
    inversion_bound: Optional[int] = None,
    preemption_bound: Optional[int] = None,
    starvation_bound: Optional[int] = None,
) -> Tuple[System, "TraceRecorder", RunOutcome]:
    """Re-execute a counterexample's choices with a trace recorder.

    Returns ``(system, recorder, outcome)``.
    """
    opts = _make_options(
        options,
        horizon=horizon, max_depth=max_depth, sanitize=sanitize,
        inversion_bound=inversion_bound,
        preemption_bound=preemption_bound,
        starvation_bound=starvation_bound,
    )
    return replay(factory, choices, opts, invariants, expected=expected)


def replay_spec(spec: dict, choices: Sequence[int],
                **kwargs: Any) -> Tuple[System, "TraceRecorder", RunOutcome]:
    """:func:`replay_model` over a declarative builder spec."""
    return replay_model(spec_factory(spec), choices, **kwargs)


def build_report(
    result: VerifyResult,
    *,
    factory: Optional[ModelFactory] = None,
    suppress: Optional[Iterable[str]] = None,
) -> Report:
    """Render a :class:`VerifyResult` through the diagnostic pipeline.

    Every violation becomes an ERROR diagnostic under its ``RTS-V``
    rule; sanitizer findings ride along.  With a ``factory`` the static
    schedulability verdicts (RTS103/RTS104/RTS105 on a nominal build)
    are cross-checked against the dynamic deadline verdict, surfacing
    agreements and -- more interestingly -- the misses only exploration
    can reach (blocking, execution-time intervals, release jitter).
    """
    report = Report(suppress=merge_suppressions(suppress))
    for violation in result.violations:
        report.add(
            violation.property_id,
            Report.ERROR,
            violation.location,
            violation.message,
        )
    for diagnostic in result.sanitizer_findings:
        report.add(
            diagnostic.rule,
            diagnostic.severity,
            diagnostic.location,
            diagnostic.message,
            hint=diagnostic.hint,
        )
    counterexample = result.counterexample
    if counterexample is not None:
        report.add(
            counterexample.property_id,
            Report.INFO,
            "counterexample",
            "minimized witness schedule: choices "
            f"{list(counterexample.choices)} (replay with "
            "pyrtos-sc verify ... --replay)",
        )

    if factory is not None:
        system = factory(Simulator("verify-static"))
        static = analyze_system(system)
        flagged = sorted(
            {d.rule for d in static.diagnostics
             if d.rule in _STATIC_SCHED_RULES}
        )
        dynamic_miss = any(
            v.property_id == RTSV002 for v in result.violations
        )
        if dynamic_miss and not flagged:
            report.add(
                RTSV002, Report.INFO, "cross-check",
                "exploration reached a deadline miss that the static "
                "schedulability rules (RTS103/104/105, RTS15x) did not "
                "flag -- blocking, execution-time intervals, release "
                "jitter or a multicore placement push the task set "
                "beyond its periodic profile",
            )
        elif flagged and not dynamic_miss:
            qualifier = (
                "no miss is reachable within the explored bound"
                if result.complete
                else "no miss was found, but the exploration was bounded"
            )
            report.add(
                RTSV002, Report.INFO, "cross-check",
                f"static rules {', '.join(flagged)} flag schedulability "
                f"hazards, yet {qualifier}",
            )
        elif dynamic_miss and flagged:
            report.add(
                RTSV002, Report.INFO, "cross-check",
                f"static ({', '.join(flagged)}) and dynamic verdicts "
                "agree: the task set can miss deadlines",
            )
    return report


__all__ = [
    "ChoiceController",
    "ChoicePoint",
    "Counterexample",
    "Invariant",
    "ModelFactory",
    "WITNESS_PROPERTIES",
    "WitnessOutcome",
    "RTSV001",
    "RTSV002",
    "RTSV003",
    "RTSV004",
    "RTSV005",
    "RTSV006",
    "RTSV007",
    "RandomController",
    "RunMonitors",
    "RunOutcome",
    "ScriptedController",
    "VerifyOptions",
    "VerifyResult",
    "VerifyStats",
    "Violation",
    "assert_always",
    "attempt_witness",
    "build_report",
    "minimize",
    "replay",
    "replay_model",
    "replay_spec",
    "run_once",
    "spec_factory",
    "verify_model",
    "verify_spec",
    "witness_findings",
    "witnessable",
]
