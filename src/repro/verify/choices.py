"""Choice controllers: how the model checker steers a simulation.

Every source of scheduling nondeterminism in the stack funnels through
one kernel hook, :attr:`repro.kernel.simulator.Simulator.choice_controller`.
When it is ``None`` (every normal simulation) the model keeps its
deterministic tie-breaks and existing traces stay byte-identical.  When a
:class:`ChoiceController` is installed, each decision point calls
:meth:`ChoiceController.choose` and the controller both *resolves* the
decision and *records* it, producing the run's choice trail.

Decision kinds currently wired into the stack:

==============  ==========================================================
``"tie"``       ready-queue tie among policy-equivalent tasks
                (:meth:`repro.rtos.policies.SchedulingPolicy.tie_candidates`)
``"wake"``      equal-priority waiter tie on a priority-ordered relation
                wait queue (:meth:`repro.mcse.relations.Relation._pop_waiter`)
``"exec"``      execution-time interval endpoint (``"lo..hi"`` durations,
                :func:`repro.mcse.builder.resolve_duration`)
``"jitter"``    release jitter applied (0 or the function's bound)
``"preempt_mode"``  processor preemptive-mode toggle (opt-in)
==============  ==========================================================

The exploration algorithms in :mod:`repro.verify.explorer` are
*stateless* (Verisoft-style): a run is identified purely by the prefix of
choice indices it was forced to take; everything past the prefix defaults
to index 0, and the recorded trail tells the explorer where the next runs
must branch.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import VerifyError


class ChoicePoint:
    """One resolved nondeterministic decision in a run's trail."""

    __slots__ = ("kind", "key", "arity", "taken", "labels", "pruned")

    def __init__(self, kind: str, key: str, arity: int, taken: int,
                 labels: Tuple[str, ...]) -> None:
        #: Decision kind ("tie", "wake", "exec", "jitter", "preempt_mode").
        self.kind = kind
        #: The deciding object (processor, relation or function name).
        self.key = key
        #: Number of admissible alternatives at this point.
        self.arity = arity
        #: The alternative this run took.
        self.taken = taken
        #: Human-readable labels for the alternatives (may be empty).
        self.labels = labels
        #: Set by the explorer's probe when the pre-choice state was
        #: already visited (or the depth bound was hit): the remaining
        #: alternatives need not be scheduled.
        self.pruned = False

    def describe(self) -> str:
        label = ""
        if self.labels and self.taken < len(self.labels):
            label = f"={self.labels[self.taken]}"
        return f"{self.kind}({self.key}):{self.taken}/{self.arity}{label}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ChoicePoint {self.describe()}>"


class ChoiceController:
    """Base controller: resolve every decision to 0, record the trail."""

    def __init__(self) -> None:
        #: The decisions taken so far, in order.
        self.trail: List[ChoicePoint] = []
        #: Optional explorer hook, called with each new
        #: :class:`ChoicePoint` *before* the decision takes effect (the
        #: simulation state it observes is the pre-choice state).  Used
        #: for canonical-state dedup and ``assert_always`` invariants.
        self.probe: Optional[Callable[[ChoicePoint], None]] = None

    def choose(self, kind: str, key: str, arity: int,
               labels: Sequence[str] = ()) -> int:
        """Resolve one decision among ``arity`` alternatives."""
        if arity < 1:
            raise VerifyError(
                f"choice point {kind}({key}) offered {arity} alternatives"
            )
        taken = self._decide(kind, key, arity, len(self.trail))
        point = ChoicePoint(kind, key, arity, taken, tuple(labels))
        self.trail.append(point)
        if self.probe is not None:
            self.probe(point)
        return taken

    def _decide(self, kind: str, key: str, arity: int, position: int) -> int:
        return 0

    @property
    def choices(self) -> Tuple[int, ...]:
        """The trail as a plain index tuple (the run's identity)."""
        return tuple(point.taken for point in self.trail)


class ScriptedController(ChoiceController):
    """Force a prefix of choices, default to 0 beyond it.

    This is both the explorer's workhorse (each scheduled run is "replay
    this prefix, then follow the leftmost branch") and the counterexample
    replayer (the full violating trail is the prefix).  ``strict=True``
    additionally validates each forced decision against the recorded
    kind/key/arity, catching divergent replays when the model changed
    under the trace.
    """

    def __init__(self, prefix: Sequence[int] = (), *,
                 expected: Sequence[ChoicePoint] = (),
                 strict: bool = False) -> None:
        super().__init__()
        self.prefix = tuple(prefix)
        self.expected = tuple(expected)
        self.strict = strict

    def _decide(self, kind: str, key: str, arity: int, position: int) -> int:
        if position >= len(self.prefix):
            return 0
        forced = self.prefix[position]
        if self.strict and position < len(self.expected):
            want = self.expected[position]
            if (want.kind, want.key, want.arity) != (kind, key, arity):
                raise VerifyError(
                    f"replay diverged at choice {position}: expected "
                    f"{want.describe()}, the model offered "
                    f"{kind}({key}) with {arity} alternatives"
                )
        if forced >= arity:
            raise VerifyError(
                f"replay diverged at choice {position}: scheduled index "
                f"{forced} but {kind}({key}) offers only {arity} "
                "alternatives"
            )
        return forced


class RandomController(ChoiceController):
    """Seeded random resolution -- the fallback for large state spaces.

    Deterministic for a given seed, so a violating random run is exactly
    as replayable as a DFS run: its recorded trail is a valid
    :class:`ScriptedController` prefix.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def _decide(self, kind: str, key: str, arity: int, position: int) -> int:
        if arity == 1:
            return 0
        return self._rng.randrange(arity)


__all__ = [
    "ChoicePoint",
    "ChoiceController",
    "ScriptedController",
    "RandomController",
]
