"""Exploration strategies: exhaustive DFS and randomized sampling.

The DFS is stateless a la Verisoft: each run is identified by its forced
choice prefix, the recorded trail tells the explorer which positions can
branch, and canonical-state dedup (:mod:`repro.verify.state`) prunes
re-visited subtrees.  Exhausting the work stack without hitting any
bound means *every* admissible schedule within the horizon was covered.

The randomized strategy resolves every decision with a seeded RNG -- no
completeness claim, but each run is exactly as replayable as a DFS run,
so counterexamples from either strategy minimize and replay identically.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import VerifyError
from .choices import RandomController
from .counterexample import Counterexample, minimize
from .harness import (
    ExploreContext,
    ModelFactory,
    RunOutcome,
    VerifyOptions,
    run_once,
)
from .properties import Invariant, Violation
from ..analyze.diagnostics import Diagnostic


@dataclass
class VerifyStats:
    """Counters describing one exploration."""

    runs: int = 0
    choice_points: int = 0
    states: int = 0
    dedup_hits: int = 0
    depth_hits: int = 0
    wall_s: float = 0.0

    @property
    def dedup_hit_rate(self) -> float:
        probes = self.states + self.dedup_hits
        return self.dedup_hits / probes if probes else 0.0

    @property
    def states_per_second(self) -> float:
        return self.states / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict:
        return {
            "runs": self.runs,
            "choice_points": self.choice_points,
            "states": self.states,
            "dedup_hits": self.dedup_hits,
            "dedup_hit_rate": round(self.dedup_hit_rate, 6),
            "depth_hits": self.depth_hits,
            "wall_s": self.wall_s,
            "states_per_second": round(self.states_per_second, 3),
        }


@dataclass
class VerifyResult:
    """The verdict of one verification problem."""

    #: No violation found.  Combined with :attr:`complete`, this is a
    #: proof within the bound; alone it is only an absence of evidence.
    ok: bool
    #: The whole bounded space was covered (DFS only, no bound hit).
    complete: bool
    strategy: str
    stats: VerifyStats
    violations: List[Violation] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)
    sanitizer_findings: List[Diagnostic] = field(default_factory=list)

    @property
    def counterexample(self) -> Optional[Counterexample]:
        return self.counterexamples[0] if self.counterexamples else None

    def verdict(self) -> str:
        if not self.ok:
            return "violated"
        return "verified" if self.complete else "no-violation-found"

    def to_dict(self) -> Dict:
        return {
            "verdict": self.verdict(),
            "ok": self.ok,
            "complete": self.complete,
            "strategy": self.strategy,
            "stats": self.stats.to_dict(),
            "violations": [
                {
                    "property": v.property_id,
                    "location": v.location,
                    "message": v.message,
                    "time": v.time,
                }
                for v in self.violations
            ],
            "counterexamples": [c.to_dict() for c in self.counterexamples],
            "sanitizer": [d.to_dict() for d in self.sanitizer_findings],
        }


def _collect_sanitizer(outcome: RunOutcome, findings: List[Diagnostic],
                       seen: Set[Tuple[str, str]]) -> None:
    report = outcome.sanitizer_report
    if report is None:
        return
    for diagnostic in report.diagnostics:
        key = (diagnostic.rule, diagnostic.location)
        if key not in seen:
            seen.add(key)
            findings.append(diagnostic)


def explore_dfs(
    factory: ModelFactory,
    options: VerifyOptions,
    invariants: Sequence[Invariant] = (),
    *,
    max_runs: int = 10_000,
    stop_on_first: bool = True,
) -> VerifyResult:
    """Exhaustive bounded DFS over the choice tree, with state dedup."""
    context = ExploreContext()
    stats = VerifyStats()
    started = _time.perf_counter()
    stack: List[Tuple[int, ...]] = [()]
    violations: List[Violation] = []
    counterexamples: List[Counterexample] = []
    sanitizer_findings: List[object] = []
    sanitizer_seen: set = set()
    seen_properties: set = set()
    complete = True

    while stack:
        if stats.runs >= max_runs:
            complete = False
            break
        prefix = stack.pop()
        outcome = run_once(factory, prefix, options, invariants, context)
        stats.runs += 1
        stats.choice_points += len(outcome.trail)
        if outcome.truncated:
            complete = False
        _collect_sanitizer(outcome, sanitizer_findings, sanitizer_seen)

        if outcome.violations:
            for violation in outcome.violations:
                if violation.property_id in seen_properties:
                    continue
                seen_properties.add(violation.property_id)
                violations.append(violation)
                counterexamples.append(minimize(
                    factory, outcome.choices, violation, options, invariants
                ))
            if stop_on_first:
                complete = False  # exploration stopped early on purpose
                break

        taken = [point.taken for point in outcome.trail]
        # Reverse order: the earliest undecided position ends up on top
        # of the stack, giving the classic leftmost-first DFS.
        for position in range(len(outcome.trail) - 1, len(prefix) - 1, -1):
            point = outcome.trail[position]
            if point.pruned:
                continue
            for alternative in range(point.arity - 1, 0, -1):
                stack.append(tuple(taken[:position]) + (alternative,))

    stats.states = len(context.visited)
    stats.dedup_hits = context.dedup_hits
    stats.depth_hits = context.depth_hits
    stats.wall_s = _time.perf_counter() - started
    return VerifyResult(
        ok=not violations,
        complete=complete and not violations,
        strategy="dfs",
        stats=stats,
        violations=violations,
        counterexamples=counterexamples,
        sanitizer_findings=sanitizer_findings,
    )


def explore_random(
    factory: ModelFactory,
    options: VerifyOptions,
    invariants: Sequence[Invariant] = (),
    *,
    runs: int = 100,
    seed: int = 0,
    stop_on_first: bool = True,
) -> VerifyResult:
    """Seeded random sampling of schedules -- the large-space fallback."""
    if runs < 1:
        raise VerifyError(f"random strategy needs runs >= 1, got {runs}")
    context = ExploreContext()
    stats = VerifyStats()
    started = _time.perf_counter()
    violations: List[Violation] = []
    counterexamples: List[Counterexample] = []
    sanitizer_findings: List[object] = []
    sanitizer_seen: set = set()
    seen_properties: set = set()
    seen_trails: set = set()

    for index in range(runs):
        controller = RandomController(seed + index)
        outcome = run_once(
            factory, (), options, invariants, context, controller=controller
        )
        stats.runs += 1
        stats.choice_points += len(outcome.trail)
        _collect_sanitizer(outcome, sanitizer_findings, sanitizer_seen)
        if outcome.choices in seen_trails:
            continue
        seen_trails.add(outcome.choices)
        if outcome.violations:
            for violation in outcome.violations:
                if violation.property_id in seen_properties:
                    continue
                seen_properties.add(violation.property_id)
                violations.append(violation)
                counterexamples.append(minimize(
                    factory, outcome.choices, violation, options, invariants
                ))
            if stop_on_first:
                break

    stats.states = len(context.visited)
    stats.dedup_hits = context.dedup_hits
    stats.depth_hits = context.depth_hits
    stats.wall_s = _time.perf_counter() - started
    return VerifyResult(
        ok=not violations,
        complete=False,  # sampling never proves anything
        strategy="random",
        stats=stats,
        violations=violations,
        counterexamples=counterexamples,
        sanitizer_findings=sanitizer_findings,
    )


__all__ = [
    "VerifyStats",
    "VerifyResult",
    "explore_dfs",
    "explore_random",
]
