"""Counterexample minimization.

A violating DFS or random run usually carries incidental choices that
have nothing to do with the failure.  :func:`minimize` shrinks the
recorded trail with two replay-based passes:

1. **shortest prefix** -- find the shortest forced prefix after which the
   leftmost continuation (all defaults) still violates the same
   property;
2. **zero-out** -- reset each remaining non-default choice to 0 when the
   violation survives without it.

Both passes only ever *re-run the model*, so the minimized choice
sequence is guaranteed replayable -- it is the exact sequence the final
confirming run took.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..kernel.time import Time
from .harness import ModelFactory, VerifyOptions, run_once
from .properties import Invariant, Violation


@dataclass(frozen=True)
class Counterexample:
    """A minimized, replayable witness of one property violation."""

    property_id: str
    message: str
    location: str
    time: Time
    #: The forced choice prefix; every decision beyond it defaults to 0.
    choices: Tuple[int, ...]
    #: Human-readable trail of the violating run (choice descriptions).
    trail: Tuple[str, ...]

    def describe(self) -> str:
        schedule = " -> ".join(self.trail) if self.trail else "<default run>"
        return (
            f"[{self.property_id}] {self.location}: {self.message}\n"
            f"    schedule: {schedule}\n"
            f"    choices:  {list(self.choices)}"
        )

    def to_dict(self) -> dict:
        return {
            "property": self.property_id,
            "message": self.message,
            "location": self.location,
            "time": self.time,
            "choices": list(self.choices),
            "trail": list(self.trail),
        }


def _violates(violations: Sequence[Violation], property_id: str) -> bool:
    return any(v.property_id == property_id for v in violations)


def minimize(
    factory: ModelFactory,
    choices: Sequence[int],
    violation: Violation,
    options: VerifyOptions,
    invariants: Sequence[Invariant] = (),
) -> Counterexample:
    """Shrink ``choices`` while preserving ``violation``'s property."""
    target = violation.property_id
    best: List[int] = list(choices)

    # Pass 1: shortest violating prefix (leftmost continuation).
    for length in range(len(best) + 1):
        outcome = run_once(factory, tuple(best[:length]), options, invariants)
        if _violates(outcome.violations, target):
            best = best[:length]
            break

    # Pass 2: zero out individual non-default choices.
    for index in range(len(best)):
        if best[index] == 0:
            continue
        trial = list(best)
        trial[index] = 0
        outcome = run_once(factory, tuple(trial), options, invariants)
        if _violates(outcome.violations, target):
            best = trial

    # Trailing defaults are implied by the replay semantics.
    while best and best[-1] == 0:
        best.pop()

    final = run_once(factory, tuple(best), options, invariants)
    witness = next(
        (v for v in final.violations if v.property_id == target), violation
    )
    return Counterexample(
        property_id=witness.property_id,
        message=witness.message,
        location=witness.location,
        time=witness.time,
        choices=tuple(best),
        trail=tuple(point.describe() for point in final.trail),
    )


__all__ = ["Counterexample", "minimize"]
