"""Canonical simulation states for exploration dedup.

:func:`canonical_state` flattens everything that determines a model's
*future* behavior into one hashable tuple: simulated time, every kernel
process's control position (the whole ``yield from`` frame chain plus its
primitive locals), the RTOS state of every processor and task, each
relation's memory and wait queue, and the pending timed activity.

Two runs that reach equal canonical states and make equal future choices
produce equal futures, so the explorer can prune the second visit --
that is the entire soundness argument of the dedup, which is why the
state is stored *in full* rather than hashed: a hash collision would
silently prune a reachable behavior.

The capture is deliberately conservative: anything it cannot see (e.g. a
non-primitive local in a hand-written behavior) widens states into
distinctness, which costs exploration time but never soundness.
"""

from __future__ import annotations

from typing import Any, Tuple

#: Primitive local-variable types included in a frame's signature.
_PRIMITIVES = (int, str, bool, float, bytes, type(None))


def _frame_chain(gen: Any) -> Tuple[Any, ...]:
    """Control-position signature of a generator's ``yield from`` chain."""
    signature = []
    seen = 0
    while gen is not None and seen < 32:
        seen += 1
        frame = getattr(gen, "gi_frame", None)
        if frame is None:
            signature.append("done")
            break
        locals_sig = tuple(sorted(
            (key, value)
            for key, value in frame.f_locals.items()
            if isinstance(value, _PRIMITIVES)
        ))
        signature.append((frame.f_code.co_name, frame.f_lasti, locals_sig))
        gen = getattr(gen, "gi_yieldfrom", None)
    return tuple(signature)


def _process_state(process: Any) -> Tuple[Any, ...]:
    gen = getattr(process, "_gen", None)
    return (
        process.name,
        process.state.name,
        _frame_chain(gen) if gen is not None else (),
    )


def _task_state(task: Any) -> Tuple[Any, ...]:
    state = task.state
    return (
        task.name,
        state.name if state is not None else "unstarted",
        task.effective_priority,
        task.remaining_budget,
        task.absolute_deadline,
        bool(task.preempt_pending),
        bool(task.granted),
        # SMP: which core the task currently sits on, and whether a
        # migration cost is still owed -- both shape the future schedule
        task.processor.name,
        bool(getattr(task, "migration_pending", False)),
    )


def _processor_state(processor: Any) -> Tuple[Any, ...]:
    running = processor.running
    return (
        processor.name,
        bool(processor.preemptive),
        running.name if running is not None else None,
        tuple(t.name for t in processor.ready_tasks),
        tuple(_task_state(t) for t in processor.tasks),
    )


def _relation_state(relation: Any) -> Tuple[Any, ...]:
    waiters = tuple(
        (w.function.name if w.function is not None else None, repr(w.payload))
        for w in relation._waiters
    )
    extra = []
    owner = getattr(relation, "owner", None)
    if owner is not None:
        extra.append(("owner", owner.name))
    for attr in ("_flag", "_count", "pattern"):
        value = getattr(relation, attr, None)
        if value is not None:
            extra.append((attr, value))
    items = getattr(relation, "_items", None)
    if items is not None:
        extra.append(("items", tuple(repr(item) for item in items)))
    writers = getattr(relation, "_writer_waiters", None)
    if writers:
        extra.append((
            "writers",
            tuple(
                (w.function.name if w.function is not None else None,
                 repr(w.payload))
                for w in writers
            ),
        ))
    return (type(relation).__name__, relation.name, waiters, tuple(extra))


def _timed_signature(sim: Any) -> Tuple[Any, ...]:
    entries = []
    for when, seq, entry in sim._timed:
        if getattr(entry, "cancelled", False):
            continue
        kind = type(entry).__name__
        target = getattr(entry, "event", None)
        if target is not None:
            label = target.name
        else:
            sensitivity = getattr(entry, "sensitivity", None)
            if sensitivity is not None:
                process = getattr(sensitivity, "process", None)
                label = process.name if process is not None else "?"
            else:
                fn = getattr(entry, "fn", None)
                label = getattr(fn, "__qualname__", "callback")
        entries.append((when, seq, kind, label))
    entries.sort()
    # the raw heap sequence numbers differ between runs; only the
    # *relative* order of same-instant entries matters for the future
    return tuple((when, kind, label) for when, _, kind, label in entries)


def canonical_state(system: Any) -> Tuple[Any, ...]:
    """One hashable tuple capturing the model's future-relevant state."""
    sim = system.sim
    return (
        sim.now,
        # start_time distinguishes pre-run jitter branches, priority the
        # (rare) dynamically re-prioritized task
        tuple(
            (name, fn.start_time, fn.priority)
            for name, fn in system.functions.items()
        ),
        tuple(_process_state(p) for p in sim.processes),
        tuple(
            _processor_state(cpu) for cpu in system.processors.values()
        ),
        tuple(
            _relation_state(rel) for rel in system.relations.values()
        ),
        _timed_signature(sim),
    )


__all__ = ["canonical_state"]
