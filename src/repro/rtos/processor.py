"""The Processor: a CPU executing mapped functions under the RTOS model.

This base class holds everything the paper's two implementation
techniques share -- the ready queue, the pluggable scheduling policy, the
preemptive/non-preemptive mode (switchable during simulation, §3.1), the
three-component overhead model (§3.2) and the statistics counters -- while
the engine subclasses decide *who executes* the RTOS logic:

* :class:`~repro.rtos.procedural.ProceduralProcessor` (§4.2): RTOS
  procedures run inside the calling task's thread (plus kernel callbacks
  for wakeups from idle).  Fewer process switches; the default.
* :class:`~repro.rtos.threaded.ThreadedProcessor` (§4.1): a dedicated
  RTOS thread performs all scheduling work, tasks communicate with it
  through events.

Timing semantics (identical across engines, asserted by tests):

=============================  ==========================================
RTOS action                    overhead charged
=============================  ==========================================
task blocks / is preempted     context-save + scheduling, then the next
                               task pays context-load
task terminates                scheduling only (+ next task's load)
wake from idle CPU             scheduling (+ woken task's load)
running task wakes a local     scheduling, inline in the caller (the
task without preemption        paper's Figure-6 case (c))
running task wakes a local     scheduling + context-save inline, then
task that preempts it          the preemptor pays context-load (Fig 6 (b))
=============================  ==========================================
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ModelError, RTOSError
from ..kernel.module import Module
from ..kernel.simulator import Simulator
from ..kernel.time import Time
from ..mcse.function import Function
from ..trace.records import (
    OverheadKind,
    OverheadRecord,
    PreemptionRecord,
    TaskState,
)
from .overheads import Overheads
from .policies import SchedulingPolicy, make_policy
from .tcb import Task


class ProcessorBase(Module):
    """Common state and decision logic of both RTOS engines."""

    #: Engine label ("procedural" / "threaded").
    engine = "base"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        policy: Union[str, SchedulingPolicy, None] = None,
        overheads: Optional[Overheads] = None,
        scheduling_duration: Union[int, object] = 0,
        context_load_duration: Union[int, object] = 0,
        context_save_duration: Union[int, object] = 0,
        preemptive: bool = True,
        speed: float = 1.0,
        parent: Optional[Module] = None,
        **policy_kwargs,
    ) -> None:
        super().__init__(sim, name, parent)
        self.policy = make_policy(policy, **policy_kwargs)
        self.policy.on_attach(self)
        if overheads is not None:
            if (scheduling_duration or context_load_duration
                    or context_save_duration):
                raise RTOSError(
                    "pass either an Overheads object or the individual "
                    "duration arguments, not both"
                )
            self.overheads = overheads
        else:
            self.overheads = Overheads(
                scheduling=scheduling_duration,
                context_load=context_load_duration,
                context_save=context_save_duration,
            )
        self.preemptive = preemptive
        if speed <= 0:
            raise RTOSError(f"processor speed must be positive: {speed}")
        #: Relative clock rate: execute budgets are divided by this, so
        #: the same functional model can be dropped onto a faster or
        #: slower core ("the effect of processor change", paper §6).
        self.speed = speed
        self.tasks: List[Task] = []
        self.running: Optional[Task] = None
        self._ready: List[Task] = []
        self._scheduling_in_progress = False
        self._local_decision: Optional[str] = None
        self._timeslice_handle = None
        #: Owning :class:`~repro.smp.SchedulingDomain`, or None when this
        #: processor dispatches independently (the single-core paper model).
        self.domain = None
        # --- statistics --------------------------------------------------
        self.dispatch_count = 0
        self.preemption_count = 0
        self.migration_count = 0
        self.overhead_time: Time = 0

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------
    def map(self, function: Function, priority: Optional[int] = None) -> Task:
        """Map ``function`` onto this processor as an RTOS task.

        Must happen before the function starts executing (i.e. before the
        simulation reaches its start time).
        """
        if function.task is not None:
            raise ModelError(
                f"function {function.name!r} is already mapped on "
                f"{function.task.processor.name!r}"
            )
        if function.state is not None:
            raise ModelError(
                f"function {function.name!r} already started; map before "
                "running the simulation"
            )
        task = Task(self, function, priority)
        function.task = task
        function.context = self._make_context()
        self.tasks.append(task)
        return task

    def _make_context(self):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ready_tasks(self) -> Tuple[Task, ...]:
        return tuple(self._ready)

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    def scale_duration(self, duration: Time) -> Time:
        """Nominal compute budget -> cycles on this core's clock."""
        if self.speed == 1.0:
            return duration
        return max(1, round(duration / self.speed)) if duration else 0

    def utilization(self) -> float:
        """Fraction of elapsed time spent on task code or RTOS overhead."""
        now = self.sim.now
        if now == 0:
            return 0.0
        busy = self.overhead_time + sum(t.cpu_time for t in self.tasks)
        return busy / now

    def overhead_ratio(self) -> float:
        """Fraction of elapsed time spent inside the RTOS itself."""
        now = self.sim.now
        return self.overhead_time / now if now else 0.0

    # ------------------------------------------------------------------
    # Mode control (paper §3.1: switchable during the simulation)
    # ------------------------------------------------------------------
    def set_preemptive(self, flag: bool) -> None:
        """Switch preemptive mode; used to model critical regions.

        Re-enabling preemption immediately reconsiders the ready queue: a
        higher-priority task that arrived during the non-preemptive
        region preempts the running task right away.
        """
        was = self.preemptive
        self.preemptive = bool(flag)
        if self.preemptive and not was and self.running is not None:
            best = self.scheduling_policy(tuple(self._ready))
            if best is not None and self.policy.should_preempt(
                self, self.running, best
            ):
                self.request_preempt(self.running, best)

    # ------------------------------------------------------------------
    # The overridable policy hook (paper §3.1)
    # ------------------------------------------------------------------
    def scheduling_policy(self, ready: Sequence[Task]) -> Optional[Task]:
        """Select the next task to run among ``ready``.

        Default: delegate to the policy object.  Subclass the processor
        and override this method to implement an application-specific
        algorithm, as the paper suggests.

        When a :attr:`Simulator.choice_controller` is installed (model
        checking, :mod:`repro.verify`), equally eligible tasks -- as
        reported by the policy's ``tie_candidates`` -- become an explored
        branch point instead of the implicit FIFO tie-break.
        """
        chosen = self.policy.select(self, ready)
        controller = self.sim.choice_controller
        if controller is not None and chosen is not None:
            candidates = self.policy.tie_candidates(self, ready, chosen)
            if len(candidates) > 1:
                index = controller.choose(
                    "tie", self.name, len(candidates),
                    labels=tuple(t.name for t in candidates),
                )
                chosen = candidates[index]
        return chosen

    # ------------------------------------------------------------------
    # Readiness and scheduling decisions
    # ------------------------------------------------------------------
    def make_ready(self, task: Task, reason: str = "woken") -> None:
        """``task`` enters the Ready state; run the decision logic.

        This is the model's ``TaskIsReady`` (paper §4.2): called from
        whatever execution context caused the readiness -- the running
        task itself (RTOS call), a task or HW function elsewhere, an
        interrupt callback, or a timer.
        """
        if task.processor is not self:
            raise RTOSError(
                f"task {task.name!r} belongs to {task.processor.name!r}, "
                f"not {self.name!r}"
            )
        if self.domain is not None:
            self.domain.task_ready(task, reason)
            return
        self._admit_ready(task, reason)

    def _admit_ready(self, task: Task, reason: str) -> None:
        """Queue ``task`` locally and run this core's decision logic.

        The dispatch seam shared by standalone processors and scheduling
        domains: domains pick a target core, then admit through here so
        preemption/idle-wake handling stays in one code path.
        """
        task.set_state(TaskState.READY, reason)
        self._ready.append(task)
        self._reschedule(task)

    def _reschedule(self, candidate: Task) -> None:
        running = self.running
        current = self.sim.current_process
        if (
            running is not None
            and current is not None
            and current is running.function.process
        ):
            # The running task itself performed the wake: the decision is
            # charged inline by its after_signal hook (cases (b)/(c)).
            if self.preemptive and self.policy.should_preempt(
                self, running, candidate
            ):
                self._local_decision = "preempt"
            elif self._local_decision is None:
                self._local_decision = "schedule_only"
            return
        self._external_wake(candidate)

    def _external_wake(self, candidate: Task) -> None:
        """Engine-specific handling of a wake from outside the CPU."""
        raise NotImplementedError

    def _take_local_decision(self) -> Optional[str]:
        decision = self._local_decision
        self._local_decision = None
        return decision

    def poke(self) -> None:
        """Re-run the scheduling decision without a new readiness event.

        Used by policies whose eligibility changes over time (e.g. time
        partitions): an idle CPU whose ready queue just became eligible
        gets a dispatch, and a running task that lost eligibility can be
        preempted by the policy's ``should_preempt``.
        """
        if self._scheduling_in_progress:
            return
        best = self.scheduling_policy(tuple(self._ready))
        if best is None:
            return
        if self.running is None:
            self._external_wake(best)
        elif self.preemptive and self.policy.should_preempt(
            self, self.running, best
        ):
            self.request_preempt(self.running, best)

    def request_preempt(self, running: Task, by: Optional[Task] = None) -> None:
        """Ask the running task to relinquish the CPU (``TaskPreempt``)."""
        if running.preempt_pending:
            return
        running.preempt_pending = True
        running.preempted_by = by.name if by is not None else None
        running.preempt_event.notify()

    # ------------------------------------------------------------------
    # Dispatch helpers used by the engines
    # ------------------------------------------------------------------
    def _release_cpu(self, task: Task) -> None:
        if self.running is not task:
            raise RTOSError(
                f"task {task.name!r} releasing CPU it does not hold "
                f"(running={self.running!r})"
            )
        self.running = None
        self._scheduling_in_progress = True
        task.preempt_pending = False
        self.policy.on_undispatch(self, task)

    def _select_and_remove(self) -> Optional[Task]:
        if self.domain is not None:
            return self.domain.select_for(self)
        return self._select_and_remove_local()

    def _select_and_remove_local(self) -> Optional[Task]:
        chosen = self.scheduling_policy(tuple(self._ready))
        if chosen is not None:
            try:
                self._ready.remove(chosen)
            except ValueError:
                raise RTOSError(
                    f"scheduling_policy returned {chosen.name!r}, which is "
                    "not in the ready queue"
                ) from None
        return chosen

    def _dispatch_next(self) -> None:
        """Pick and grant the next task; called after overheads are paid."""
        self._scheduling_in_progress = False
        chosen = self._select_and_remove()
        if chosen is None:
            return  # CPU goes idle
        self._grant(chosen)

    def _grant(self, task: Task) -> None:
        if self.running is not None:  # invariant: grants are exclusive
            raise RTOSError(
                f"granting {task.name!r} while {self.running.name!r} holds "
                f"the CPU"
            )
        self.running = task
        self.dispatch_count += 1
        task.dispatch_count += 1
        task.granted = True
        task.run_event.notify()

    def _on_task_running(self, task: Task) -> None:
        """Called by the task's thread once its context load completed."""
        task.set_state(TaskState.RUNNING)
        self.policy.on_dispatch(self, task)

    def _record_preemption(self, task: Task) -> None:
        self.preemption_count += 1
        self.sim.record(
            PreemptionRecord(
                self.sim.now,
                self.name,
                preempted=task.name,
                preempting=getattr(task, "preempted_by", None) or "?",
            )
        )

    # ------------------------------------------------------------------
    # Overhead accounting
    # ------------------------------------------------------------------
    def _overhead(self, kind: OverheadKind, task: Optional[Task] = None) -> Time:
        """Resolve one overhead component, record it, return its duration."""
        if kind is OverheadKind.SCHEDULING:
            duration = self.overheads.scheduling(self)
        elif kind is OverheadKind.CONTEXT_LOAD:
            duration = self.overheads.context_load(self)
        elif kind is OverheadKind.MIGRATION:
            duration = self.overheads.migration(self)
        else:
            duration = self.overheads.context_save(self)
        if duration:
            self.overhead_time += duration
            self.sim.record(
                OverheadRecord(
                    self.sim.now, self.name, kind, duration,
                    task.name if task else None,
                )
            )
        return duration

    # ------------------------------------------------------------------
    # Time slices (used by round-robin policies)
    # ------------------------------------------------------------------
    def arm_timeslice(self, task: Task, duration: Time) -> None:
        self.disarm_timeslice()
        self._timeslice_handle = self.sim.schedule_callback(
            duration, lambda: self._timeslice_expired(task)
        )

    def disarm_timeslice(self) -> None:
        if self._timeslice_handle is not None:
            self._timeslice_handle.cancelled = True
            self._timeslice_handle = None

    def _timeslice_expired(self, task: Task) -> None:
        if self.running is task and self.policy.on_timeslice(self, task):
            self.request_preempt(task)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Summary counters for reports and benchmarks."""
        return {
            "processor": self.name,
            "engine": self.engine,
            "policy": self.policy.name,
            "tasks": len(self.tasks),
            "dispatches": self.dispatch_count,
            "preemptions": self.preemption_count,
            "migrations": self.migration_count,
            "overhead_time": self.overhead_time,
            "utilization": self.utilization(),
            "domain": self.domain.name if self.domain is not None else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        running = self.running.name if self.running else "idle"
        return (
            f"<{type(self).__name__} {self.name} {self.policy.name} "
            f"running={running} ready={len(self._ready)}>"
        )
