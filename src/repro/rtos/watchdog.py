"""Online deadline watchdogs: detect misses *during* the simulation.

Post-hoc constraints (:mod:`repro.analysis.constraints`) judge a trace
after the run; a :class:`DeadlineWatchdog` reacts at the moment a
deadline expires, like a hardware watchdog or a kernel deadline monitor
would -- so a model can simulate *recovery* (shed load, reset a task,
switch modes), not just observe failure.

It watches the task's state records through the simulator's observer
hook: an *activation* (Ready entered by wakeup/timer/creation) arms a
kernel timer at ``activation + deadline``; a *completion* (any Waiting
state or termination) disarms it; expiry invokes ``on_miss`` at the
exact deadline instant, from a kernel callback (outside any task).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import RTOSError
from ..kernel.simulator import Simulator
from ..kernel.time import Time
from ..trace.records import MarkerRecord, StateRecord, TaskState

#: Activation reasons that start a deadline window.
_ACTIVATION_REASONS = ("woken", "timer", "created")

#: States that complete the current activation.
_COMPLETION_STATES = (
    TaskState.WAITING,
    TaskState.WAITING_RESOURCE,
    TaskState.TERMINATED,
)


class DeadlineWatchdog:
    """Arm a timer per activation of ``task_name``; fire on expiry.

    Parameters
    ----------
    on_miss:
        ``on_miss(watchdog, activation_time)`` invoked at the deadline
        instant.  Optional; misses are always counted and marked in the
        trace either way.
    """

    def __init__(
        self,
        sim: Simulator,
        task_name: str,
        deadline: Time,
        *,
        on_miss: Optional[Callable] = None,
    ) -> None:
        if deadline <= 0:
            raise RTOSError(f"watchdog deadline must be positive: {deadline}")
        self.sim = sim
        self.task_name = task_name
        self.deadline = deadline
        self.on_miss = on_miss
        self.miss_count = 0
        self.activation_count = 0
        #: Activation times that missed (for reporting).
        self.missed_activations: List[Time] = []
        self._armed_handle = None
        self._activation_time: Optional[Time] = None
        self._enabled = True
        sim.add_observer(self._observe)

    # ------------------------------------------------------------------
    def disable(self) -> None:
        """Stop watching (pending timer is disarmed)."""
        self._enabled = False
        self._disarm()
        self.sim.remove_observer(self._observe)

    @property
    def armed(self) -> bool:
        return self._armed_handle is not None

    # ------------------------------------------------------------------
    def _observe(self, record) -> None:
        if not self._enabled or not isinstance(record, StateRecord):
            return
        if record.task != self.task_name:
            return
        if (record.state is TaskState.READY
                and record.reason in _ACTIVATION_REASONS):
            if self._armed_handle is None:
                self.activation_count += 1
                self._activation_time = record.time
                self._armed_handle = self.sim.schedule_callback(
                    self.deadline, self._expired
                )
        elif record.state in _COMPLETION_STATES:
            self._disarm()

    def _disarm(self) -> None:
        if self._armed_handle is not None:
            self._armed_handle.cancelled = True
            self._armed_handle = None
            self._activation_time = None

    def _expired(self) -> None:
        if self._armed_handle is None:  # disarmed at the same instant
            return
        activation = self._activation_time
        self._armed_handle = None
        self._activation_time = None
        self.miss_count += 1
        self.missed_activations.append(activation)
        self.sim.record(
            MarkerRecord(
                self.sim.now,
                f"deadline_miss({self.task_name})",
                self.task_name,
            )
        )
        if self.on_miss is not None:
            self.on_miss(self, activation)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DeadlineWatchdog {self.task_name} "
            f"misses={self.miss_count}/{self.activation_count}>"
        )
