"""The dedicated-RTOS-thread engine (paper §4.1).

The RTOS behaviour is modelled by its own simulation thread, woken by an
``RTKRun`` event.  Tasks notify the RTOS thread whenever they enter or
leave the Waiting state; the RTOS thread pays the overheads, runs the
scheduling algorithm, and activates the elected task with its ``TaskRun``
event (paper Figures 2 and 3).

The simulated *timing* is identical to the procedural engine -- the same
overhead amounts are charged at the same instants, which the test suite
asserts by comparing full traces.  The *cost* differs: every RTOS action
needs extra simulation-thread switches (task -> RTOS -> task), which is
exactly the inefficiency the paper measured and the reason it proposes
the procedure-call technique.  The benchmark
``benchmarks/bench_impl_comparison.py`` reproduces that comparison.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from ..kernel.event import Event
from ..trace.records import OverheadKind, TaskState
from .context import RTOSContext
from .processor import ProcessorBase
from .tcb import Task


class ThreadedContext(RTOSContext):
    """Task-side protocol: every RTOS action is shipped to the RTOS thread."""

    def _relinquish(self, task: Task, *, save: bool) -> Generator:
        self.processor._post(("release", task, bool(save)))
        return
        yield  # pragma: no cover - makes this a generator function

    def _self_preempt(self, task: Task, *, pay_sched: bool) -> Generator:
        cpu = self.processor
        cpu._release_cpu(task)
        task.set_state(TaskState.READY, reason="preempted")
        cpu._record_preemption(task)
        cpu._ready.append(task)
        # the RTOS thread pays save (+ scheduling) and elects the next task
        if pay_sched:
            cpu._post(("release", task, True))
        else:
            cpu._post(("switch_no_sched", task))
        yield from self._await_grant(task)

    def _sched_pass(self, task: Task, *, preempt: bool) -> Generator:
        cpu = self.processor
        if preempt:
            # scheduling first (the decision), then the context switch
            cpu._post(("sched_then_preempt", task))
            yield from self._await_grant(task)
        else:
            task.resumed = False
            cpu._post(("sched_resume", task))
            if not task.resumed:
                yield task.resume_event
            task.resumed = False


class ThreadedProcessor(ProcessorBase):
    """Processor whose RTOS behaviour runs in a dedicated thread."""

    engine = "threaded"

    def __init__(self, sim, name, **kwargs) -> None:
        super().__init__(sim, name, **kwargs)
        #: The RTKRun event of the paper's Figure 2.
        self.rtk_run = Event(sim, f"{self.name}.RTKRun")
        self._requests: List[Tuple] = []
        self._rtos_process = sim.thread(self._rtos_thread, name=f"{self.name}.rtos")
        self._rtos_process.daemon = True

    def _make_context(self) -> ThreadedContext:
        return ThreadedContext(self)

    def _external_wake(self, candidate: Task) -> None:
        self._post(("wake", candidate))

    # ------------------------------------------------------------------
    # Request queue
    # ------------------------------------------------------------------
    def _post(self, request: Tuple) -> None:
        self._requests.append(request)
        self._scheduling_in_progress = True
        self.rtk_run.notify()

    def _rtos_thread(self) -> Generator:
        while True:
            if not self._requests:
                yield self.rtk_run
                continue
            request = self._requests.pop(0)
            yield from self._handle(request)
            self._scheduling_in_progress = bool(self._requests)

    def _charge(self, kind: OverheadKind, task=None) -> Generator:
        duration = self._overhead(kind, task)
        if duration:
            yield duration

    #: Request kinds whose handler will itself elect the next task; a
    #: "wake" must defer to them to keep the serialization identical to
    #: the procedural engine (and to never double-grant the CPU).
    _RELEASING = ("release", "switch_no_sched", "sched_then_preempt")

    def _release_pending(self) -> bool:
        return any(req[0] in self._RELEASING for req in self._requests)

    def _handle(self, request: Tuple) -> Generator:
        kind = request[0]
        if kind == "wake":
            candidate = request[1]
            if self.running is None:
                if self._ready and not self._release_pending():
                    yield from self._charge(OverheadKind.SCHEDULING)
                    yield 0  # settle same-instant arrivals before electing
                    self._dispatch_next()
            elif (
                self.preemptive
                and candidate.state is TaskState.READY
                and self.policy.should_preempt(self, self.running, candidate)
            ):
                self.request_preempt(self.running, candidate)
        elif kind == "release":
            # a task left the CPU (blocked, terminated or preempted);
            # its thread already set the new state
            task, save = request[1], request[2]
            if save:
                yield from self._charge(OverheadKind.CONTEXT_SAVE, task)
            yield from self._charge(OverheadKind.SCHEDULING)
            yield 0  # settle same-instant arrivals before electing
            self._dispatch_next()
        elif kind == "switch_no_sched":
            # self-preemption whose scheduling pass was already charged
            task = request[1]
            yield from self._charge(OverheadKind.CONTEXT_SAVE, task)
            yield 0  # settle same-instant arrivals before electing
            self._dispatch_next()
        elif kind == "sched_then_preempt":
            # a running task's RTOS call elected a preemptor
            task = request[1]
            yield from self._charge(OverheadKind.SCHEDULING)
            self._release_cpu(task)
            task.set_state(TaskState.READY, reason="preempted")
            self._record_preemption(task)
            self._ready.append(task)
            yield from self._charge(OverheadKind.CONTEXT_SAVE, task)
            yield 0  # settle same-instant arrivals before electing
            self._dispatch_next()
        elif kind == "sched_resume":
            # a running task's RTOS call did not change the election
            task = request[1]
            yield from self._charge(OverheadKind.SCHEDULING)
            task.resumed = True
            task.resume_event.notify()
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown RTOS request {kind!r}")
