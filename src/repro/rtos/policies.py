"""Scheduling policies for the generic RTOS model (paper §3.1).

A policy answers three questions:

* :meth:`SchedulingPolicy.select` -- which ready task runs next;
* :meth:`SchedulingPolicy.should_preempt` -- does a newly ready task evict
  the running one (only consulted in preemptive mode);
* the dispatch hooks -- e.g. a round-robin policy arms a time-slice timer.

The paper ships priority-based preemptive scheduling as the default and
lets designers "define their own policies by overloading the
SchedulingPolicy method of our Processor class"; both extension paths
exist here: pass a policy object, or override
:meth:`Processor.scheduling_policy`.

Priorities: larger value = more urgent (as in the paper's Figure 6,
where priority 5 preempts priority 2).  ``effective_priority`` is used
everywhere so that priority inheritance (see
:mod:`repro.rtos.services`) composes with every priority-based policy.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Union

from ..errors import RTOSError
from ..kernel.time import Time

if TYPE_CHECKING:  # pragma: no cover
    from .processor import ProcessorBase
    from .tcb import Task


class SchedulingPolicy:
    """Base class: FIFO selection, never preempts."""

    #: Registry key and display name.
    name = "base"

    def select(self, processor: "ProcessorBase",
               ready: Sequence["Task"]) -> Optional["Task"]:
        """Pick the next task to run (do not mutate ``ready``)."""
        return ready[0] if ready else None

    def should_preempt(self, processor: "ProcessorBase", running: "Task",
                       candidate: "Task") -> bool:
        """Whether ``candidate`` (just made ready) evicts ``running``."""
        return False

    def tie_candidates(self, processor: "ProcessorBase",
                       ready: Sequence["Task"],
                       chosen: "Task") -> Sequence["Task"]:
        """All ready tasks the policy considers interchangeable with
        ``chosen`` (the task :meth:`select` just picked).

        The verifier (:mod:`repro.verify`) branches the exploration over
        this set: ``select`` deterministically breaks ties by ready-queue
        (FIFO) order, but a real RTOS makes no such promise, so every
        member of this set is an admissible dispatch.  Policies whose
        tie-break *is* part of their contract (FIFO, round-robin
        rotation, seeded lottery) keep the default single-candidate
        answer.
        """
        return (chosen,)

    def on_attach(self, processor: "ProcessorBase") -> None:
        """Hook: the policy was installed on ``processor``."""

    def on_dispatch(self, processor: "ProcessorBase", task: "Task") -> None:
        """Hook: ``task`` was granted the CPU."""

    def on_undispatch(self, processor: "ProcessorBase", task: "Task") -> None:
        """Hook: ``task`` lost the CPU (blocked, preempted, terminated)."""

    def on_timeslice(self, processor: "ProcessorBase", task: "Task") -> bool:
        """Hook: ``task``'s time slice expired; True requests preemption."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class FifoPolicy(SchedulingPolicy):
    """First-come first-served, run to completion (never preempts)."""

    name = "fifo"


class PriorityPreemptivePolicy(SchedulingPolicy):
    """Fixed-priority preemptive scheduling -- the RTOS industry default."""

    name = "priority_preemptive"

    def select(self, processor, ready):
        best = None
        for task in ready:
            if best is None or task.effective_priority > best.effective_priority:
                best = task  # strict '>' keeps FIFO order among equals
        return best

    def should_preempt(self, processor, running, candidate):
        return candidate.effective_priority > running.effective_priority

    def tie_candidates(self, processor, ready, chosen):
        top = chosen.effective_priority
        return tuple(t for t in ready if t.effective_priority == top)


class RoundRobinPolicy(SchedulingPolicy):
    """Priority-blind circular scheduling with a fixed time slice."""

    name = "round_robin"

    def __init__(self, time_slice: Time) -> None:
        if time_slice <= 0:
            raise RTOSError(f"time slice must be positive: {time_slice}")
        self.time_slice = time_slice

    def on_dispatch(self, processor, task):
        processor.arm_timeslice(task, self.time_slice)

    def on_undispatch(self, processor, task):
        processor.disarm_timeslice()

    def on_timeslice(self, processor, task):
        # rotate only if someone is actually waiting for the CPU
        return processor.ready_count > 0


class PriorityRoundRobinPolicy(PriorityPreemptivePolicy):
    """Priority preemptive + round-robin among equal priorities."""

    name = "priority_round_robin"

    def __init__(self, time_slice: Time) -> None:
        if time_slice <= 0:
            raise RTOSError(f"time slice must be positive: {time_slice}")
        self.time_slice = time_slice

    def on_dispatch(self, processor, task):
        processor.arm_timeslice(task, self.time_slice)

    def on_undispatch(self, processor, task):
        processor.disarm_timeslice()

    def on_timeslice(self, processor, task):
        return any(
            peer.effective_priority >= task.effective_priority
            for peer in processor.ready_tasks
        )


class EDFPolicy(SchedulingPolicy):
    """Earliest-deadline-first.

    Tasks advertise their current job's absolute deadline through
    :attr:`Task.absolute_deadline`; a task with no deadline is treated
    as infinitely lax.
    """

    name = "edf"

    @staticmethod
    def _deadline(task) -> float:
        deadline = task.absolute_deadline
        return float("inf") if deadline is None else deadline

    def select(self, processor, ready):
        best = None
        for task in ready:
            if best is None or self._deadline(task) < self._deadline(best):
                best = task
        return best

    def should_preempt(self, processor, running, candidate):
        return self._deadline(candidate) < self._deadline(running)

    def tie_candidates(self, processor, ready, chosen):
        best = self._deadline(chosen)
        return tuple(t for t in ready if self._deadline(t) == best)


class GlobalEDFPolicy(EDFPolicy):
    """EDF over a scheduling domain's shared ready pool.

    Selection and preemption rules are exactly EDF's; the separate
    registry name marks the intent (and lets analyzers apply the
    global-EDF utilization bound, RTS151, instead of the single-core
    one).  A :class:`~repro.smp.SchedulingDomain` installs one instance
    on every member core so dispatch, placement and victim selection all
    agree on the same ordering.
    """

    name = "global_edf"


class RateMonotonicPolicy(SchedulingPolicy):
    """Rate-monotonic: shorter period = more urgent.

    Periods come from the mapped function's ``period`` annotation; a
    task with no period is treated as infinitely long (least urgent).
    Priorities are implicit in the period, so RM task sets need no
    hand-assigned priorities.
    """

    name = "rm"

    @staticmethod
    def _period(task) -> float:
        period = getattr(task.function, "period", None)
        return float("inf") if period is None else period

    def select(self, processor, ready):
        best = None
        for task in ready:
            if best is None or self._period(task) < self._period(best):
                best = task  # strict '<' keeps FIFO order among equals
        return best

    def should_preempt(self, processor, running, candidate):
        return self._period(candidate) < self._period(running)

    def tie_candidates(self, processor, ready, chosen):
        best = self._period(chosen)
        return tuple(t for t in ready if self._period(t) == best)


class GlobalRMPolicy(RateMonotonicPolicy):
    """Rate-monotonic over a scheduling domain's shared ready pool."""

    name = "global_rm"


class LeastLaxityPolicy(SchedulingPolicy):
    """Least-laxity-first: laxity = deadline - now - remaining work.

    Remaining work is the task's :attr:`Task.remaining_budget`, which the
    RTOS execute path maintains automatically; a task without deadline
    or budget information is treated as infinitely lax.
    """

    name = "llf"

    @staticmethod
    def _laxity(processor, task) -> float:
        if task.absolute_deadline is None:
            return float("inf")
        remaining = task.remaining_budget or 0
        return task.absolute_deadline - processor.sim.now - remaining

    def select(self, processor, ready):
        best = None
        best_laxity = float("inf")
        for task in ready:
            laxity = self._laxity(processor, task)
            if best is None or laxity < best_laxity:
                best, best_laxity = task, laxity
        return best

    def should_preempt(self, processor, running, candidate):
        return self._laxity(processor, candidate) < self._laxity(
            processor, running
        )

    def tie_candidates(self, processor, ready, chosen):
        best = self._laxity(processor, chosen)
        return tuple(
            t for t in ready if self._laxity(processor, t) == best
        )


class LotteryPolicy(SchedulingPolicy):
    """Probabilistic lottery scheduling; tickets = priority + 1.

    Deterministic for a given seed, so simulations stay reproducible.
    """

    name = "lottery"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(self, processor, ready):
        if not ready:
            return None
        tickets = [max(task.effective_priority, 0) + 1 for task in ready]
        total = sum(tickets)
        draw = self._rng.uniform(0, total)
        acc = 0.0
        for task, weight in zip(ready, tickets):
            acc += weight
            if draw <= acc:
                return task
        return ready[-1]  # pragma: no cover - float edge


#: Policy registry used by the builder and the processor factory.
POLICIES: Dict[str, type] = {
    cls.name: cls
    for cls in (
        FifoPolicy,
        PriorityPreemptivePolicy,
        RoundRobinPolicy,
        PriorityRoundRobinPolicy,
        EDFPolicy,
        GlobalEDFPolicy,
        RateMonotonicPolicy,
        GlobalRMPolicy,
        LeastLaxityPolicy,
        LotteryPolicy,
    )
}


def make_policy(spec: Union[str, SchedulingPolicy, None], **kwargs) -> SchedulingPolicy:
    """Build a policy from a registry name, pass through an instance."""
    if spec is None:
        # kwargs flow through so an unexpected key raises instead of
        # being silently dropped with the implied default policy
        return PriorityPreemptivePolicy(**kwargs)
    if isinstance(spec, SchedulingPolicy):
        if kwargs:
            raise RTOSError("policy kwargs only apply to registry names")
        return spec
    try:
        cls = POLICIES[spec]
    except KeyError:
        raise RTOSError(
            f"unknown scheduling policy {spec!r}; pick one of {sorted(POLICIES)}"
        ) from None
    return cls(**kwargs)
