"""The procedure-call RTOS engine (paper §4.2) -- the default.

No RTOS thread exists.  The RTOS is a passive object whose "primitives"
run inside the calling task's simulation thread, exactly as a real RTOS
runs inside the caller of a system call:

* ``TaskIsBlocked``  -> :meth:`ProceduralContext._relinquish`
  (the blocking task's thread pays context-save + scheduling, then
  notifies the elected task with its ``TaskRun`` event);
* ``TaskIsPreempted`` -> :meth:`ProceduralContext._self_preempt`
  (the preempted task's thread computes the remaining time of the
  current operation, pays the switch overheads, elects the successor);
* ``TaskIsReady``    -> :meth:`ProceduralProcessor._external_wake`
  (decision logic run synchronously by whoever caused the readiness).

The only wakeups with no task thread to run on -- a ready event arriving
while the CPU is idle -- are handled by a kernel callback chain that
models the RTOS scheduling pass without any extra simulation thread, so
the engine's process-switch count stays minimal (the paper's motivation
for this technique).
"""

from __future__ import annotations

from typing import Generator

from ..trace.records import OverheadKind, TaskState
from .context import RTOSContext
from .processor import ProcessorBase
from .tcb import Task


class ProceduralContext(RTOSContext):
    """Task-side RTOS primitives executed in the task's own thread."""

    def _relinquish(self, task: Task, *, save: bool) -> Generator:
        cpu = self.processor
        if save:
            duration = cpu._overhead(OverheadKind.CONTEXT_SAVE, task)
            if duration:
                yield duration
        duration = cpu._overhead(OverheadKind.SCHEDULING)
        if duration:
            yield duration
        # settle one delta so every task becoming ready at this instant is
        # visible to the election (scheduling uses the *current* state)
        yield 0
        cpu._dispatch_next()

    def _self_preempt(self, task: Task, *, pay_sched: bool) -> Generator:
        cpu = self.processor
        cpu._release_cpu(task)
        task.set_state(TaskState.READY, reason="preempted")
        cpu._record_preemption(task)
        cpu._ready.append(task)
        if cpu.domain is not None:
            # a global/clustered domain may resume the victim immediately
            # on an idle sibling core instead of queueing it here
            cpu.domain.task_preempted(task)
        duration = cpu._overhead(OverheadKind.CONTEXT_SAVE, task)
        if duration:
            yield duration
        if pay_sched:
            duration = cpu._overhead(OverheadKind.SCHEDULING)
            if duration:
                yield duration
        yield 0  # settle same-instant arrivals before electing
        cpu._dispatch_next()
        yield from self._await_grant(task)

    def _sched_pass(self, task: Task, *, preempt: bool) -> Generator:
        cpu = self.processor
        duration = cpu._overhead(OverheadKind.SCHEDULING)
        if duration:
            yield duration
        if preempt:
            yield from self._self_preempt(task, pay_sched=False)


class ProceduralProcessor(ProcessorBase):
    """Processor whose RTOS runs as procedure calls in task threads."""

    engine = "procedural"

    def _make_context(self) -> ProceduralContext:
        return ProceduralContext(self)

    def _external_wake(self, candidate: Task) -> None:
        if self._scheduling_in_progress:
            # a scheduling pass is already in flight; its election will
            # consider this candidate (it is in the ready queue)
            return
        if self.running is None:
            self._begin_idle_dispatch()
            return
        if self.preemptive and self.policy.should_preempt(
            self, self.running, candidate
        ):
            self.request_preempt(self.running, candidate)

    # ------------------------------------------------------------------
    # Wake-from-idle: a scheduling pass modelled by a callback chain
    # ------------------------------------------------------------------
    def _begin_idle_dispatch(self) -> None:
        self._scheduling_in_progress = True
        duration = self._overhead(OverheadKind.SCHEDULING)
        self.sim.schedule_callback(duration, self._finish_idle_dispatch)

    def _finish_idle_dispatch(self) -> None:
        # defer the election to the delta phase so every same-instant
        # wakeup (processed in the evaluate phase) is visible to it
        self.sim.schedule_delta_callback(self._dispatch_next)
