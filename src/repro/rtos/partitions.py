"""Time-partition scheduling (ARINC-653-style), as a pluggable policy.

Avionics RTOSes isolate applications by *time partitioning*: a cyclic
major frame is divided into windows, each owned by one partition, and
only that partition's tasks may use the CPU inside its window.  Because
the paper's model makes the scheduling policy generic (§3.1), the whole
scheme fits into one :class:`SchedulingPolicy`:

* each task carries a partition label (``function.partition``; tasks
  without one are *background* and eligible in every window);
* :class:`TimePartitionPolicy` selects by priority among the eligible
  ready tasks and preempts a task whose partition loses the window --
  at the exact boundary, courtesy of time-accurate preemption;
* inside a window, scheduling is fixed-priority preemptive.

Example::

    policy = TimePartitionPolicy([("flight", 5 * MS), ("cabin", 3 * MS)])
    cpu = system.processor("cpu", policy=policy)
    flight_ctl = system.function("fctl", body, priority=5)
    flight_ctl.partition = "flight"
    cpu.map(flight_ctl)
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import RTOSError
from ..kernel.time import Time, format_time
from .policies import POLICIES, SchedulingPolicy


class TimePartitionPolicy(SchedulingPolicy):
    """Cyclic time windows, fixed-priority preemptive within a window."""

    name = "time_partition"

    def __init__(self, windows: Sequence[Tuple[str, Time]]) -> None:
        if not windows:
            raise RTOSError("need at least one partition window")
        for partition, duration in windows:
            if duration <= 0:
                raise RTOSError(
                    f"window for {partition!r} must be positive: {duration}"
                )
        self.windows: List[Tuple[str, Time]] = list(windows)
        self.major_frame: Time = sum(d for _, d in windows)
        self._index = 0
        self._processor = None
        #: Window boundaries crossed so far (for tests/statistics).
        self.boundary_count = 0

    # ------------------------------------------------------------------
    # Window state
    # ------------------------------------------------------------------
    @property
    def active_partition(self) -> str:
        return self.windows[self._index][0]

    def _eligible(self, task) -> bool:
        partition = getattr(task.function, "partition", None)
        return partition is None or partition == self.active_partition

    def window_at(self, time: Time) -> str:
        """The partition owning the window at absolute ``time``."""
        offset = time % self.major_frame
        for partition, duration in self.windows:
            if offset < duration:
                return partition
            offset -= duration
        return self.windows[-1][0]  # pragma: no cover - exact sum

    # ------------------------------------------------------------------
    # Policy interface
    # ------------------------------------------------------------------
    def on_attach(self, processor) -> None:
        if self._processor is not None:
            raise RTOSError(
                "a TimePartitionPolicy instance serves a single processor"
            )
        self._processor = processor
        duration = self.windows[self._index][1]
        processor.sim.schedule_callback(duration, self._boundary)

    def select(self, processor, ready):
        best = None
        for task in ready:
            if not self._eligible(task):
                continue
            if best is None or task.effective_priority > best.effective_priority:
                best = task
        return best

    def should_preempt(self, processor, running, candidate):
        if not self._eligible(candidate):
            return False
        if not self._eligible(running):
            return True  # the running task lost its window
        return candidate.effective_priority > running.effective_priority

    # ------------------------------------------------------------------
    # Boundary rotation
    # ------------------------------------------------------------------
    def _boundary(self) -> None:
        self.boundary_count += 1
        self._index = (self._index + 1) % len(self.windows)
        processor = self._processor
        running = processor.running
        if running is not None and not self._eligible(running):
            best = self.select(processor, processor.ready_tasks)
            processor.request_preempt(running, best)
        else:
            # an idle CPU (or an eligible runner) may now have newly
            # eligible ready work to dispatch or preempt with
            processor.poke()
        duration = self.windows[self._index][1]
        processor.sim.schedule_callback(duration, self._boundary)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{p}:{format_time(d)}" for p, d in self.windows
        )
        return f"<TimePartitionPolicy [{parts}]>"


# Registered here (not in the policies module) so the registry entry
# appears exactly when this policy is importable; the builder accepts
# {"policy": "time_partition", "windows": [["flight", "5ms"], ...]}.
POLICIES[TimePartitionPolicy.name] = TimePartitionPolicy
