"""The generic RTOS model -- the paper's contribution.

Map MCSE functions onto a :class:`Processor` and the simulation accounts
for task serialization, the scheduling policy, preemptive/non-preemptive
mode, and the three RTOS overhead components (scheduling duration,
context-load and context-save durations), with time-accurate preemption
independent of any clock.

Two interchangeable engines implement the model, mirroring the paper's
§4: the default procedure-call engine (fast, §4.2) and the dedicated
RTOS-thread engine (§4.1).  ``make_processor`` selects one by name.
"""

from ..errors import RTOSError
from .interrupts import EventInterrupt, PeriodicInterrupt, attach_isr
from .overheads import NO_OVERHEAD, Overheads
from .policies import (
    EDFPolicy,
    FifoPolicy,
    GlobalEDFPolicy,
    GlobalRMPolicy,
    LeastLaxityPolicy,
    LotteryPolicy,
    POLICIES,
    PriorityPreemptivePolicy,
    PriorityRoundRobinPolicy,
    RateMonotonicPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    make_policy,
)
from .partitions import TimePartitionPolicy
from .procedural import ProceduralContext, ProceduralProcessor
from .processor import ProcessorBase
from .servers import AperiodicRequest, DeferrableServer, PollingServer
from .services import CeilingSharedVariable, InheritanceSharedVariable
from .states import ALLOWED_TRANSITIONS, check_transition
from .tcb import Task
from .threaded import ThreadedContext, ThreadedProcessor
from .watchdog import DeadlineWatchdog

#: Engine registry for ``make_processor`` and the declarative builder.
ENGINES = {
    "procedural": ProceduralProcessor,
    "threaded": ThreadedProcessor,
}


def make_processor(sim, name, engine: str = "procedural", domain=None, **kwargs):
    """Create a processor using the selected RTOS engine.

    ``domain`` optionally joins the new processor to an existing
    :class:`repro.smp.SchedulingDomain` (global/partitioned kinds; a
    clustered domain takes its full member list at construction).
    """
    try:
        cls = ENGINES[engine]
    except KeyError:
        raise RTOSError(
            f"unknown RTOS engine {engine!r}; pick one of {sorted(ENGINES)}"
        ) from None
    cpu = cls(sim, name, **kwargs)
    if domain is not None:
        domain.add_member(cpu)
    return cpu


__all__ = [
    "ALLOWED_TRANSITIONS",
    "AperiodicRequest",
    "CeilingSharedVariable",
    "DeadlineWatchdog",
    "DeferrableServer",
    "PollingServer",
    "EDFPolicy",
    "ENGINES",
    "EventInterrupt",
    "FifoPolicy",
    "GlobalEDFPolicy",
    "GlobalRMPolicy",
    "InheritanceSharedVariable",
    "LeastLaxityPolicy",
    "LotteryPolicy",
    "NO_OVERHEAD",
    "Overheads",
    "POLICIES",
    "PeriodicInterrupt",
    "PriorityPreemptivePolicy",
    "PriorityRoundRobinPolicy",
    "ProceduralContext",
    "ProceduralProcessor",
    "ProcessorBase",
    "RateMonotonicPolicy",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "Task",
    "ThreadedContext",
    "TimePartitionPolicy",
    "ThreadedProcessor",
    "attach_isr",
    "check_transition",
    "make_policy",
    "make_processor",
]
