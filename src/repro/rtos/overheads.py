"""RTOS timing overheads (paper §3.2).

The RTOS contribution to system timing is modelled by three parameters:

* **scheduling duration** -- time the RTOS spends selecting a ready task;
* **context-load duration** -- time to load the chosen task's context;
* **context-save duration** -- time to save the suspended task's context.

Each may be a fixed time or a *user formula*: a callable evaluated
against the live processor state at the moment the overhead is incurred,
"according to the current state of the simulated system (number of ready
tasks for example)".  Formulas receive the :class:`Processor` so they can
inspect ``processor.ready_count``, ``processor.task_count``, the policy,
simulated time, and so on.

Example -- an O(n) scheduler on a 100 MHz core::

    overheads = Overheads(
        scheduling=lambda cpu: (20 + 4 * cpu.ready_count) * 10 * NS,
        context_load=2 * US,
        context_save=2 * US,
    )
"""

from __future__ import annotations

import inspect
from typing import Callable, Union

from ..errors import RTOSError
from ..kernel.time import Time

#: An overhead component: constant femtoseconds or formula(processor).
OverheadSpec = Union[int, Callable[["object"], Time]]


class Overheads:
    """The three overhead components of the RTOS model."""

    def __init__(
        self,
        scheduling: OverheadSpec = 0,
        context_load: OverheadSpec = 0,
        context_save: OverheadSpec = 0,
    ) -> None:
        self._scheduling = self._validate("scheduling", scheduling)
        self._context_load = self._validate("context_load", context_load)
        self._context_save = self._validate("context_save", context_save)

    @staticmethod
    def _validate(name: str, spec: OverheadSpec) -> OverheadSpec:
        if callable(spec):
            # Fail at construction, not mid-simulation: the formula must
            # accept the processor as its single positional argument.
            try:
                signature = inspect.signature(spec)
            except (TypeError, ValueError):
                return spec  # C callable without introspectable signature
            try:
                signature.bind("processor")
            except TypeError:
                raise RTOSError(
                    f"{name} overhead formula {spec!r} must accept one "
                    "positional argument (the processor)"
                ) from None
            return spec
        if isinstance(spec, bool) or not isinstance(spec, int):
            raise RTOSError(
                f"{name} overhead must be an int time or a callable, "
                f"got {spec!r}"
            )
        if spec < 0:
            raise RTOSError(f"negative {name} overhead: {spec}")
        return spec

    @staticmethod
    def _resolve(spec: OverheadSpec, processor) -> Time:
        value = spec(processor) if callable(spec) else spec
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise RTOSError(
                f"overhead formula returned {value!r}; expected a "
                "non-negative int time"
            )
        return value

    def scheduling(self, processor) -> Time:
        """Scheduling duration at this instant on ``processor``."""
        return self._resolve(self._scheduling, processor)

    def context_load(self, processor) -> Time:
        """Context-load duration at this instant on ``processor``."""
        return self._resolve(self._context_load, processor)

    def context_save(self, processor) -> Time:
        """Context-save duration at this instant on ``processor``."""
        return self._resolve(self._context_save, processor)


#: A zero-cost RTOS (useful for functional-only simulation).
NO_OVERHEAD = Overheads()
