"""RTOS timing overheads (paper §3.2).

The RTOS contribution to system timing is modelled by three parameters:

* **scheduling duration** -- time the RTOS spends selecting a ready task;
* **context-load duration** -- time to load the chosen task's context;
* **context-save duration** -- time to save the suspended task's context.

Each may be a fixed time or a *user formula*: a callable evaluated
against the live processor state at the moment the overhead is incurred,
"according to the current state of the simulated system (number of ready
tasks for example)".  Formulas receive the :class:`Processor` so they can
inspect ``processor.ready_count``, ``processor.task_count``, the policy,
simulated time, and so on.

Example -- an O(n) scheduler on a 100 MHz core::

    overheads = Overheads(
        scheduling=lambda cpu: (20 + 4 * cpu.ready_count) * 10 * NS,
        context_load=2 * US,
        context_save=2 * US,
    )
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional, Union

from ..errors import RTOSError
from ..kernel.time import Time

#: An overhead component: constant femtoseconds or formula(processor).
OverheadSpec = Union[int, Callable[["object"], Time]]


def formula_arity_error(fn: Callable, *argument_names: str) -> Optional[str]:
    """Why ``fn`` cannot take ``argument_names`` positionally, or ``None``.

    The single arity check shared by the :class:`Overheads` constructor,
    the RTS120 pre-simulation probe (:mod:`repro.analyze.model`) and the
    verifier's ``assert_always`` invariants (:mod:`repro.verify`), so all
    three agree on what a well-formed user formula looks like.  Callables
    without an introspectable signature (C builtins) pass vacuously.
    """
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    try:
        signature.bind(*argument_names)
    except TypeError:
        count = len(argument_names)
        plural = "argument" if count == 1 else "arguments"
        return (
            f"must accept {count} positional {plural} "
            f"({', '.join(argument_names)})"
        )
    return None


class Overheads:
    """The three overhead components of the RTOS model."""

    def __init__(
        self,
        scheduling: OverheadSpec = 0,
        context_load: OverheadSpec = 0,
        context_save: OverheadSpec = 0,
        migration: OverheadSpec = 0,
    ) -> None:
        self._scheduling = self._validate("scheduling", scheduling)
        self._context_load = self._validate("context_load", context_load)
        self._context_save = self._validate("context_save", context_save)
        self._migration = self._validate("migration", migration)

    @staticmethod
    def _validate(name: str, spec: OverheadSpec) -> OverheadSpec:
        if callable(spec):
            # Fail at construction, not mid-simulation: the formula must
            # accept the processor as its single positional argument.
            error = formula_arity_error(spec, "processor")
            if error is not None:
                raise RTOSError(
                    f"{name} overhead formula {spec!r} {error}"
                )
            return spec
        if isinstance(spec, bool) or not isinstance(spec, int):
            raise RTOSError(
                f"{name} overhead must be an int time or a callable, "
                f"got {spec!r}"
            )
        if spec < 0:
            raise RTOSError(f"negative {name} overhead: {spec}")
        return spec

    @staticmethod
    def _resolve(spec: OverheadSpec, processor) -> Time:
        value = spec(processor) if callable(spec) else spec
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise RTOSError(
                f"overhead formula returned {value!r}; expected a "
                "non-negative int time"
            )
        return value

    def scheduling(self, processor) -> Time:
        """Scheduling duration at this instant on ``processor``."""
        return self._resolve(self._scheduling, processor)

    def context_load(self, processor) -> Time:
        """Context-load duration at this instant on ``processor``."""
        return self._resolve(self._context_load, processor)

    def context_save(self, processor) -> Time:
        """Context-save duration at this instant on ``processor``."""
        return self._resolve(self._context_save, processor)

    def migration(self, processor) -> Time:
        """Cross-core migration cost paid on the *target* ``processor``.

        Models cache/TLB reload after a scheduling domain moved a task
        between cores; charged once, just before the migrated task's
        context load.  Zero (the default) for single-core models.
        """
        return self._resolve(self._migration, processor)


#: A zero-cost RTOS (useful for functional-only simulation).
NO_OVERHEAD = Overheads()
