"""Hardware interrupt sources.

In the paper's examples a hardware event (e.g. the ``Clock`` task
notifying ``Clk``) wakes a software task at an exact instant, preempting
whatever runs.  These helpers package the common patterns:

* :class:`PeriodicInterrupt` -- a timer interrupt firing every period,
  running a zero-time *handler* (usually: signal an MCSE event relation);
* :class:`EventInterrupt` -- an interrupt bound to any kernel event
  (e.g. a :class:`~repro.kernel.clock.Clock` posedge or a signal change).

Handlers run outside any task context (kernel callbacks / daemon
processes), so task wakeups they cause take the RTOS model's *external*
path: exact-time preemption of the running task, or a wake-from-idle
scheduling pass.  Interrupt deliveries are recorded for the TimeLine.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..kernel.event import Event
from ..kernel.simulator import Simulator
from ..kernel.time import Time
from ..trace.records import InterruptRecord


class PeriodicInterrupt:
    """A timer interrupt: run ``handler()`` every ``period``.

    The first delivery is at ``start_time + period`` unless
    ``immediate_first`` is set.  ``max_fires`` bounds the number of
    deliveries (handy for finite experiment runs).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        period: Time,
        handler: Callable[[], None],
        processor_name: str = "",
        start_time: Time = 0,
        immediate_first: bool = False,
        max_fires: Optional[int] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"interrupt period must be positive: {period}")
        self.sim = sim
        self.name = sim.unique_name(name)
        self.period = period
        self.handler = handler
        self.processor_name = processor_name
        self.fire_count = 0
        self.max_fires = max_fires
        self._stopped = False
        first = start_time if immediate_first else start_time + period
        sim.schedule_callback(first, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self.sim.record(
            InterruptRecord(self.sim.now, self.processor_name, self.name)
        )
        self.handler()
        if self.max_fires is not None and self.fire_count >= self.max_fires:
            self._stopped = True
            return
        self.sim.schedule_callback(self.period, self._fire)

    def stop(self) -> None:
        """Stop delivering (cannot be restarted)."""
        self._stopped = True


def attach_isr(
    system,
    processor,
    name: str,
    *,
    period: Time,
    isr_duration: Time,
    action: Optional[Callable[[], None]] = None,
    max_fires: Optional[int] = None,
    priority: int = 10**9,
):
    """Model an interrupt whose *service routine costs CPU time*.

    :class:`PeriodicInterrupt` delivers in zero time (a pure hardware
    event); a real interrupt also steals CPU for its ISR before the
    woken task can run.  This helper builds the standard pattern: a
    top-priority micro-task on ``processor`` that wakes on each
    interrupt, executes ``isr_duration`` (preempting whatever runs, at
    the exact interrupt time), performs ``action`` (typically: signal
    the relation the real handler task waits on), and sleeps again.

    Returns ``(interrupt, isr_function)``.  ``action`` runs *after* the
    ISR's CPU time, i.e. the handler task's wake-up already includes the
    ISR latency -- which is the point.
    """
    from ..mcse.events import CounterEvent

    pending = CounterEvent(system.sim, f"{name}.pending")

    def isr_body(fn):
        while True:
            yield from fn.wait(pending)
            yield from fn.execute(isr_duration)
            if action is not None:
                action()

    isr_fn = system.function(f"{name}.isr", isr_body, priority=priority)
    processor.map(isr_fn)
    interrupt = PeriodicInterrupt(
        system.sim,
        name,
        period=period,
        handler=pending.signal,
        processor_name=processor.name,
        max_fires=max_fires,
    )
    return interrupt, isr_fn


class EventInterrupt:
    """Run ``handler()`` each time a kernel event triggers.

    Implemented as a method process statically sensitive to the event,
    so it adds no simulated time of its own.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        event: Event,
        handler: Callable[[], None],
        processor_name: str = "",
    ) -> None:
        self.sim = sim
        self.name = sim.unique_name(name)
        self.event = event
        self.handler = handler
        self.processor_name = processor_name
        self.fire_count = 0
        self._enabled = True
        sim.method(
            self._fire, sensitive=(event,), name=f"{self.name}.isr",
            initialize=False,
        )

    def _fire(self) -> None:
        if not self._enabled:
            return
        self.fire_count += 1
        self.sim.record(
            InterruptRecord(self.sim.now, self.processor_name, self.name)
        )
        self.handler()

    def disable(self) -> None:
        """Mask the interrupt."""
        self._enabled = False

    def enable(self) -> None:
        """Unmask the interrupt."""
        self._enabled = True
