"""Task control blocks: the RTOS-side representation of a function.

Mapping a :class:`~repro.mcse.function.Function` onto a processor creates
a :class:`Task` that carries everything the RTOS needs: the scheduling
priority, the state machine, the grant/preempt events of the paper's §4,
the per-job deadline used by dynamic policies, and the counters behind
the Figure-8 statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..kernel.event import Event
from ..kernel.time import Time
from ..trace.records import TaskState
from .states import ALLOWED_TRANSITIONS, check_transition

if TYPE_CHECKING:  # pragma: no cover
    from ..mcse.function import Function
    from .processor import ProcessorBase


class Task:
    """The RTOS task wrapping a mapped function."""

    def __init__(
        self,
        processor: "ProcessorBase",
        function: "Function",
        priority: Optional[int] = None,
    ) -> None:
        self.processor = processor
        self.function = function
        self.name = function.name
        #: Static priority (larger = more urgent).
        self.base_priority = function.priority if priority is None else priority
        #: Transient boost from priority inheritance, or None.
        self.inherited_priority: Optional[int] = None
        # --- grant/preempt plumbing (paper §4: TaskRun / TaskPreempt) ---
        sim = processor.sim
        self.run_event = Event(sim, f"{self.name}.TaskRun")
        self.preempt_event = Event(sim, f"{self.name}.TaskPreempt")
        #: Resume handshake used by the threaded engine's RTOS calls.
        self.resume_event = Event(sim, f"{self.name}.TaskResume")
        self.resumed = False
        #: Memory for a grant issued before the thread waits on run_event.
        self.granted = False
        #: Memory for a preempt request issued outside an execute window.
        self.preempt_pending = False
        #: Name of the task that triggered the pending preemption, if known.
        self.preempted_by: Optional[str] = None
        #: How the pending grant charges overheads ("switch" or "from_idle").
        self.grant_kind = "switch"
        # --- dynamic-policy data ----------------------------------------
        #: The relation this task is currently blocked on, or None
        #: (drives transitive priority inheritance).
        self.blocked_on = None
        #: Absolute deadline of the current job (EDF/LLF), or None.
        self.absolute_deadline: Optional[Time] = None
        #: Remaining work of the execute in progress (LLF), or None.
        self.remaining_budget: Optional[Time] = None
        # --- SMP (scheduling domains) -------------------------------------
        #: Processor names this task may run on, or None for "anywhere".
        self.affinity: Optional[tuple] = getattr(function, "affinity", None)
        #: Set by a domain migration; charges the migration overhead on
        #: the target core just before the next context load.
        self.migration_pending = False
        # --- statistics ---------------------------------------------------
        self.dispatch_count = 0
        self.cpu_time: Time = 0
        self.migration_count = 0
        self._timeslice_handle = None

    # ------------------------------------------------------------------
    # Priority
    # ------------------------------------------------------------------
    @property
    def effective_priority(self) -> int:
        """Base priority, possibly boosted by priority inheritance."""
        if self.inherited_priority is not None:
            return max(self.base_priority, self.inherited_priority)
        return self.base_priority

    @property
    def priority(self) -> int:
        return self.base_priority

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    @property
    def state(self) -> Optional[TaskState]:
        return self.function.state

    def set_state(self, state: TaskState, reason: Optional[str] = None) -> None:
        """Transition the task, enforcing the Figure-2/4 state machine."""
        current = self.function.state
        if current is not None:
            check_transition(self.name, current, state)
        self.function._set_state(state, reason)

    @property
    def preempted_count(self) -> int:
        return self.function.preempted_count

    @property
    def preempted_time(self) -> Time:
        return self.function.preempted_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = self.state.value if self.state else "unstarted"
        return f"<Task {self.name} prio={self.effective_priority} {state}>"


__all__ = ["Task", "ALLOWED_TRANSITIONS", "check_transition"]
