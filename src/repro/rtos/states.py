"""The RTOS task state machine (paper Figures 2 and 4).

Each task on an RTOS is, at any moment, in exactly one of the states of
§4: *Waiting* (for a synchronization), *Running* (on the processor) or
*Ready* (waiting to be selected), extended at the boundaries of life with
*Created* and *Terminated*, which the TimeLine chart also displays.

:data:`ALLOWED_TRANSITIONS` encodes the edges of Figure 2/4 exactly; the
task control block refuses anything else, which has caught several
scheduler bugs in development and keeps the model honest.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..errors import TaskStateError
from ..trace.records import TaskState

#: Legal state transitions of an RTOS task (paper Figures 2 and 4).
ALLOWED_TRANSITIONS: Dict[TaskState, FrozenSet[TaskState]] = {
    TaskState.CREATED: frozenset({TaskState.READY}),
    TaskState.READY: frozenset({TaskState.RUNNING}),
    TaskState.RUNNING: frozenset(
        {
            TaskState.READY,  # preempted
            TaskState.WAITING,  # blocked on a synchronization
            TaskState.WAITING_RESOURCE,  # blocked on a mutual exclusion
            TaskState.TERMINATED,
        }
    ),
    TaskState.WAITING: frozenset({TaskState.READY}),
    TaskState.WAITING_RESOURCE: frozenset({TaskState.READY}),
    TaskState.TERMINATED: frozenset(),
}


def check_transition(task_name: str, current: TaskState, new: TaskState) -> None:
    """Raise :class:`TaskStateError` unless ``current -> new`` is legal."""
    if new not in ALLOWED_TRANSITIONS[current]:
        raise TaskStateError(
            f"task {task_name!r}: illegal transition "
            f"{current.value} -> {new.value}"
        )
