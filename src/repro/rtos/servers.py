"""Aperiodic servers: polling and deferrable servers on the RTOS model.

Real-time systems mix periodic tasks with aperiodic events; classic
RTOS designs bound the aperiodic load with *server* tasks that own a
periodic budget (Buttazzo [10], the paper's real-time reference).  Both
textbook servers are built here purely on the public model API -- they
are ordinary mapped functions -- which makes them both a library feature
and a stress test for budget-exact preemption:

* :class:`PollingServer` -- wakes every ``period``, serves queued
  requests up to ``budget``, forfeits any unused budget;
* :class:`DeferrableServer` -- keeps its budget while idle and serves
  requests the moment they arrive, replenishing to full every period
  (better average response, the textbook result our tests reproduce).

Budgets are tracked in *consumed CPU time*, so a server preempted by a
higher-priority task does not leak budget -- exactness comes free from
the model's time-accurate execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import RTOSError
from ..kernel.time import Time
from ..mcse.events import CounterEvent
from ..mcse.function import Function
from ..mcse.model import System


@dataclass
class AperiodicRequest:
    """One aperiodic work item submitted to a server."""

    work: Time
    arrival: Time
    remaining: Time = field(init=False)
    completion: Optional[Time] = None

    def __post_init__(self) -> None:
        self.remaining = self.work

    @property
    def response_time(self) -> Optional[Time]:
        if self.completion is None:
            return None
        return self.completion - self.arrival


class _ServerBase:
    """State shared by both server flavours."""

    def __init__(self, system: System, processor, name: str, *,
                 period: Time, budget: Time, priority: int) -> None:
        if period <= 0:
            raise RTOSError(f"server period must be positive: {period}")
        if not 0 < budget <= period:
            raise RTOSError(
                f"server budget must be in (0, period]: {budget}"
            )
        self.system = system
        self.period = period
        self.budget = budget
        self.name = name
        self._pending: List[AperiodicRequest] = []
        self._arrival_event = CounterEvent(system.sim, f"{name}.arrivals")
        self.completed: List[AperiodicRequest] = []
        #: Times the server ran out of budget mid-backlog.
        self.exhaustions = 0
        self.function: Function = system.function(
            name, self._behavior, priority=priority
        )
        processor.map(self.function)

    # ------------------------------------------------------------------
    def submit(self, work: Time) -> AperiodicRequest:
        """Submit an aperiodic request (callable from anywhere)."""
        if work <= 0:
            raise RTOSError(f"request work must be positive: {work}")
        request = AperiodicRequest(work=work, arrival=self.system.sim.now)
        self._pending.append(request)
        self._arrival_event.signal()
        return request

    def response_times(self) -> List[Time]:
        return [r.response_time for r in self.completed]

    def mean_response(self) -> float:
        values = self.response_times()
        return sum(values) / len(values) if values else 0.0

    @property
    def backlog(self) -> int:
        return len(self._pending)

    def _behavior(self, fn: Function):
        raise NotImplementedError


class PollingServer(_ServerBase):
    """Serve the backlog at each period start; idle budget is lost."""

    def _behavior(self, fn: Function):
        period_index = 1
        while True:
            # sleep to the next period boundary
            target = period_index * self.period
            now = self.system.sim.now
            if target > now:
                yield from fn.delay(target - now)
            period_index += 1
            remaining_budget = self.budget
            # polling semantics: only what is queued *now* is considered;
            # and with an empty queue the budget is immediately forfeited
            while remaining_budget > 0 and self._pending:
                request = self._pending[0]
                chunk = min(request.remaining, remaining_budget)
                yield from fn.execute(chunk)
                request.remaining -= chunk
                remaining_budget -= chunk
                if request.remaining == 0:
                    request.completion = self.system.sim.now
                    self.completed.append(request)
                    self._pending.pop(0)
                else:
                    self.exhaustions += 1


class DeferrableServer(_ServerBase):
    """Preserve the budget while idle; replenish to full every period."""

    def _behavior(self, fn: Function):
        remaining_budget = self.budget
        next_replenish = self.period
        while True:
            # consume memorized arrivals, then block until one comes
            if not self._pending:
                yield from fn.wait(self._arrival_event)
            while self._pending:
                now = self.system.sim.now
                if now >= next_replenish:
                    remaining_budget = self.budget
                    next_replenish = (
                        (now // self.period) + 1
                    ) * self.period
                if remaining_budget == 0:
                    self.exhaustions += 1
                    yield from fn.delay(next_replenish - now)
                    continue
                request = self._pending[0]
                chunk = min(request.remaining, remaining_budget)
                yield from fn.execute(chunk)
                request.remaining -= chunk
                remaining_budget -= chunk
                if request.remaining == 0:
                    request.completion = self.system.sim.now
                    self.completed.append(request)
                    self._pending.pop(0)
