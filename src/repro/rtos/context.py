"""The RTOS execution context shared by both engine implementations.

This translates a mapped function's primitive operations into the task
scheduling protocol of the paper's §4.  The *time-accurate preemption*
mechanism -- the paper's improvement over clock-quantum models [1] -- lives
in :meth:`RTOSContext.execute`: an executing task waits on

    ``wait_any(TaskPreempt, timeout=remaining_budget)``

so a hardware event can interrupt the computation at its *exact*
occurrence time, after which the remaining budget is recomputed from the
current simulated time.  No clock, no quantum, zero preemption-latency
error.

Engine-specific pieces (who pays the save/scheduling overheads and how
the next task is dispatched) are the two hooks ``_relinquish`` and
``_self_preempt`` implemented by the procedural (§4.2) and threaded
(§4.1) subclasses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..errors import ProcessKilled
from ..kernel.process import wait_any
from ..kernel.time import Time
from ..mcse.context import ExecutionContext
from ..mcse.relations import Relation, Waiter
from ..trace.records import OverheadKind, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from ..mcse.function import Function
    from .processor import ProcessorBase
    from .tcb import Task


class RTOSContext(ExecutionContext):
    """Base RTOS mapping of function operations (engine-agnostic parts)."""

    kind = "rtos"

    def __init__(self, processor: "ProcessorBase") -> None:
        self.processor = processor

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def _relinquish(self, task: "Task", *, save: bool) -> Generator:
        """Give up the CPU: pay save (+scheduling) and dispatch the next
        task.  The caller has already set the task's new state."""
        raise NotImplementedError

    def _self_preempt(self, task: "Task", *, pay_sched: bool) -> Generator:
        """The running task preempts itself in favour of a better-ready
        task, then waits to be granted the CPU again."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared protocol pieces
    # ------------------------------------------------------------------
    def _await_grant(self, task: "Task") -> Generator:
        """Wait until the RTOS grants the CPU, then pay the context load."""
        if not task.granted:
            yield task.run_event
        task.granted = False
        # Read the processor *after* the grant: a scheduling domain may
        # have migrated the task to another core while it was ready.
        cpu = self.processor
        if cpu.running is not task:  # invariant guard: grants are exclusive
            from ..errors import RTOSError

            raise RTOSError(
                f"task {task.name!r} resumed without holding the CPU "
                f"(running={cpu.running!r})"
            )
        if task.migration_pending:
            task.migration_pending = False
            cost = cpu._overhead(OverheadKind.MIGRATION, task)
            if cost:
                yield cost
        load = cpu._overhead(OverheadKind.CONTEXT_LOAD, task)
        if load:
            yield load
        cpu._on_task_running(task)

    # ------------------------------------------------------------------
    # ExecutionContext interface
    # ------------------------------------------------------------------
    def run(self, function: "Function") -> Generator:
        cpu = self.processor
        task = function.task
        task.set_state(TaskState.CREATED)
        cpu.make_ready(task, reason="created")
        yield from self._await_grant(task)
        try:
            yield from function.behavior()
        except ProcessKilled:
            # kernel-level kill: free the CPU instantly (no RTOS cost).
            # Re-read the processor: migrations may have moved the task
            # since it was first mapped.
            cpu = task.processor
            if task.state is TaskState.RUNNING:
                cpu._release_cpu(task)
                task.set_state(TaskState.TERMINATED)
                cpu.sim.schedule_delta_callback(cpu._dispatch_next)
            raise
        # normal completion: the RTOS terminates the task (paper case (a))
        cpu = task.processor
        if task.state is TaskState.RUNNING:
            cpu._release_cpu(task)
            task.set_state(TaskState.TERMINATED)
            yield from self._relinquish(task, save=False)

    def execute(self, function: "Function", duration: Time) -> Generator:
        """Consume CPU time; preemptible at exact event times.

        ``duration`` is the nominal compute budget; the processor's
        ``speed`` scales it onto this core's clock.
        """
        cpu = self.processor
        task = function.task
        duration = cpu.scale_duration(duration)
        if duration == 0:
            if task.preempt_pending:
                yield from self._self_preempt(task, pay_sched=True)
            return
        remaining = duration
        task.remaining_budget = remaining
        while remaining > 0:
            if task.preempt_pending:
                yield from self._self_preempt(task, pay_sched=True)
                continue
            start = cpu.sim.now
            fired = yield wait_any(task.preempt_event, timeout=remaining)
            elapsed = cpu.sim.now - start
            remaining -= elapsed
            task.cpu_time += elapsed
            task.remaining_budget = remaining
            if fired is not None and remaining > 0:
                # preempted mid-slice at the exact disturbance time
                yield from self._self_preempt(task, pay_sched=True)
            # a preempt arriving at the very instant the slice completed
            # is left pending: the task's next RTOS call honors it after
            # zero simulated time (the work was already done)
        task.remaining_budget = None

    def block(self, function: "Function", waiter: Waiter,
              relation: Relation, timeout: Optional[Time] = None) -> Generator:
        cpu = self.processor
        task = function.task
        state = (
            TaskState.WAITING_RESOURCE if relation.resource else TaskState.WAITING
        )
        timer = None
        if timeout is not None:
            # Bounded wait: an independent RTOS timer (same mechanism as
            # :meth:`delay`) withdraws the undelivered waiter on expiry
            # and puts the task back in the ready queue empty-handed.
            def timeout_fired() -> None:
                if waiter.delivered or task.blocked_on is not relation:
                    return
                relation.withdraw(waiter)
                task.processor.make_ready(task, reason="timeout")

            timer = cpu.sim.schedule_callback(timeout, timeout_fired)
        cpu._release_cpu(task)
        task.blocked_on = relation
        task.set_state(state, reason="blocked")
        yield from self._relinquish(task, save=True)
        # delivery makes the task Ready; the grant hands it the CPU back
        yield from self._await_grant(task)
        task.blocked_on = None
        if timer is not None:
            # A delivered wait revokes its pending timer so the stale
            # entry cannot keep an otherwise-finished simulation alive.
            timer.cancelled = True
        return waiter.value

    def delay(self, function: "Function", duration: Time) -> Generator:
        cpu = self.processor
        task = function.task

        # The RTOS timer is an independent kernel entity armed at call
        # time (not a wait inside this thread): a timer expiring while
        # the context-switch overheads are still in flight then lands in
        # the ready queue before the election, identically on both
        # engines.
        def timer_fired() -> None:
            if task.state is TaskState.WAITING:
                task.processor.make_ready(task, reason="timer")

        cpu.sim.schedule_callback(duration, timer_fired)
        cpu._release_cpu(task)
        task.set_state(TaskState.WAITING, reason="delay")
        yield from self._relinquish(task, save=True)
        yield from self._await_grant(task)

    def on_deliver(self, function: "Function", waiter: Waiter) -> None:
        task = function.task
        task.processor.make_ready(task, reason="woken")

    def after_signal(self, function: "Function",
                     relation: Relation) -> Generator:
        """Pay the local scheduling cost of an operation that woke a task
        on this CPU (paper Figure 6, cases (b) and (c))."""
        cpu = self.processor
        task = function.task
        decision = cpu._take_local_decision()
        if decision is None:
            return
        yield from self._sched_pass(task, preempt=(decision == "preempt"))

    def _sched_pass(self, task: "Task", *, preempt: bool) -> Generator:
        """Engine hook: charge one scheduling pass, optionally switching."""
        raise NotImplementedError
