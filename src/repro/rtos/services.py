"""RTOS-level synchronization services beyond the plain MCSE relations.

The paper points out (Figure 7) that shared-variable blocking produces
priority inversion, and proposes disabling preemption around the access
as the fix.  Real RTOSes offer two more fixes; both are implemented here
as shared-variable subclasses, so all three solutions can be compared on
the same model (the ``bench_fig7`` benchmark does exactly that):

* :class:`InheritanceSharedVariable` -- priority inheritance: while a
  higher-priority task waits, the owner inherits its priority;
* :class:`CeilingSharedVariable` -- immediate priority ceiling: an owner
  runs at the resource's ceiling priority for the whole critical section.

Both act through :attr:`Task.inherited_priority`, which every
priority-based policy reads via ``effective_priority``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..kernel.simulator import Simulator
from ..mcse.shared import SharedVariable

if TYPE_CHECKING:  # pragma: no cover
    from ..mcse.function import Function
    from .tcb import Task


def _task_of(function: Optional["Function"]) -> Optional["Task"]:
    if function is None:
        return None
    return function.task


class InheritanceSharedVariable(SharedVariable):
    """A shared variable with the priority-inheritance protocol.

    When a waiter with higher effective priority than the owner blocks,
    the owner is boosted to that priority until it unlocks.  Boosting a
    Ready owner re-triggers a scheduling decision so the inversion ends
    immediately, not at the next RTOS call.

    Inheritance is **transitive**: if the boosted owner is itself
    blocked on another inheritance variable, that variable's owner
    inherits too, through arbitrary chains (cycles are tolerated and
    simply stop the walk -- they are a model deadlock anyway).
    """

    def _enqueue_waiter(self, function, payload=None):
        waiter = super()._enqueue_waiter(function, payload)
        self._propagate_inheritance()
        return waiter

    def _propagate_inheritance(self, _visited=None) -> None:
        owner_task = _task_of(self.owner)
        if owner_task is None or not self._waiters:
            return
        visited = _visited if _visited is not None else set()
        if id(self) in visited:
            return  # chain cycle: a resource deadlock in the model
        visited.add(id(self))
        top = max(
            (
                w.function.task.effective_priority
                for w in self._waiters
                if w.function is not None and w.function.task is not None
            ),
            default=None,
        )
        if top is None:
            return
        if top > owner_task.effective_priority:
            owner_task.inherited_priority = top
            self._reconsider(owner_task)
            # transitive step: the owner may itself be blocked on
            # another inheritance variable further down the chain
            next_hop = owner_task.blocked_on
            if isinstance(next_hop, InheritanceSharedVariable):
                next_hop._propagate_inheritance(visited)

    def unlock(self, function) -> None:
        owner_task = _task_of(self.owner)
        super().unlock(function)
        if owner_task is not None:
            owner_task.inherited_priority = None
        # the handoff may have boosted the new owner already
        self._propagate_inheritance()

    @staticmethod
    def _reconsider(owner_task: "Task") -> None:
        """A boosted Ready owner may now deserve the CPU."""
        from ..trace.records import TaskState

        cpu = owner_task.processor
        if (
            owner_task.state is TaskState.READY
            and cpu.running is not None
            and cpu.preemptive
            and cpu.policy.should_preempt(cpu, cpu.running, owner_task)
        ):
            cpu.request_preempt(cpu.running, owner_task)


class CeilingSharedVariable(SharedVariable):
    """A shared variable with the immediate-priority-ceiling protocol.

    Every owner runs at ``ceiling`` (which must be at least the highest
    priority of any user) for the whole critical section, preventing both
    priority inversion and deadlocks among ceiling resources.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "shared",
        initial: object = None,
        *,
        ceiling: int,
        wake_order: str = "fifo",
    ) -> None:
        super().__init__(sim, name, initial, wake_order)
        self.ceiling = ceiling

    def _take(self, function) -> None:
        super()._take(function)
        task = _task_of(function)
        if task is not None:
            self._saved_inherited = task.inherited_priority
            task.inherited_priority = max(
                self.ceiling,
                task.inherited_priority
                if task.inherited_priority is not None
                else self.ceiling,
            )

    def unlock(self, function) -> None:
        task = _task_of(self.owner)
        super().unlock(function)
        if task is not None:
            task.inherited_priority = getattr(self, "_saved_inherited", None)
