"""FreeRTOS personality: FreeRTOS objects and API ops on the generic model.

The mapping (documented in full in ``docs/personalities.md``):

================================  ======================================
FreeRTOS object / call            generic lowering
================================  ======================================
queue (length N)                  queue relation, capacity N
binary semaphore                  counter event, max_count 1
counting semaphore                counter event (max_count, initial)
mutex                             shared variable, priority inheritance
task notification                 implicit counter event ``{task}.notify``
``vTaskDelay``                    ``delay``
``vTaskDelayUntil``               ``delay_until``
``xQueueSend[FromISR]``           ``write`` (+ timeout; FromISR polls)
``xQueueReceive``                 ``read`` (+ timeout)
``xSemaphoreTake``                ``wait`` (semaphore) / ``lock`` (mutex)
``xSemaphoreGive[FromISR]``       ``signal`` (semaphore) / ``unlock``
``xTaskNotifyGive``               ``signal`` on the task's notify event
``vTaskNotifyGiveFromISR``        same (ISR-safe variant)
``ulTaskNotifyTake``              ``wait`` on own notify event (+ timeout)
``taskYIELD``                     ``delay 0`` (relinquish, stay ready)
``execute`` / ``loop``            pass through unchanged
================================  ======================================

The scheduler configuration follows the two classic ``FreeRTOSConfig.h``
switches.  ``configUSE_PREEMPTION`` x ``configUSE_TIME_SLICING`` select
the generic scheduling policy:

=========  ============  ==============================================
PREEMPTION  TIME_SLICING  generic policy
=========  ============  ==============================================
1          1             ``priority_round_robin``, time_slice = tick
1          0             ``priority_preemptive``
0          any           ``priority_preemptive`` with preemption off
                         (scheduling decisions only at yield points)
=========  ============  ==============================================

FreeRTOS task priorities already follow the generic convention (larger
number = more urgent), so they pass through unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import BuildError
from .base import Lowering, Personality, check_keys, entry_name, \
    parse_timeout_spec

_TOP_KEYS = ("name", "personality", "config", "objects", "tasks",
             "lint_suppress")
_CONFIG_KEYS = (
    "configUSE_PREEMPTION", "configUSE_TIME_SLICING", "tick", "engine",
    "processor", "scheduling_duration", "context_load_duration",
    "context_save_duration",
)
_OBJECT_KEYS = {
    "queue": ("kind", "name", "length"),
    "binary_semaphore": ("kind", "name", "initial"),
    "counting_semaphore": ("kind", "name", "max_count", "initial"),
    "mutex": ("kind", "name"),
}
_TASK_KEYS = (
    "name", "priority", "script", "isr", "start_time", "wcet", "period",
    "deadline", "jitter", "max_blocking", "affinity", "lint_suppress",
)
#: Task entry keys copied verbatim onto the generic function entry.
_TASK_PASSTHROUGH = ("priority", "start_time", "wcet", "period",
                     "deadline", "jitter", "max_blocking", "affinity",
                     "lint_suppress")

#: API ops that may block the caller (the RTS170 ISR-misuse set).
BLOCKING_OPS = frozenset(
    ("vTaskDelay", "vTaskDelayUntil", "xQueueSend", "xQueueReceive",
     "xSemaphoreTake", "ulTaskNotifyTake")
)


class FreeRTOSPersonality(Personality):
    """Lower a FreeRTOS-flavored spec onto the generic model."""

    name = "freertos"
    description = (
        "FreeRTOS tasks, queues, semaphores, PI mutexes and task "
        "notifications; configUSE_PREEMPTION x configUSE_TIME_SLICING"
    )
    api_ops = (
        "vTaskDelay", "vTaskDelayUntil", "taskYIELD",
        "xQueueSend", "xQueueSendFromISR", "xQueueReceive",
        "xSemaphoreTake", "xSemaphoreGive", "xSemaphoreGiveFromISR",
        "xTaskNotifyGive", "vTaskNotifyGiveFromISR", "ulTaskNotifyTake",
        "execute", "loop",
    )
    object_kinds = tuple(_OBJECT_KEYS)

    # ------------------------------------------------------------------
    def lower(self, spec: Dict) -> Lowering:
        check_keys("freertos spec", spec, _TOP_KEYS)
        config = self._config(dict(spec.get("config") or {}))
        kinds, relations = self._objects(spec.get("objects") or [])
        tasks = spec.get("tasks") or []
        if not isinstance(tasks, list):
            raise BuildError("freertos spec: tasks must be a list")
        task_names = [
            entry_name("freertos task", t) for t in tasks
            if isinstance(t, dict)
        ]
        notify: Set[str] = set()
        functions: List[Dict] = []
        api_ops: Dict[str, List] = {}
        for entry in tasks:
            if not isinstance(entry, dict):
                raise BuildError(
                    f"freertos spec: each task is a dict, got {entry!r}"
                )
            fn = self._task(entry, config, kinds, set(task_names), notify)
            api_ops[fn["name"]] = entry.get("script") or []
            functions.append(fn)
        # Task notifications become per-task counter events, appended in
        # deterministic (sorted) order after the declared objects.
        for task in sorted(notify):
            if task not in task_names:
                raise BuildError(
                    f"freertos spec: notification target {task!r} is not "
                    f"a task; tasks: {sorted(task_names)}"
                )
            relations.append({
                "kind": "event", "name": f"{task}.notify",
                "policy": "counter",
            })
        generic = {
            "name": spec.get("name", "freertos"),
            "relations": relations,
            "processors": [self._processor(config)],
            "functions": functions,
        }
        if "lint_suppress" in spec:
            generic["lint_suppress"] = spec["lint_suppress"]
        return Lowering(self.name, generic, api_ops, config)

    # ------------------------------------------------------------------
    def _config(self, config: Dict) -> Dict:
        check_keys("freertos config", config, _CONFIG_KEYS)
        resolved = {
            "configUSE_PREEMPTION": self._flag(
                config, "configUSE_PREEMPTION", 1),
            "configUSE_TIME_SLICING": self._flag(
                config, "configUSE_TIME_SLICING", 1),
            "tick": config.get("tick", "1ms"),
            "engine": config.get("engine", "procedural"),
            "processor": config.get("processor", "cpu0"),
        }
        for key in ("scheduling_duration", "context_load_duration",
                    "context_save_duration"):
            if key in config:
                resolved[key] = config[key]
        return resolved

    @staticmethod
    def _flag(config: Dict, key: str, default: int) -> int:
        value = config.get(key, default)
        if value not in (0, 1):
            raise BuildError(f"freertos config: {key} must be 0 or 1, "
                             f"got {value!r}")
        return value

    def _processor(self, config: Dict) -> Dict:
        cpu = {"name": config["processor"], "engine": config["engine"]}
        for key in ("scheduling_duration", "context_load_duration",
                    "context_save_duration"):
            if key in config:
                cpu[key] = config[key]
        if config["configUSE_PREEMPTION"]:
            if config["configUSE_TIME_SLICING"]:
                cpu["policy"] = "priority_round_robin"
                cpu["time_slice"] = config["tick"]
            else:
                cpu["policy"] = "priority_preemptive"
        else:
            # Cooperative: the scheduler only runs at explicit yield
            # points; a ready higher-priority task does not preempt.
            cpu["policy"] = "priority_preemptive"
            cpu["preemptive"] = False
        return cpu

    # ------------------------------------------------------------------
    def _objects(self, objects: List) -> Tuple[Dict[str, str], List[Dict]]:
        kinds: Dict[str, str] = {}
        relations: List[Dict] = []
        for entry in objects:
            if not isinstance(entry, dict):
                raise BuildError(
                    f"freertos spec: each object is a dict, got {entry!r}"
                )
            kind = entry.get("kind")
            if kind not in _OBJECT_KEYS:
                raise BuildError(
                    f"freertos object: unknown kind {kind!r}; "
                    f"pick one of {sorted(_OBJECT_KEYS)}"
                )
            where = f"freertos {kind}"
            check_keys(where, entry, _OBJECT_KEYS[kind])
            name = entry_name(where, entry)
            if name in kinds:
                raise BuildError(f"freertos spec: duplicate object name "
                                 f"{name!r}")
            kinds[name] = kind
            relations.append(self._object_relation(kind, name, entry))
        return kinds, relations

    @staticmethod
    def _object_relation(kind: str, name: str, entry: Dict) -> Dict:
        if kind == "queue":
            length = entry.get("length", 8)
            if not isinstance(length, int) or length < 1:
                raise BuildError(
                    f"freertos queue {name!r}: length must be a positive "
                    f"int, got {length!r}"
                )
            return {"kind": "queue", "name": name, "capacity": length}
        if kind == "binary_semaphore":
            initial = entry.get("initial", 0)
            if initial not in (0, 1):
                raise BuildError(
                    f"freertos binary_semaphore {name!r}: initial must be "
                    f"0 or 1, got {initial!r}"
                )
            return {"kind": "event", "name": name, "policy": "counter",
                    "max_count": 1, "initial": initial}
        if kind == "counting_semaphore":
            max_count = entry.get("max_count")
            if not isinstance(max_count, int) or max_count < 1:
                raise BuildError(
                    f"freertos counting_semaphore {name!r}: max_count must "
                    f"be a positive int, got {max_count!r}"
                )
            initial = entry.get("initial", 0)
            if not isinstance(initial, int) or not 0 <= initial <= max_count:
                raise BuildError(
                    f"freertos counting_semaphore {name!r}: initial must be "
                    f"in 0..{max_count}, got {initial!r}"
                )
            return {"kind": "event", "name": name, "policy": "counter",
                    "max_count": max_count, "initial": initial}
        # mutex: FreeRTOS mutexes always run priority inheritance.
        return {"kind": "shared", "name": name, "protocol": "inheritance"}

    # ------------------------------------------------------------------
    def _task(self, entry: Dict, config: Dict, kinds: Dict[str, str],
              task_names: Set[str], notify: Set[str]) -> Dict:
        name = entry_name("freertos task", entry)
        where = f"freertos task {name!r}"
        check_keys(where, entry, _TASK_KEYS)
        isr = bool(entry.get("isr", False))
        script = entry.get("script")
        if not isinstance(script, list):
            raise BuildError(f"{where}: needs a script (list of ops)")
        ctx = _LowerContext(self, name, kinds, task_names, notify)
        fn: Dict = {"name": name, "script": ctx.lower_ops(script, where)}
        if not isr:
            # ISR "tasks" stay unmapped: they model interrupt sources
            # running in hardware context, outside the scheduler.
            fn["processor"] = config["processor"]
        for key in _TASK_PASSTHROUGH:
            if key in entry:
                fn[key] = entry[key]
        return fn


class _LowerContext:
    """Per-task lowering state (object kinds, notify-event discovery)."""

    def __init__(self, personality: FreeRTOSPersonality, task: str,
                 kinds: Dict[str, str], task_names: Set[str],
                 notify: Set[str]) -> None:
        self.personality = personality
        self.task = task
        self.kinds = kinds
        self.task_names = task_names
        self.notify = notify

    def lower_ops(self, ops: List, where: str) -> List:
        lowered = []
        for index, op in enumerate(ops):
            if not isinstance(op, (list, tuple)) or not op or \
                    not isinstance(op[0], str):
                raise BuildError(
                    f"{where}: op #{index} must be [name, args...], "
                    f"got {op!r}"
                )
            lowered.append(self.lower_op(list(op), f"{where} op #{index}"))
        return lowered

    def lower_op(self, op: List, where: str) -> List:
        name, args = op[0], op[1:]
        method = _OP_HANDLERS.get(name)
        if method is None:
            raise BuildError(
                f"{where}: unknown FreeRTOS op {name!r}; accepted ops: "
                f"{sorted(_OP_HANDLERS)}"
            )
        return method(self, args, where)

    # -- helpers -------------------------------------------------------
    def _arity(self, args: List, where: str, low: int, high: int,
               usage: str) -> None:
        if not low <= len(args) <= high:
            raise BuildError(f"{where}: usage {usage}")

    def _object(self, ref: Any, where: str,
                accepted: Tuple[str, ...]) -> str:
        kind = self.kinds.get(ref)
        if kind is None:
            raise BuildError(
                f"{where}: unknown object {ref!r}; objects: "
                f"{sorted(self.kinds)}"
            )
        if kind not in accepted:
            raise BuildError(
                f"{where}: {ref!r} is a {kind}, expected one of "
                f"{sorted(accepted)}"
            )
        return kind

    @staticmethod
    def _with_timeout(base: List, timeout: Any) -> List:
        timeout = parse_timeout_spec(timeout)
        if timeout is None:
            return base
        return base + [timeout]

    # -- op lowerings --------------------------------------------------
    def _delay(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[vTaskDelay, duration]")
        return ["delay", args[0]]

    def _delay_until(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[vTaskDelayUntil, period]")
        return ["delay_until", args[0]]

    def _yield(self, args: List, where: str) -> List:
        self._arity(args, where, 0, 0, "[taskYIELD]")
        # A zero delay releases the CPU and re-enters the ready queue:
        # exactly FreeRTOS's round-robin-to-equal-priority yield.
        return ["delay", 0]

    def _queue_send(self, args: List, where: str) -> List:
        self._arity(args, where, 2, 3, "[xQueueSend, queue, value, tmo?]")
        self._object(args[0], where, ("queue",))
        return self._with_timeout(["write", args[0], args[1]],
                                  args[2] if len(args) > 2 else None)

    def _queue_send_isr(self, args: List, where: str) -> List:
        self._arity(args, where, 2, 2, "[xQueueSendFromISR, queue, value]")
        self._object(args[0], where, ("queue",))
        # FromISR sends never block: lower to a non-blocking poll.
        return ["write", args[0], args[1], 0]

    def _queue_receive(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 2, "[xQueueReceive, queue, tmo?]")
        self._object(args[0], where, ("queue",))
        return self._with_timeout(["read", args[0]],
                                  args[1] if len(args) > 1 else None)

    def _take(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 2, "[xSemaphoreTake, sem_or_mutex, tmo?]")
        kind = self._object(
            args[0], where,
            ("binary_semaphore", "counting_semaphore", "mutex"))
        timeout = parse_timeout_spec(args[1] if len(args) > 1 else None)
        if kind == "mutex":
            if timeout is not None:
                raise BuildError(
                    f"{where}: mutex take supports only portMAX_DELAY "
                    "(the generic lock primitive blocks until granted)"
                )
            return ["lock", args[0]]
        return self._with_timeout(["wait", args[0]], timeout)

    def _give(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[xSemaphoreGive, sem_or_mutex]")
        kind = self._object(
            args[0], where,
            ("binary_semaphore", "counting_semaphore", "mutex"))
        if kind == "mutex":
            return ["unlock", args[0]]
        return ["signal", args[0]]

    def _give_isr(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[xSemaphoreGiveFromISR, sem]")
        self._object(args[0], where,
                     ("binary_semaphore", "counting_semaphore"))
        return ["signal", args[0]]

    def _notify_give(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[xTaskNotifyGive, task]")
        self.notify.add(args[0])
        return ["signal", f"{args[0]}.notify"]

    def _notify_take(self, args: List, where: str) -> List:
        self._arity(args, where, 0, 1, "[ulTaskNotifyTake, tmo?]")
        self.notify.add(self.task)
        return self._with_timeout(["wait", f"{self.task}.notify"],
                                  args[0] if args else None)

    def _execute(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[execute, duration]")
        return ["execute", args[0]]

    def _loop(self, args: List, where: str) -> List:
        self._arity(args, where, 2, 2, "[loop, n_or_null, body]")
        if not isinstance(args[1], list):
            raise BuildError(f"{where}: loop body must be a list of ops")
        return ["loop", args[0], self.lower_ops(args[1], where)]


_OP_HANDLERS = {
    "vTaskDelay": _LowerContext._delay,
    "vTaskDelayUntil": _LowerContext._delay_until,
    "taskYIELD": _LowerContext._yield,
    "xQueueSend": _LowerContext._queue_send,
    "xQueueSendFromISR": _LowerContext._queue_send_isr,
    "xQueueReceive": _LowerContext._queue_receive,
    "xSemaphoreTake": _LowerContext._take,
    "xSemaphoreGive": _LowerContext._give,
    "xSemaphoreGiveFromISR": _LowerContext._give_isr,
    "xTaskNotifyGive": _LowerContext._notify_give,
    "vTaskNotifyGiveFromISR": _LowerContext._notify_give,
    "ulTaskNotifyTake": _LowerContext._notify_take,
    "execute": _LowerContext._execute,
    "loop": _LowerContext._loop,
}
