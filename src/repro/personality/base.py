"""The personality contract: spec-level lowering onto the generic model.

A *personality* makes the generic RTOS model speak a concrete kernel's
API.  It is deliberately **not** a runtime layer: a personality is a
pure spec-to-spec compiler that translates kernel objects (queues,
semaphores, mailboxes, eventflags, ...) into generic MCSE relations and
API-level script ops (``xQueueSend``, ``slp_tsk``, ...) into the
builder's generic op grammar, then hands the result to the ordinary
:func:`repro.mcse.builder.build_system` elaboration.

That one design decision buys every guarantee the rest of the stack
already provides: tracing, statistics, lint (the lowered ops feed the
exact effect IR of :mod:`repro.analyze.effects`), SMP domains and the
bounded model checker all see a plain generic system -- a
personality-built model is byte-identical to the hand-written generic
model of the same system, and the equivalence tests assert exactly
that.

The original API op list of every task survives the lowering as
``Function.personality_ops``, which is what the RTS17x personality
misuse rules (:mod:`repro.analyze.personality`) audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import BuildError


@dataclass
class Lowering:
    """The result of lowering one personality spec."""

    #: Personality name (``system.personality`` after the build).
    personality: str
    #: The pure generic builder spec the personality compiled to.
    spec: Dict
    #: Task name -> validated original API op list (``personality_ops``).
    api_ops: Dict[str, List] = field(default_factory=dict)
    #: The resolved personality configuration (defaults applied).
    config: Dict = field(default_factory=dict)


class Personality:
    """One registered kernel personality (subclass and implement lower)."""

    #: Registry key and ``"personality"`` spec value.
    name = "abstract"
    #: One-line catalogue description.
    description = ""
    #: API-level script op names this personality understands.
    api_ops: Sequence[str] = ()
    #: Kernel object kinds this personality's ``"objects"`` list takes.
    object_kinds: Sequence[str] = ()

    def lower(self, spec: Dict) -> Lowering:
        """Compile a personality spec into a :class:`Lowering`."""
        raise NotImplementedError


def check_keys(where: str, entry: Dict, accepted: Sequence[str]) -> None:
    """Hard-reject unknown keys, teaching the accepted vocabulary."""
    unknown = set(entry) - set(accepted)
    if unknown:
        raise BuildError(
            f"{where}: unknown keys {sorted(unknown)}; "
            f"accepted keys: {sorted(accepted)}"
        )


def entry_name(where: str, entry: Dict) -> str:
    """Pop and validate the mandatory ``name`` of a spec entry."""
    name = entry.get("name")
    if not name or not isinstance(name, str):
        raise BuildError(f"{where}: entry needs a name: {entry!r}")
    return name


def parse_timeout_spec(value: Any) -> Optional[Any]:
    """Normalize an API timeout: ``None``/aliases block forever.

    Returns ``None`` (wait forever), ``0`` for the poll constant
    ``TMO_POL``, or the raw duration value (the generic builder parses
    and validates it).
    """
    if value is None or value in ("forever", "portMAX_DELAY", "TMO_FEVR"):
        return None
    if value == "TMO_POL":
        return 0
    return value


__all__ = [
    "Lowering",
    "Personality",
    "check_keys",
    "entry_name",
    "parse_timeout_spec",
]
