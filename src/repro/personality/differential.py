"""Differential verification of the FreeRTOS scheduling configurations.

The headline experiment of the personality subsystem.  Published formal
analyses of the FreeRTOS scheduler (Spin/Promela models of the
``vTaskSwitchContext`` logic) establish a verdict matrix for two
scheduling properties over the two classic ``FreeRTOSConfig.h``
switches:

* **preemption** -- a ready higher-priority task gets the CPU promptly
  (here: RTS-V006 with a bound of one tick), and
* **fairness** -- equal-priority compute loops all make progress
  (here: RTS-V007 with a bound of several time slices).

=========  ============  ==========  ========
PREEMPTION  TIME_SLICING  preemption  fairness
=========  ============  ==========  ========
1          1             holds       holds
1          0             holds       fails
0          1             fails       fails
0          0             fails       fails
=========  ============  ==========  ========

This module re-derives that matrix *dynamically*: each configuration is
lowered by the FreeRTOS personality onto the generic model and checked
with the bounded model checker (:mod:`repro.verify`).  The two
properties need different exploration stances:

* Preemption is checked under **full schedule exploration**: it must
  hold on *every* admissible schedule, including adversarial
  equal-priority tie-breaks (and genuinely does when
  ``configUSE_PREEMPTION`` is on, since cross-priority preemption never
  depends on a tie).
* Fairness is checked on the **canonical schedule** (the verifier's
  default-choice run).  FreeRTOS's ready-list rotation is a
  deterministic tie-break rule; the generic verifier deliberately
  leaves ties open, and an adversarial tie-break starves a peer under
  *any* configuration -- exploring ties would test the verifier's
  adversary, not the scheduler algorithm the published models check.

Every failing verdict carries a minimized, replayable counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..kernel.time import MS, Time
from ..verify import RTSV006, RTSV007, VerifyResult, replay_spec, \
    verify_spec

#: The published verdict matrix: config -> (preemption holds, fairness
#: holds).
EXPECTED_MATRIX: Dict[Tuple[int, int], Tuple[bool, bool]] = {
    (1, 1): (True, True),
    (1, 0): (True, False),
    (0, 1): (False, False),
    (0, 0): (False, False),
}

#: Scenario timing (one place, so specs and bounds stay consistent).
TICK = 1 * MS
PREEMPTION_BOUND = 1 * MS       # one tick of scheduling latency
STARVATION_BOUND = 5 * MS       # five time slices without the CPU
DEFAULT_HORIZON = 20 * MS


def _config(preemption: int, slicing: int) -> Dict:
    return {
        "configUSE_PREEMPTION": preemption,
        "configUSE_TIME_SLICING": slicing,
        "tick": "1ms",
    }


def preemption_spec(preemption: int, slicing: int) -> Dict:
    """A low-priority compute hog vs. a periodic high-priority task.

    With preemption enabled the high task's tick-aligned release must
    displace the hog within a tick; cooperative configurations leave it
    READY behind the never-yielding hog (RTS-V006).
    """
    return {
        "name": f"freertos_preemption_p{preemption}s{slicing}",
        "personality": "freertos",
        "config": _config(preemption, slicing),
        "tasks": [
            {"name": "hog", "priority": 1, "script": [
                ["loop", None, [["execute", "10ms"]]],
            ]},
            {"name": "urgent", "priority": 3, "script": [
                ["loop", None, [
                    ["vTaskDelay", "2ms"],
                    ["execute", "100us"],
                ]],
            ]},
        ],
    }


def fairness_spec(preemption: int, slicing: int) -> Dict:
    """Two equal-priority compute loops and nothing else.

    Only time slicing rotates them; every other configuration lets the
    first-dispatched loop keep the CPU forever (RTS-V007).
    """
    return {
        "name": f"freertos_fairness_p{preemption}s{slicing}",
        "personality": "freertos",
        "config": _config(preemption, slicing),
        "tasks": [
            {"name": "spin_a", "priority": 1, "script": [
                ["loop", None, [["execute", "10ms"]]],
            ]},
            {"name": "spin_b", "priority": 1, "script": [
                ["loop", None, [["execute", "10ms"]]],
            ]},
        ],
    }


@dataclass
class PropertyVerdict:
    """One property's dynamic verdict under one configuration."""

    property_id: str
    holds: bool
    #: Minimized counterexample choices when the property fails (the
    #: replay handle; empty tuple = the canonical schedule fails).
    counterexample: Optional[Tuple[int, ...]] = None
    #: The spec the verdict was checked on (replay needs it verbatim).
    spec: Optional[Dict] = None

    def replay(self, horizon: Time = DEFAULT_HORIZON
               ) -> Tuple[Any, Any, Any]:
        """Re-execute the failing schedule with a trace recorder.

        Returns ``(system, recorder, outcome)`` exactly like
        :func:`repro.verify.replay_spec`.
        """
        if self.holds or self.counterexample is None or self.spec is None:
            raise ValueError("no counterexample to replay: property holds")
        bounds = (
            {"preemption_bound": PREEMPTION_BOUND}
            if self.property_id == RTSV006
            else {"starvation_bound": STARVATION_BOUND}
        )
        return replay_spec(self.spec, list(self.counterexample),
                           horizon=horizon, **bounds)


@dataclass
class ConfigVerdict:
    """Both property verdicts for one (PREEMPTION, TIME_SLICING) pair."""

    config: Tuple[int, int]
    preemption: PropertyVerdict
    fairness: PropertyVerdict

    @property
    def observed(self) -> Tuple[bool, bool]:
        return (self.preemption.holds, self.fairness.holds)

    @property
    def expected(self) -> Tuple[bool, bool]:
        return EXPECTED_MATRIX[self.config]

    @property
    def matches(self) -> bool:
        return self.observed == self.expected


@dataclass
class MatrixResult:
    """The full differential matrix run."""

    verdicts: List[ConfigVerdict] = field(default_factory=list)

    @property
    def matches_expected(self) -> bool:
        return all(v.matches for v in self.verdicts)

    def mismatches(self) -> List[ConfigVerdict]:
        return [v for v in self.verdicts if not v.matches]

    def table(self) -> List[Dict]:
        """Plain-data rows for JSON emission / docs rendering."""
        rows = []
        for verdict in self.verdicts:
            preemption, slicing = verdict.config
            rows.append({
                "configUSE_PREEMPTION": preemption,
                "configUSE_TIME_SLICING": slicing,
                "preemption": {
                    "expected": verdict.expected[0],
                    "observed": verdict.preemption.holds,
                    "counterexample": (
                        None if verdict.preemption.counterexample is None
                        else list(verdict.preemption.counterexample)
                    ),
                },
                "fairness": {
                    "expected": verdict.expected[1],
                    "observed": verdict.fairness.holds,
                    "counterexample": (
                        None if verdict.fairness.counterexample is None
                        else list(verdict.fairness.counterexample)
                    ),
                },
                "matches": verdict.matches,
            })
        return rows


def _verdict(result: VerifyResult, property_id: str,
             spec: Dict) -> PropertyVerdict:
    violations = [v for v in result.violations
                  if v.property_id == property_id]
    if not violations:
        return PropertyVerdict(property_id, True)
    counterexample = None
    if (result.counterexample is not None
            and result.counterexample.property_id == property_id):
        counterexample = tuple(result.counterexample.choices)
    else:
        counterexample = ()
    return PropertyVerdict(property_id, False, counterexample, spec)


def check_config(preemption: int, slicing: int, *,
                 horizon: Time = DEFAULT_HORIZON,
                 max_runs: int = 50) -> ConfigVerdict:
    """Check both scheduling properties under one configuration."""
    pre_spec = preemption_spec(preemption, slicing)
    pre = verify_spec(
        pre_spec, horizon=horizon,
        preemption_bound=PREEMPTION_BOUND, max_runs=max_runs,
    )
    fair_spec_ = fairness_spec(preemption, slicing)
    fair = verify_spec(
        fair_spec_, horizon=horizon,
        starvation_bound=STARVATION_BOUND, max_runs=1,
    )
    return ConfigVerdict(
        config=(preemption, slicing),
        preemption=_verdict(pre, RTSV006, pre_spec),
        fairness=_verdict(fair, RTSV007, fair_spec_),
    )


def run_matrix(*, horizon: Time = DEFAULT_HORIZON,
               max_runs: int = 50) -> MatrixResult:
    """Run the whole 2x2 configuration matrix."""
    result = MatrixResult()
    for config in sorted(EXPECTED_MATRIX, reverse=True):
        result.verdicts.append(
            check_config(*config, horizon=horizon, max_runs=max_runs)
        )
    return result


__all__ = [
    "EXPECTED_MATRIX",
    "PREEMPTION_BOUND",
    "STARVATION_BOUND",
    "DEFAULT_HORIZON",
    "preemption_spec",
    "fairness_spec",
    "PropertyVerdict",
    "ConfigVerdict",
    "MatrixResult",
    "check_config",
    "run_matrix",
]
