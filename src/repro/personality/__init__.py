"""Kernel personalities: concrete RTOS APIs over the generic model.

The paper's central claim is that one *generic* RTOS model can stand in
for many concrete kernels during system-level simulation.  This package
cashes that claim in: a personality is a spec-to-spec compiler that
lowers a concrete kernel's objects and API calls (FreeRTOS queues and
``xSemaphoreTake``, µITRON mailboxes and ``slp_tsk``) onto the generic
builder grammar, so one simulation/trace/lint/verification stack serves
every kernel flavor.

Usage is a single spec key::

    spec = {
        "personality": "freertos",
        "config": {"configUSE_PREEMPTION": 1, "configUSE_TIME_SLICING": 0},
        "objects": [{"kind": "queue", "name": "q", "length": 4}],
        "tasks": [...],
    }
    system = build_system(spec)       # lowering happens transparently

The differential-verification test suite runs the bounded model checker
over the same task set under each FreeRTOS scheduling configuration and
checks the preemption/fairness verdict matrix against the published
Spin-model results -- the headline experiment of this subsystem.
"""

from __future__ import annotations

from typing import Dict

from ..errors import BuildError
from .base import Lowering, Personality
from .freertos import FreeRTOSPersonality
from .uitron import UITRONPersonality

#: Registered personalities by spec name.
PERSONALITIES: Dict[str, Personality] = {
    personality.name: personality
    for personality in (FreeRTOSPersonality(), UITRONPersonality())
}


def get_personality(name: str) -> Personality:
    """Look up a registered personality by name."""
    try:
        return PERSONALITIES[name]
    except KeyError:
        raise BuildError(
            f"unknown personality {name!r}; pick one of "
            f"{sorted(PERSONALITIES)}"
        ) from None


def lower_spec(spec: Dict) -> Lowering:
    """Lower a personality spec into the generic builder format."""
    name = spec.get("personality")
    if not isinstance(name, str):
        raise BuildError(
            f"spec key 'personality' must be a personality name, "
            f"got {name!r}"
        )
    return get_personality(name).lower(spec)


__all__ = [
    "Lowering",
    "Personality",
    "PERSONALITIES",
    "FreeRTOSPersonality",
    "UITRONPersonality",
    "get_personality",
    "lower_spec",
]
