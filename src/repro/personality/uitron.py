"""µITRON personality: ITRON service calls on the generic model.

µITRON (the dominant Japanese embedded kernel standard) differs from
FreeRTOS in two interesting ways the lowering must absorb:

* **Priorities are inverted**: ITRON priority 1 is the most urgent.
  Task priorities are negated onto the generic convention (larger =
  more urgent), so ITRON priority 1 becomes generic -1, priority 5
  becomes -5, preserving the ordering.
* **Task sleep/wakeup is counted**: ``wup_tsk`` on a task that is not
  sleeping queues the wakeup (TA_WUPCNT semantics); a later ``slp_tsk``
  returns immediately.  A per-task counter event ``{task}.wup``
  captures exactly that.

Mapping table (full version in ``docs/personalities.md``):

================================  ======================================
ITRON object / service call       generic lowering
================================  ======================================
semaphore                         counter event (max_count, initial)
eventflag                         flags relation (TA_CLR -> clear_on_wake)
mailbox                           queue relation (unbounded by default)
``dly_tsk``                       ``delay``
``slp_tsk`` / ``tslp_tsk``        ``wait`` on own ``{task}.wup`` event
``wup_tsk`` / ``iwup_tsk``        ``signal`` on the target's wup event
``wai_sem`` / ``twai_sem``        ``wait`` (+ timeout)
``sig_sem`` / ``isig_sem``        ``signal``
``snd_mbx`` / ``tsnd_mbx``        ``write`` (+ timeout)
``rcv_mbx`` / ``trcv_mbx``        ``read`` (+ timeout)
``set_flg`` / ``iset_flg``        ``set_flag``
``clr_flg``                       ``clr_flag``
``wai_flg`` / ``twai_flg``        ``wait_flag`` (TWF_ANDW / TWF_ORW)
``execute`` / ``loop``            pass through unchanged
================================  ======================================

The scheduler is the standard's fixed-priority preemptive dispatcher
(there is no configuration matrix; the ``tick`` only feeds overheads).
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from ..errors import BuildError
from .base import Lowering, Personality, check_keys, entry_name, \
    parse_timeout_spec

_TOP_KEYS = ("name", "personality", "config", "objects", "tasks",
             "lint_suppress")
_CONFIG_KEYS = (
    "engine", "processor", "scheduling_duration",
    "context_load_duration", "context_save_duration",
)
_OBJECT_KEYS = {
    "semaphore": ("kind", "name", "max_count", "initial"),
    "eventflag": ("kind", "name", "initial", "clear_on_wake"),
    "mailbox": ("kind", "name", "capacity"),
}
_TASK_KEYS = (
    "name", "priority", "script", "isr", "start_time", "wcet", "period",
    "deadline", "jitter", "max_blocking", "affinity", "lint_suppress",
)
_TASK_PASSTHROUGH = ("start_time", "wcet", "period", "deadline",
                     "jitter", "max_blocking", "affinity", "lint_suppress")

#: Service calls that may block the caller (RTS170 audits these inside
#: ISR tasks; ITRON only allows the i-prefixed non-blocking variants).
BLOCKING_OPS = frozenset(
    ("dly_tsk", "slp_tsk", "tslp_tsk", "wai_sem", "twai_sem",
     "snd_mbx", "tsnd_mbx", "rcv_mbx", "trcv_mbx", "wai_flg", "twai_flg")
)

_WAIT_MODES = {"TWF_ANDW": "and", "TWF_ORW": "or", "and": "and",
               "or": "or"}


class UITRONPersonality(Personality):
    """Lower a µITRON-flavored spec onto the generic model."""

    name = "uitron"
    description = (
        "uITRON tasks, counted wakeups, semaphores, AND/OR eventflags "
        "and mailboxes under fixed-priority preemptive dispatch"
    )
    api_ops = (
        "dly_tsk", "slp_tsk", "tslp_tsk", "wup_tsk", "iwup_tsk",
        "wai_sem", "twai_sem", "sig_sem", "isig_sem",
        "snd_mbx", "tsnd_mbx", "rcv_mbx", "trcv_mbx",
        "set_flg", "iset_flg", "clr_flg", "wai_flg", "twai_flg",
        "execute", "loop",
    )
    object_kinds = tuple(_OBJECT_KEYS)

    # ------------------------------------------------------------------
    def lower(self, spec: Dict) -> Lowering:
        check_keys("uitron spec", spec, _TOP_KEYS)
        config = dict(spec.get("config") or {})
        check_keys("uitron config", config, _CONFIG_KEYS)
        config.setdefault("engine", "procedural")
        config.setdefault("processor", "cpu0")
        kinds, relations = self._objects(spec.get("objects") or [])
        tasks = spec.get("tasks") or []
        if not isinstance(tasks, list):
            raise BuildError("uitron spec: tasks must be a list")
        task_names = [
            entry_name("uitron task", t) for t in tasks
            if isinstance(t, dict)
        ]
        wakeups: Set[str] = set()
        functions: List[Dict] = []
        api_ops: Dict[str, List] = {}
        for entry in tasks:
            if not isinstance(entry, dict):
                raise BuildError(
                    f"uitron spec: each task is a dict, got {entry!r}"
                )
            fn = self._task(entry, config, kinds, set(task_names), wakeups)
            api_ops[fn["name"]] = entry.get("script") or []
            functions.append(fn)
        for task in sorted(wakeups):
            if task not in task_names:
                raise BuildError(
                    f"uitron spec: wakeup target {task!r} is not a task; "
                    f"tasks: {sorted(task_names)}"
                )
            # TA_WUPCNT: pending wakeups accumulate in the counter.
            relations.append({
                "kind": "event", "name": f"{task}.wup",
                "policy": "counter",
            })
        generic = {
            "name": spec.get("name", "uitron"),
            "relations": relations,
            "processors": [self._processor(config)],
            "functions": functions,
        }
        if "lint_suppress" in spec:
            generic["lint_suppress"] = spec["lint_suppress"]
        return Lowering(self.name, generic, api_ops, config)

    # ------------------------------------------------------------------
    @staticmethod
    def _processor(config: Dict) -> Dict:
        cpu = {
            "name": config["processor"],
            "engine": config["engine"],
            "policy": "priority_preemptive",
        }
        for key in ("scheduling_duration", "context_load_duration",
                    "context_save_duration"):
            if key in config:
                cpu[key] = config[key]
        return cpu

    def _objects(self, objects: List) -> Tuple[Dict[str, str], List[Dict]]:
        kinds: Dict[str, str] = {}
        relations: List[Dict] = []
        for entry in objects:
            if not isinstance(entry, dict):
                raise BuildError(
                    f"uitron spec: each object is a dict, got {entry!r}"
                )
            kind = entry.get("kind")
            if kind not in _OBJECT_KEYS:
                raise BuildError(
                    f"uitron object: unknown kind {kind!r}; "
                    f"pick one of {sorted(_OBJECT_KEYS)}"
                )
            where = f"uitron {kind}"
            check_keys(where, entry, _OBJECT_KEYS[kind])
            name = entry_name(where, entry)
            if name in kinds:
                raise BuildError(
                    f"uitron spec: duplicate object name {name!r}"
                )
            kinds[name] = kind
            relations.append(self._object_relation(kind, name, entry))
        return kinds, relations

    @staticmethod
    def _object_relation(kind: str, name: str, entry: Dict) -> Dict:
        if kind == "semaphore":
            max_count = entry.get("max_count", 1)
            if not isinstance(max_count, int) or max_count < 1:
                raise BuildError(
                    f"uitron semaphore {name!r}: max_count must be a "
                    f"positive int, got {max_count!r}"
                )
            initial = entry.get("initial", max_count)
            if not isinstance(initial, int) or not 0 <= initial <= max_count:
                raise BuildError(
                    f"uitron semaphore {name!r}: initial must be in "
                    f"0..{max_count}, got {initial!r}"
                )
            return {"kind": "event", "name": name, "policy": "counter",
                    "max_count": max_count, "initial": initial}
        if kind == "eventflag":
            relation = {"kind": "flags", "name": name}
            if "initial" in entry:
                relation["initial"] = entry["initial"]
            if entry.get("clear_on_wake"):
                relation["clear_on_wake"] = True
            return relation
        # mailbox: ITRON mailboxes are linked lists -> unbounded queue.
        return {"kind": "queue", "name": name,
                "capacity": entry.get("capacity")}

    # ------------------------------------------------------------------
    def _task(self, entry: Dict, config: Dict, kinds: Dict[str, str],
              task_names: Set[str], wakeups: Set[str]) -> Dict:
        name = entry_name("uitron task", entry)
        where = f"uitron task {name!r}"
        check_keys(where, entry, _TASK_KEYS)
        isr = bool(entry.get("isr", False))
        script = entry.get("script")
        if not isinstance(script, list):
            raise BuildError(f"{where}: needs a script (list of ops)")
        priority = entry.get("priority", 1)
        if not isinstance(priority, int) or priority < 1:
            raise BuildError(
                f"{where}: ITRON priorities start at 1 (most urgent), "
                f"got {priority!r}"
            )
        ctx = _LowerContext(name, kinds, task_names, wakeups)
        fn: Dict = {
            "name": name,
            "script": ctx.lower_ops(script, where),
            # Negation maps "1 is most urgent" onto "larger is more
            # urgent" while keeping distinct levels distinct.
            "priority": -priority,
        }
        if not isr:
            fn["processor"] = config["processor"]
        for key in _TASK_PASSTHROUGH:
            if key in entry:
                fn[key] = entry[key]
        return fn


class _LowerContext:
    """Per-task lowering state (object kinds, wakeup-event discovery)."""

    def __init__(self, task: str, kinds: Dict[str, str],
                 task_names: Set[str], wakeups: Set[str]) -> None:
        self.task = task
        self.kinds = kinds
        self.task_names = task_names
        self.wakeups = wakeups

    def lower_ops(self, ops: List, where: str) -> List:
        lowered = []
        for index, op in enumerate(ops):
            if not isinstance(op, (list, tuple)) or not op or \
                    not isinstance(op[0], str):
                raise BuildError(
                    f"{where}: op #{index} must be [name, args...], "
                    f"got {op!r}"
                )
            lowered.append(self.lower_op(list(op), f"{where} op #{index}"))
        return lowered

    def lower_op(self, op: List, where: str) -> List:
        name, args = op[0], op[1:]
        method = _OP_HANDLERS.get(name)
        if method is None:
            raise BuildError(
                f"{where}: unknown uITRON op {name!r}; accepted ops: "
                f"{sorted(_OP_HANDLERS)}"
            )
        return method(self, args, where)

    # -- helpers -------------------------------------------------------
    def _arity(self, args: List, where: str, low: int, high: int,
               usage: str) -> None:
        if not low <= len(args) <= high:
            raise BuildError(f"{where}: usage {usage}")

    def _object(self, ref: Any, where: str,
                accepted: Tuple[str, ...]) -> str:
        kind = self.kinds.get(ref)
        if kind is None:
            raise BuildError(
                f"{where}: unknown object {ref!r}; objects: "
                f"{sorted(self.kinds)}"
            )
        if kind not in accepted:
            raise BuildError(
                f"{where}: {ref!r} is a {kind}, expected one of "
                f"{sorted(accepted)}"
            )
        return kind

    @staticmethod
    def _with_timeout(base: List, timeout: Any) -> List:
        timeout = parse_timeout_spec(timeout)
        if timeout is None:
            return base
        return base + [timeout]

    # -- op lowerings --------------------------------------------------
    def _dly_tsk(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[dly_tsk, duration]")
        return ["delay", args[0]]

    def _slp_tsk(self, args: List, where: str) -> List:
        self._arity(args, where, 0, 0, "[slp_tsk]")
        self.wakeups.add(self.task)
        return ["wait", f"{self.task}.wup"]

    def _tslp_tsk(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[tslp_tsk, tmo]")
        self.wakeups.add(self.task)
        return self._with_timeout(["wait", f"{self.task}.wup"], args[0])

    def _wup_tsk(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[wup_tsk, task]")
        self.wakeups.add(args[0])
        return ["signal", f"{args[0]}.wup"]

    def _wai_sem(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[wai_sem, semaphore]")
        self._object(args[0], where, ("semaphore",))
        return ["wait", args[0]]

    def _twai_sem(self, args: List, where: str) -> List:
        self._arity(args, where, 2, 2, "[twai_sem, semaphore, tmo]")
        self._object(args[0], where, ("semaphore",))
        return self._with_timeout(["wait", args[0]], args[1])

    def _sig_sem(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[sig_sem, semaphore]")
        self._object(args[0], where, ("semaphore",))
        return ["signal", args[0]]

    def _snd_mbx(self, args: List, where: str) -> List:
        self._arity(args, where, 2, 2, "[snd_mbx, mailbox, value]")
        self._object(args[0], where, ("mailbox",))
        return ["write", args[0], args[1]]

    def _tsnd_mbx(self, args: List, where: str) -> List:
        self._arity(args, where, 3, 3, "[tsnd_mbx, mailbox, value, tmo]")
        self._object(args[0], where, ("mailbox",))
        return self._with_timeout(["write", args[0], args[1]], args[2])

    def _rcv_mbx(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[rcv_mbx, mailbox]")
        self._object(args[0], where, ("mailbox",))
        return ["read", args[0]]

    def _trcv_mbx(self, args: List, where: str) -> List:
        self._arity(args, where, 2, 2, "[trcv_mbx, mailbox, tmo]")
        self._object(args[0], where, ("mailbox",))
        return self._with_timeout(["read", args[0]], args[1])

    def _set_flg(self, args: List, where: str) -> List:
        self._arity(args, where, 2, 2, "[set_flg, eventflag, bits]")
        self._object(args[0], where, ("eventflag",))
        return ["set_flag", args[0], args[1]]

    def _clr_flg(self, args: List, where: str) -> List:
        self._arity(args, where, 2, 2, "[clr_flg, eventflag, mask]")
        self._object(args[0], where, ("eventflag",))
        return ["clr_flag", args[0], args[1]]

    def _wai_flg(self, args: List, where: str) -> List:
        self._arity(args, where, 3, 4,
                    "[wai_flg, eventflag, bits, TWF_ANDW|TWF_ORW, tmo?]")
        self._object(args[0], where, ("eventflag",))
        mode = _WAIT_MODES.get(args[2])
        if mode is None:
            raise BuildError(
                f"{where}: wait mode must be TWF_ANDW or TWF_ORW, "
                f"got {args[2]!r}"
            )
        base = ["wait_flag", args[0], args[1], mode]
        timeout = parse_timeout_spec(args[3]) if len(args) > 3 else None
        if timeout is None:
            return base
        return base + [timeout]

    def _execute(self, args: List, where: str) -> List:
        self._arity(args, where, 1, 1, "[execute, duration]")
        return ["execute", args[0]]

    def _loop(self, args: List, where: str) -> List:
        self._arity(args, where, 2, 2, "[loop, n_or_null, body]")
        if not isinstance(args[1], list):
            raise BuildError(f"{where}: loop body must be a list of ops")
        return ["loop", args[0], self.lower_ops(args[1], where)]


_OP_HANDLERS = {
    "dly_tsk": _LowerContext._dly_tsk,
    "slp_tsk": _LowerContext._slp_tsk,
    "tslp_tsk": _LowerContext._tslp_tsk,
    "wup_tsk": _LowerContext._wup_tsk,
    "iwup_tsk": _LowerContext._wup_tsk,
    "wai_sem": _LowerContext._wai_sem,
    "twai_sem": _LowerContext._twai_sem,
    "sig_sem": _LowerContext._sig_sem,
    "isig_sem": _LowerContext._sig_sem,
    "snd_mbx": _LowerContext._snd_mbx,
    "tsnd_mbx": _LowerContext._tsnd_mbx,
    "rcv_mbx": _LowerContext._rcv_mbx,
    "trcv_mbx": _LowerContext._trcv_mbx,
    "set_flg": _LowerContext._set_flg,
    "iset_flg": _LowerContext._set_flg,
    "clr_flg": _LowerContext._clr_flg,
    "wai_flg": _LowerContext._wai_flg,
    "twai_flg": _LowerContext._wai_flg,
    "execute": _LowerContext._execute,
    "loop": _LowerContext._loop,
}
