"""Analytical response-time analysis (RTA) for fixed-priority task sets.

The classical recurrence (Joseph & Pandya / Audsley) for periodic tasks
under fixed-priority preemptive scheduling::

    R_i = C_i + B_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j

extended with the RTOS overhead model: every preemption costs two
context switches, so each interfering job adds ``2 * (save + load) +
sched`` on top of its compute time (a standard overhead-aware RTA).

This gives the library an independent analytical cross-check: the
simulated worst-case response times of a synchronous periodic task set
must match the RTA fixed point (tests assert it), and the RTA becomes a
baseline for the benchmark sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ReproError
from ..kernel.time import Time


@dataclass(frozen=True)
class PeriodicTask:
    """An analytical periodic task: compute ``wcet`` every ``period``."""

    name: str
    wcet: Time
    period: Time
    priority: int
    deadline: Optional[Time] = None  # defaults to the period
    blocking: Time = 0  # worst-case lower-priority blocking

    @property
    def effective_deadline(self) -> Time:
        return self.period if self.deadline is None else self.deadline

    @property
    def utilization(self) -> float:
        return self.wcet / self.period


def total_utilization(tasks: List[PeriodicTask]) -> float:
    """Plain processor utilization of the set."""
    return sum(task.utilization for task in tasks)


def liu_layland_bound(n: int) -> float:
    """The Liu & Layland RM schedulability bound ``n (2^{1/n} - 1)``."""
    if n <= 0:
        raise ReproError("need at least one task")
    return n * (2 ** (1 / n) - 1)


def rate_monotonic_priorities(tasks: List[PeriodicTask]) -> List[PeriodicTask]:
    """Reassign priorities rate-monotonically (shorter period = higher)."""
    ordered = sorted(tasks, key=lambda t: (t.period, t.name))
    return [
        PeriodicTask(
            name=t.name,
            wcet=t.wcet,
            period=t.period,
            priority=len(ordered) - idx,
            deadline=t.deadline,
            blocking=t.blocking,
        )
        for idx, t in enumerate(ordered)
    ]


def response_time_analysis(
    tasks: List[PeriodicTask],
    *,
    context_switch: Time = 0,
    scheduling: Time = 0,
    max_iterations: int = 10_000,
) -> Dict[str, Optional[Time]]:
    """Worst-case response time per task, or ``None`` when unbounded.

    ``context_switch`` is the save+load cost of one switch; every job of
    a higher-priority task inflicts one preemption (two switches) plus a
    scheduling pass on the task under analysis, and the task's own
    release costs one switch + scheduling pass.
    """
    results: Dict[str, Optional[Time]] = {}
    for task in tasks:
        higher = [t for t in tasks if t.priority > task.priority]
        own_cost = task.wcet + task.blocking + context_switch + scheduling
        response = own_cost
        for _ in range(max_iterations):
            interference = 0
            for other in higher:
                jobs = math.ceil(response / other.period)
                interference += jobs * (
                    other.wcet + 2 * context_switch + scheduling
                )
            new_response = own_cost + interference
            if new_response == response:
                break
            if new_response > task.effective_deadline * 1000:
                response = None  # hopelessly divergent
                break
            response = new_response
        else:
            response = None
        results[task.name] = response
    return results


def is_schedulable(
    tasks: List[PeriodicTask], **kwargs
) -> bool:
    """Whether every task meets its deadline per the RTA."""
    results = response_time_analysis(tasks, **kwargs)
    for task in tasks:
        response = results[task.name]
        if response is None or response > task.effective_deadline:
            return False
    return True


def breakdown_utilization(
    base_tasks: List[PeriodicTask],
    *,
    context_switch: Time = 0,
    scheduling: Time = 0,
    tolerance: float = 0.005,
) -> float:
    """Binary-search the utilization scale at which the set stops being
    schedulable (a standard metric for overhead-sensitivity sweeps)."""

    def scaled(factor: float) -> List[PeriodicTask]:
        return [
            PeriodicTask(
                name=t.name,
                wcet=max(1, round(t.wcet * factor)),
                period=t.period,
                priority=t.priority,
                deadline=t.deadline,
                blocking=t.blocking,
            )
            for t in base_tasks
        ]

    def feasible(factor: float) -> bool:
        return is_schedulable(
            scaled(factor), context_switch=context_switch,
            scheduling=scheduling,
        )

    # grow the bracket until it contains the breakdown point (a set with
    # low base utilization may be schedulable well beyond 2x)
    low, high = 0.0, 2.0
    while feasible(high):
        low, high = high, high * 2
        if high > 1024:  # pragma: no cover - degenerate zero-load sets
            return high * total_utilization(base_tasks)
    while high - low > tolerance:
        mid = (low + high) / 2
        if feasible(mid):
            low = mid
        else:
            high = mid
    return low * total_utilization(base_tasks)
