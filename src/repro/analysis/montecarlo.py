"""Monte-Carlo campaigns over stochastic simulations.

One simulation answers "what happens for this seed"; a campaign answers
"what is the latency distribution / the deadline-miss probability".
:func:`monte_carlo` runs a seeded experiment N times and aggregates every
numeric metric into a :class:`MetricSample` with percentile summaries.

Example::

    def experiment(seed):
        soc = Mpeg2Soc(frames=8, seed=seed)
        soc.run()
        return {"e2e": max(soc.latencies("end_to_end"))}

    campaign = monte_carlo(experiment, runs=50)
    campaign["e2e"].p(95)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..errors import ReproError
from .measurements import latency_summary, percentile


@dataclass
class MetricSample:
    """All observed values of one metric across a campaign."""

    name: str
    values: List = field(default_factory=list)

    def p(self, q: float):
        """The q-th percentile of the metric."""
        return percentile(self.values, q)

    def mean(self) -> float:
        if not self.values:
            raise ReproError(f"metric {self.name!r} has no samples")
        return sum(self.values) / len(self.values)

    def minimum(self):
        return min(self.values)

    def maximum(self):
        return max(self.values)

    def probability(self, predicate: Callable) -> float:
        """Fraction of runs satisfying ``predicate(value)``."""
        if not self.values:
            raise ReproError(f"metric {self.name!r} has no samples")
        hits = sum(1 for value in self.values if predicate(value))
        return hits / len(self.values)

    def summary(self) -> dict:
        return latency_summary(self.values)


class Campaign(dict):
    """Mapping metric name -> :class:`MetricSample`, plus run count.

    ``failures`` and ``stats`` are populated when the campaign executed
    through the :mod:`repro.campaign` runner (``workers``/``cache``):
    ``failures`` holds structured ``RunFailure`` records (only non-empty
    with ``strict=False``), ``stats`` the runner's execution summary
    (wall time, cache hits/misses, throughput).
    """

    def __init__(self) -> None:
        super().__init__()
        self.runs = 0
        self.failures: List = []
        self.stats: Dict = {}

    def record(self, metrics: Dict) -> None:
        self.runs += 1
        for name, value in metrics.items():
            self.setdefault(name, MetricSample(name)).values.append(value)


def monte_carlo(
    experiment: Callable[[int], Dict],
    *,
    runs: int,
    base_seed: int = 0,
    on_run: Callable[[int, Dict], None] = None,
    workers: int = 1,
    cache=None,
    timeout: float = None,
    retries: int = 0,
    progress=False,
    strict: bool = True,
) -> Campaign:
    """Run ``experiment(seed)`` for ``runs`` distinct seeds.

    ``experiment`` must build, run and measure one simulation and return
    a dict of numeric metrics.  Seeds are ``base_seed .. base_seed +
    runs - 1``, so campaigns are exactly reproducible and trivially
    shardable.

    With ``workers > 1`` (or any of ``cache``/``timeout``/``retries``/
    ``progress`` set) execution delegates to the
    :class:`repro.campaign.Runner`: runs are sharded over a process
    pool, served from the content-addressed result cache when enabled,
    and retried/timed out individually.  Aggregation always happens in
    seed order, so the returned :class:`Campaign` is identical to the
    serial one.  Parallel execution requires ``experiment`` to be
    picklable (a module-level function); ``strict=False`` collects
    failed runs on ``campaign.failures`` instead of raising.
    """
    if runs < 1:
        raise ReproError(f"need at least one run, got {runs}")
    use_runner = (
        workers != 1 or cache is not None or timeout is not None
        or retries != 0 or progress
    )
    if not use_runner:
        started = time.perf_counter()
        campaign = Campaign()
        for offset in range(runs):
            seed = base_seed + offset
            metrics = experiment(seed)
            campaign.record(metrics)
            if on_run is not None:
                on_run(seed, metrics)
        wall = time.perf_counter() - started
        campaign.stats = {
            "spec": getattr(experiment, "__name__", "experiment"),
            "runs": runs, "ok": runs, "failed": 0, "cached": 0,
            "cache_hits": 0, "cache_misses": 0, "workers": 1,
            "wall_s": round(wall, 6),
            "runs_per_s": round(runs / wall, 3) if wall > 0 else None,
        }
        return campaign

    from ..campaign import Runner, spec_from_experiment

    spec = spec_from_experiment(experiment, base_seed=base_seed)
    requests = [spec.request(index, seeded=True) for index in range(runs)]
    runner = Runner(workers=workers, cache=cache, timeout=timeout,
                    retries=retries, progress=progress)
    outcome = runner.execute(spec, requests)
    if strict:
        outcome.raise_on_failure()
    campaign = Campaign()
    for result in outcome.results:
        campaign.record(result.metrics)
        if on_run is not None:
            on_run(result.params["seed"], result.metrics)
    campaign.failures = outcome.failures
    campaign.stats = outcome.summary()
    return campaign


def format_campaign(campaign: Campaign) -> str:
    """Fixed-width summary table of a campaign."""
    lines = [f"{campaign.runs} runs"]
    name_w = max((len(name) for name in campaign), default=4)
    lines.append(
        f"{'metric':{name_w}} {'min':>12} {'mean':>14} {'p95':>12} "
        f"{'max':>12}"
    )
    for name, sample in campaign.items():
        lines.append(
            f"{name:{name_w}} {sample.minimum():>12} "
            f"{sample.mean():>14.1f} {sample.p(95):>12} "
            f"{sample.maximum():>12}"
        )
    return "\n".join(lines)
