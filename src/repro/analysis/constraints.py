"""Automatic verification of timing constraints.

The paper's stated future work: "automatic verification of timing
constraints by simulation after setting these constraints in the initial
system model."  This module implements it: declare constraints next to
the model, run the simulation with a recorder attached, then ``verify``
the whole set against the trace.  ``hard`` constraints raise
:class:`~repro.errors.ConstraintViolation`; soft ones are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConstraintViolation
from ..kernel.time import Time, format_time
from ..trace.recorder import TraceRecorder
from .measurements import reaction_latencies, response_times, running_starts


@dataclass(frozen=True)
class Violation:
    """One constraint violation found in a trace."""

    constraint: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.constraint}: {self.detail}"


class Constraint:
    """Base class: evaluate against a recorded trace."""

    def __init__(self, name: str, hard: bool = False) -> None:
        self.name = name
        self.hard = hard

    def check(self, recorder: TraceRecorder) -> List[Violation]:
        """Return the violations this constraint finds in the trace."""
        raise NotImplementedError


class DeadlineConstraint(Constraint):
    """Every activation of ``task`` must complete within ``deadline``."""

    def __init__(self, task: str, deadline: Time, *, hard: bool = False,
                 name: Optional[str] = None) -> None:
        super().__init__(name or f"deadline({task})", hard)
        self.task = task
        self.deadline = deadline

    def check(self, recorder: TraceRecorder) -> List[Violation]:
        violations = []
        for index, response in enumerate(response_times(recorder, self.task)):
            if response > self.deadline:
                violations.append(
                    Violation(
                        self.name,
                        f"activation {index}: response "
                        f"{format_time(response)} > deadline "
                        f"{format_time(self.deadline)}",
                    )
                )
        return violations


class ReactionConstraint(Constraint):
    """``task`` must start running within ``latency`` of each ``source``
    stimulus (the paper's measurement (1) as a requirement)."""

    def __init__(self, source: str, task: str, latency: Time, *,
                 hard: bool = False, name: Optional[str] = None) -> None:
        super().__init__(name or f"reaction({source}->{task})", hard)
        self.source = source
        self.task = task
        self.latency = latency

    def check(self, recorder: TraceRecorder) -> List[Violation]:
        violations = []
        for index, latency in enumerate(
            reaction_latencies(recorder, self.source, self.task)
        ):
            if latency > self.latency:
                violations.append(
                    Violation(
                        self.name,
                        f"stimulus {index}: reaction {format_time(latency)} "
                        f"> bound {format_time(self.latency)}",
                    )
                )
        return violations


class JitterConstraint(Constraint):
    """Start-time jitter of ``task`` must stay within ``max_jitter``.

    Jitter is measured as the peak deviation of consecutive running-start
    spacings from their median spacing.
    """

    def __init__(self, task: str, max_jitter: Time, *, hard: bool = False,
                 name: Optional[str] = None) -> None:
        super().__init__(name or f"jitter({task})", hard)
        self.task = task
        self.max_jitter = max_jitter

    def check(self, recorder: TraceRecorder) -> List[Violation]:
        starts = running_starts(recorder, self.task)
        if len(starts) < 3:
            return []
        gaps = sorted(b - a for a, b in zip(starts, starts[1:]))
        median = gaps[len(gaps) // 2]
        violations = []
        for index, (a, b) in enumerate(zip(starts, starts[1:])):
            deviation = abs((b - a) - median)
            if deviation > self.max_jitter:
                violations.append(
                    Violation(
                        self.name,
                        f"gap {index}: jitter {format_time(deviation)} > "
                        f"bound {format_time(self.max_jitter)}",
                    )
                )
        return violations


class PrecedenceConstraint(Constraint):
    """Every stimulus on ``source`` must be followed by an access on
    ``target`` within ``latency`` (pipeline freshness: "every sensor
    write reaches the actuator within T")."""

    def __init__(self, source: str, target: str, latency: Time, *,
                 hard: bool = False, name: Optional[str] = None) -> None:
        super().__init__(name or f"precedence({source}->{target})", hard)
        self.source = source
        self.target = target
        self.latency = latency

    def check(self, recorder: TraceRecorder) -> List[Violation]:
        from ..trace.records import AccessKind, AccessRecord

        producing = (AccessKind.WRITE, AccessKind.SIGNAL)
        sources = [r.time for r in recorder.of_type(AccessRecord)
                   if r.relation == self.source and r.kind in producing]
        targets = [r.time for r in recorder.of_type(AccessRecord)
                   if r.relation == self.target and r.kind in producing]
        violations = []
        target_index = 0
        end_of_trace = max((r.time for r in recorder.records), default=0)
        for index, stimulus in enumerate(sources):
            while target_index < len(targets) and targets[target_index] < stimulus:
                target_index += 1
            if target_index >= len(targets):
                # no follower: only a violation if the bound expired
                # within the recorded window
                if stimulus + self.latency <= end_of_trace:
                    violations.append(Violation(
                        self.name,
                        f"stimulus {index} at {format_time(stimulus)} "
                        "never followed",
                    ))
                continue
            gap = targets[target_index] - stimulus
            if gap > self.latency:
                violations.append(Violation(
                    self.name,
                    f"stimulus {index}: follower after {format_time(gap)} "
                    f"> bound {format_time(self.latency)}",
                ))
            target_index += 1
        return violations


class ThroughputConstraint(Constraint):
    """At least ``min_count`` accesses on ``relation`` per ``window``.

    Windows tile the trace from t=0; the trailing partial window is not
    checked (it has not had its full duration yet).
    """

    def __init__(self, relation: str, min_count: int, window: Time, *,
                 hard: bool = False, name: Optional[str] = None) -> None:
        super().__init__(name or f"throughput({relation})", hard)
        self.relation = relation
        self.min_count = min_count
        self.window = window

    def check(self, recorder: TraceRecorder) -> List[Violation]:
        from ..trace.records import AccessRecord

        times = [r.time for r in recorder.of_type(AccessRecord)
                 if r.relation == self.relation]
        end = max((r.time for r in recorder.records), default=0)
        violations = []
        window_index = 0
        while (window_index + 1) * self.window <= end:
            start = window_index * self.window
            stop = start + self.window
            count = sum(1 for t in times if start <= t < stop)
            if count < self.min_count:
                violations.append(Violation(
                    self.name,
                    f"window [{format_time(start)}, {format_time(stop)}): "
                    f"{count} < {self.min_count}",
                ))
            window_index += 1
        return violations


@dataclass
class ConstraintSet:
    """A named collection of constraints verified together."""

    constraints: List[Constraint] = field(default_factory=list)

    def add(self, constraint: Constraint) -> Constraint:
        self.constraints.append(constraint)
        return constraint

    def verify(self, recorder: TraceRecorder) -> List[Violation]:
        """Check every constraint; raise if a *hard* one is violated."""
        all_violations: List[Violation] = []
        hard_violations: List[Violation] = []
        for constraint in self.constraints:
            found = constraint.check(recorder)
            all_violations.extend(found)
            if constraint.hard and found:
                hard_violations.extend(found)
        if hard_violations:
            summary = "; ".join(str(v) for v in hard_violations[:5])
            raise ConstraintViolation(
                f"{len(hard_violations)} hard timing violation(s): {summary}"
            )
        return all_violations

    def report(self, recorder: TraceRecorder) -> str:
        """Human-readable pass/fail summary (never raises)."""
        lines = []
        for constraint in self.constraints:
            found = constraint.check(recorder)
            status = "PASS" if not found else f"FAIL ({len(found)})"
            lines.append(f"{constraint.name:40s} {status}")
            for violation in found[:3]:
                lines.append(f"    {violation.detail}")
        return "\n".join(lines)
