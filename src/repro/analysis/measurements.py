"""Timing measurements on recorded traces.

Everything the paper measures *by hand* on the TimeLine chart --
"the time spent between an external event and the system's reaction",
overhead windows, blocking intervals -- is computed here
programmatically so tests and benchmarks can assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..kernel.time import Time
from ..trace.records import (
    AccessKind,
    AccessRecord,
    InterruptRecord,
    OverheadRecord,
    StateRecord,
    TaskState,
)
from ..trace.recorder import TraceRecorder


@dataclass(frozen=True)
class Interval:
    """A measured [start, end) interval."""

    start: Time
    end: Time

    @property
    def duration(self) -> Time:
        return self.end - self.start


def stimulus_times(recorder: TraceRecorder, source: str) -> List[Time]:
    """Times at which ``source`` fired.

    ``source`` may be an interrupt name or a relation name (its SIGNAL /
    WRITE accesses count as stimuli).
    """
    times = [r.time for r in recorder.of_type(InterruptRecord)
             if r.source == source]
    times += [
        r.time
        for r in recorder.of_type(AccessRecord)
        if r.relation == source and r.kind in (AccessKind.SIGNAL, AccessKind.WRITE)
    ]
    return sorted(times)


def running_starts(recorder: TraceRecorder, task: str) -> List[Time]:
    """Times at which ``task`` entered the Running state."""
    return [
        r.time
        for r in recorder.of_type(StateRecord)
        if r.task == task and r.state is TaskState.RUNNING
    ]


def reaction_latencies(
    recorder: TraceRecorder, source: str, task: str
) -> List[Time]:
    """Per-stimulus latency from ``source`` firing to ``task`` running.

    This is the paper's measurement (1): e.g. ``Clk`` fires at 100us,
    Function_1 starts running at 115us, latency 15us.  Stimuli that were
    never followed by a task start are skipped.
    """
    stimuli = stimulus_times(recorder, source)
    starts = running_starts(recorder, task)
    latencies = []
    start_index = 0
    for stimulus in stimuli:
        while start_index < len(starts) and starts[start_index] < stimulus:
            start_index += 1
        if start_index == len(starts):
            break
        latencies.append(starts[start_index] - stimulus)
        start_index += 1
    return latencies


def state_intervals(
    recorder: TraceRecorder,
    task: str,
    state: TaskState,
    end_time: Optional[Time] = None,
) -> List[Interval]:
    """All intervals ``task`` spent in ``state``."""
    records = [r for r in recorder.of_type(StateRecord) if r.task == task]
    if end_time is None:
        end_time = max((r.time for r in recorder.records), default=0)
    intervals = []
    for current, nxt in zip(records, records[1:] + [None]):
        if current.state is state:
            end = nxt.time if nxt is not None else end_time
            intervals.append(Interval(current.time, end))
    return intervals


def blocking_intervals(recorder: TraceRecorder, task: str) -> List[Interval]:
    """Intervals ``task`` spent blocked on mutual exclusion (Figure 7)."""
    return state_intervals(recorder, task, TaskState.WAITING_RESOURCE)


def switch_sequences(
    recorder: TraceRecorder, processor: str, gap: Time = 0
) -> List[Tuple[Interval, Tuple[str, ...]]]:
    """Group back-to-back overhead records into switch sequences.

    Returns ``(interval, kinds)`` pairs, e.g. a Figure-6 preemption shows
    up as ``(Interval(100us, 115us), ('context_save', 'scheduling',
    'context_load'))`` -- the (b) pattern; a case-(c) wake is a lone
    ``('scheduling',)``.
    """
    records = sorted(
        recorder.overheads(processor), key=lambda r: (r.time, r.kind.value)
    )
    sequences: List[Tuple[Interval, Tuple[str, ...]]] = []
    current: List[OverheadRecord] = []
    for record in records:
        if current and record.time > current[-1].time + current[-1].duration + gap:
            sequences.append(_close_sequence(current))
            current = []
        current.append(record)
    if current:
        sequences.append(_close_sequence(current))
    return sequences


def _close_sequence(records: List[OverheadRecord]):
    interval = Interval(
        records[0].time, records[-1].time + records[-1].duration
    )
    kinds = tuple(r.kind.value for r in records)
    return interval, kinds


def percentile(values: List[Time], q: float) -> Time:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Implemented locally (no numpy dependency in the core library) and
    exact for the integer femtosecond domain.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return round(ordered[lower] + (ordered[upper] - ordered[lower]) * fraction)


def latency_summary(values: List[Time]) -> dict:
    """min/mean/p50/p95/p99/max of a latency sample (femtoseconds)."""
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "min": min(values),
        "mean": sum(values) // len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": max(values),
    }


def ascii_histogram(values: List[Time], *, bins: int = 10,
                    width: int = 50) -> str:
    """A quick fixed-width histogram of a latency sample.

    Bin edges are uniform over [min, max]; each row shows the bin's
    upper edge, count and a proportional bar.
    """
    from ..kernel.time import format_time

    if not values:
        return "(no samples)"
    low, high = min(values), max(values)
    if low == high:
        return f"{format_time(low)}  |{'#' * width} {len(values)}"
    span = high - low
    counts = [0] * bins
    for value in values:
        index = min((value - low) * bins // span, bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for index, count in enumerate(counts):
        edge = low + span * (index + 1) // bins
        bar = "#" * max(1 if count else 0, count * width // peak)
        lines.append(f"<= {format_time(edge):>12} {count:>6} |{bar}")
    return "\n".join(lines)


def response_times(
    recorder: TraceRecorder, task: str, end_time: Optional[Time] = None
) -> List[Time]:
    """Per-activation response times of ``task``.

    An *activation* is a transition into Ready from Waiting (wakeup); the
    *completion* is the next transition into a Waiting state or
    termination.  The initial creation also counts as an activation.
    """
    records = [r for r in recorder.of_type(StateRecord) if r.task == task]
    responses = []
    activation: Optional[Time] = None
    for record in records:
        if record.state is TaskState.READY and record.reason in (
            "woken", "timer", "created",
        ):
            if activation is None:
                activation = record.time
        elif record.state in (
            TaskState.WAITING,
            TaskState.WAITING_RESOURCE,
            TaskState.TERMINATED,
        ):
            if activation is not None:
                responses.append(record.time - activation)
                activation = None
    return responses
