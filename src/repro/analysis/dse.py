"""A structured design-space exploration driver.

The paper's objective is "to help designers in their design-space
exploration" -- which in practice means running the same model over a
grid of platform parameters and comparing metrics.  This module turns
that loop into a first-class object:

* a :class:`Parameter` grid (policy, overheads, engine, anything),
* a *build* callable turning one configuration into a ready system,
* *metrics* extracted after each run,
* :func:`explore` running the full cross product deterministically, and
* :func:`pareto_front` filtering the non-dominated configurations.

Example::

    space = [
        Parameter("policy", ["priority_preemptive", "fifo"]),
        Parameter("overhead", [0, 5 * US, 50 * US]),
    ]

    def build(config):
        ...return a System ready to run...

    def metrics(config, system):
        return {"latency": ..., "misses": ...}

    results = explore(space, build, metrics, duration=10 * MS)
    best = pareto_front(results, minimize=("latency", "misses"))
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..kernel.time import Time


@dataclass(frozen=True)
class Parameter:
    """One axis of the design space."""

    name: str
    values: Tuple

    def __init__(self, name: str, values: Iterable) -> None:
        values = tuple(values)
        if not values:
            raise ReproError(f"parameter {name!r} has no values")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", values)


@dataclass
class ExplorationResult:
    """One evaluated design point."""

    config: Dict
    metrics: Dict
    simulated_time: Time

    def __getitem__(self, key):
        if key in self.metrics:
            return self.metrics[key]
        return self.config[key]


def configurations(space: Sequence[Parameter]) -> List[Dict]:
    """The full cross product of the space, in deterministic order."""
    names = [p.name for p in space]
    if len(set(names)) != len(names):
        raise ReproError("duplicate parameter names in the space")
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(p.values for p in space))
    ]


def explore(
    space: Sequence[Parameter],
    build: Callable[[Dict], object],
    metrics: Callable[[Dict, object], Dict],
    *,
    duration: Optional[Time] = None,
    on_point: Optional[Callable[[ExplorationResult], None]] = None,
) -> List[ExplorationResult]:
    """Run every configuration; returns one result per design point.

    ``build(config)`` must return a ready
    :class:`~repro.mcse.model.System` (or anything with ``run`` and
    ``now``); ``metrics(config, system)`` extracts the comparison values
    after the run.
    """
    results = []
    for config in configurations(space):
        system = build(dict(config))
        system.run(duration)
        result = ExplorationResult(
            config=dict(config),
            metrics=dict(metrics(dict(config), system)),
            simulated_time=system.now,
        )
        results.append(result)
        if on_point is not None:
            on_point(result)
    return results


def _dominates(a: ExplorationResult, b: ExplorationResult,
               minimize: Sequence[str]) -> bool:
    at_least_one_strict = False
    for key in minimize:
        if a.metrics[key] > b.metrics[key]:
            return False
        if a.metrics[key] < b.metrics[key]:
            at_least_one_strict = True
    return at_least_one_strict


def pareto_front(
    results: Sequence[ExplorationResult],
    *,
    minimize: Sequence[str],
) -> List[ExplorationResult]:
    """The non-dominated subset w.r.t. the ``minimize`` metrics."""
    if not minimize:
        raise ReproError("pareto_front needs at least one metric")
    front = []
    for candidate in results:
        if not any(
            _dominates(other, candidate, minimize)
            for other in results
            if other is not candidate
        ):
            front.append(candidate)
    return front


def tabulate(
    results: Sequence[ExplorationResult],
    *,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render results as a fixed-width text table."""
    if not results:
        return "(no results)"
    if columns is None:
        columns = list(results[0].config) + list(results[0].metrics)
    widths = {
        col: max(len(col), *(len(_cell(r, col)) for r in results))
        for col in columns
    }
    lines = ["  ".join(col.rjust(widths[col]) for col in columns)]
    for result in results:
        lines.append(
            "  ".join(_cell(result, col).rjust(widths[col])
                      for col in columns)
        )
    return "\n".join(lines)


def _cell(result: ExplorationResult, column: str) -> str:
    try:
        value = result[column]
    except KeyError:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
