"""A structured design-space exploration driver.

The paper's objective is "to help designers in their design-space
exploration" -- which in practice means running the same model over a
grid of platform parameters and comparing metrics.  This module turns
that loop into a first-class object:

* a :class:`Parameter` grid (policy, overheads, engine, anything),
* a *build* callable turning one configuration into a ready system,
* *metrics* extracted after each run,
* :func:`explore` running the full cross product deterministically, and
* :func:`pareto_front` filtering the non-dominated configurations.

Example::

    space = [
        Parameter("policy", ["priority_preemptive", "fifo"]),
        Parameter("overhead", [0, 5 * US, 50 * US]),
    ]

    def build(config):
        ...return a System ready to run...

    def metrics(config, system):
        return {"latency": ..., "misses": ...}

    results = explore(space, build, metrics, duration=10 * MS)
    best = pareto_front(results, minimize=("latency", "misses"))
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..kernel.time import Time


@dataclass(frozen=True)
class Parameter:
    """One axis of the design space."""

    name: str
    values: Tuple

    def __init__(self, name: str, values: Iterable) -> None:
        values = tuple(values)
        if not values:
            raise ReproError(f"parameter {name!r} has no values")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", values)


@dataclass
class ExplorationResult:
    """One evaluated design point."""

    config: Dict
    metrics: Dict
    simulated_time: Time

    def __getitem__(self, key):
        if key in self.metrics:
            return self.metrics[key]
        return self.config[key]


def configurations(space: Sequence[Parameter]) -> List[Dict]:
    """The full cross product of the space, in deterministic order."""
    names = [p.name for p in space]
    if len(set(names)) != len(names):
        raise ReproError("duplicate parameter names in the space")
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(p.values for p in space))
    ]


def explore(
    space: Sequence[Parameter],
    build: Callable[[Dict], object],
    metrics: Callable[[Dict, object], Dict],
    *,
    duration: Optional[Time] = None,
    on_point: Optional[Callable[[ExplorationResult], None]] = None,
    workers: int = 1,
    cache=None,
    timeout: Optional[float] = None,
    retries: int = 0,
    progress=False,
    strict: bool = True,
) -> List[ExplorationResult]:
    """Run every configuration; returns one result per design point.

    ``build(config)`` must return a ready
    :class:`~repro.mcse.model.System` (or anything with ``run`` and
    ``now``); ``metrics(config, system)`` extracts the comparison values
    after the run.

    With ``workers > 1`` (or ``cache``/``timeout``/``retries``/
    ``progress`` set) the cross product is dispatched through the
    :class:`repro.campaign.Runner`; results come back in configuration
    order, so the returned list is identical to the serial one.
    Parallel execution requires ``build`` and ``metrics`` to be
    picklable (module-level functions).  ``strict=False`` drops failed
    design points from the returned list instead of raising; use the
    Runner directly when the structured failure records are needed.
    """
    configs = configurations(space)
    use_runner = (
        workers != 1 or cache is not None or timeout is not None
        or retries != 0 or progress
    )
    if not use_runner:
        results = []
        for config in configs:
            system = build(dict(config))
            system.run(duration)
            result = ExplorationResult(
                config=dict(config),
                metrics=dict(metrics(dict(config), system)),
                simulated_time=system.now,
            )
            results.append(result)
            if on_point is not None:
                on_point(result)
        return results

    from ..campaign import Runner, spec_from_design
    from ..campaign.spec import DURATION_KEY, SIM_NOW_KEY, RunRequest

    spec = spec_from_design(build, metrics)
    requests = [
        RunRequest(index=index, params={**config, DURATION_KEY: duration})
        for index, config in enumerate(configs)
    ]
    runner = Runner(workers=workers, cache=cache, timeout=timeout,
                    retries=retries, progress=progress)
    outcome = runner.execute(spec, requests)
    if strict:
        outcome.raise_on_failure()
    results = []
    for run in outcome.results:
        point_metrics = dict(run.metrics)
        simulated_time = point_metrics.pop(SIM_NOW_KEY)
        result = ExplorationResult(
            config=dict(configs[run.index]),
            metrics=point_metrics,
            simulated_time=simulated_time,
        )
        results.append(result)
        if on_point is not None:
            on_point(result)
    return results


def _dominates(a: ExplorationResult, b: ExplorationResult,
               minimize: Sequence[str]) -> bool:
    at_least_one_strict = False
    for key in minimize:
        if a.metrics[key] > b.metrics[key]:
            return False
        if a.metrics[key] < b.metrics[key]:
            at_least_one_strict = True
    return at_least_one_strict


def pareto_front(
    results: Sequence[ExplorationResult],
    *,
    minimize: Sequence[str],
) -> List[ExplorationResult]:
    """The non-dominated subset w.r.t. the ``minimize`` metrics."""
    if not minimize:
        raise ReproError("pareto_front needs at least one metric")
    front = []
    for candidate in results:
        if not any(
            _dominates(other, candidate, minimize)
            for other in results
            if other is not candidate
        ):
            front.append(candidate)
    return front


def tabulate(
    results: Sequence[ExplorationResult],
    *,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render results as a fixed-width text table."""
    if not results:
        return "(no results)"
    if columns is None:
        columns = list(results[0].config) + list(results[0].metrics)
    widths = {
        col: max(len(col), *(len(_cell(r, col)) for r in results))
        for col in columns
    }
    lines = ["  ".join(col.rjust(widths[col]) for col in columns)]
    for result in results:
        lines.append(
            "  ".join(_cell(result, col).rjust(widths[col])
                      for col in columns)
        )
    return "\n".join(lines)


def _cell(result: ExplorationResult, column: str) -> str:
    try:
        value = result[column]
    except KeyError:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
