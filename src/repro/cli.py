"""Command-line interface: run models, print timelines and statistics.

Examples::

    pyrtos-sc run system.json --duration 10ms --timeline --stats
    pyrtos-sc run system.json --svg out.svg --vcd out.vcd
    pyrtos-sc fig6                      # the paper's §5 demo
    pyrtos-sc mpeg2 --frames 24         # the MPEG-2 SoC case study
    pyrtos-sc lint system.json          # static model lint, no simulation
    pyrtos-sc lint fig6 examples/*.py --strict --json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .kernel.time import format_time, parse_time
from .mcse.builder import build_system
from .trace.recorder import TraceRecorder
from .trace.statistics import (
    format_report,
    relation_stats,
    task_stats_from_functions,
)
from .trace.svg import save_svg
from .trace.timeline import TimelineChart
from .trace.vcd import save_vcd


def _emit_json(payload, destination=None) -> str:
    """Canonical JSON emission for every subcommand *and* the gateway.

    One encoding -- ``indent=2``, sorted keys, trailing newline -- so
    CLI output, ``--json`` files and ``repro.serve`` HTTP bodies are
    all byte-stable for identical payloads.  ``destination`` is
    ``None`` (stdout), a path, or a file-like object; the rendered
    text (without the trailing newline) is returned either way.
    """
    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination is None:
        sys.stdout.write(text + "\n")
    elif isinstance(destination, (str, os.PathLike)):
        with open(destination, "w") as handle:
            handle.write(text + "\n")
    else:
        destination.write(text + "\n")
    return text


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeline", action="store_true",
                        help="print an ASCII TimeLine chart")
    parser.add_argument("--width", type=int, default=100,
                        help="TimeLine width in columns")
    parser.add_argument("--stats", action="store_true",
                        help="print the Figure-8 statistics report")
    parser.add_argument("--svg", metavar="PATH",
                        help="write the TimeLine as SVG")
    parser.add_argument("--vcd", metavar="PATH",
                        help="write the trace as VCD")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="write raw trace records as JSON lines")
    parser.add_argument("--html", metavar="PATH",
                        help="write a self-contained HTML report")


def _emit_outputs(args, system, recorder) -> None:
    needs_chart = args.timeline or args.svg
    chart = TimelineChart.from_recorder(recorder) if needs_chart else None
    if args.timeline:
        print(chart.render_ascii(width=args.width))
    if args.stats:
        print(
            format_report(
                task_stats_from_functions(system.functions.values()),
                relation_stats(system.relations.values()),
                system.processors.values(),
                getattr(system, "domains", {}).values(),
            )
        )
    if args.svg:
        save_svg(chart, args.svg, title=system.name)
        print(f"wrote {args.svg}")
    if args.vcd:
        save_vcd(recorder, args.vcd)
        print(f"wrote {args.vcd}")
    if args.jsonl:
        recorder.save_jsonl(args.jsonl)
        print(f"wrote {args.jsonl}")
    if args.html:
        from .trace.html import save_report

        save_report(system, recorder, args.html, title=system.name)
        print(f"wrote {args.html}")


def cmd_run(args) -> int:
    with open(args.spec) as handle:
        spec = json.load(handle)
    system = build_system(spec)
    recorder = TraceRecorder(system.sim)
    duration = parse_time(args.duration) if args.duration else None
    end = system.run(duration)
    print(f"simulated {system.name!r} to t={format_time(end)}")
    _emit_outputs(args, system, recorder)
    return 0


def cmd_fig6(args) -> int:
    """Run the paper's §5 example and reproduce its measurements."""
    from .analysis.measurements import reaction_latencies
    from .workloads.fig6 import fig6_spec

    system = build_system(fig6_spec(engine=args.engine))
    recorder = TraceRecorder(system.sim)
    system.run()
    latencies = reaction_latencies(recorder, "Clk", "Function_1")
    print(f"reaction Clk -> Function_1: {format_time(latencies[0])} "
          "(paper measurement (1): 15us)")
    _emit_outputs(args, system, recorder)
    return 0


def cmd_mpeg2(args) -> int:
    from .workloads.mpeg2 import Mpeg2Soc

    soc = Mpeg2Soc(frames=args.frames, engine=args.engine, seed=args.seed)
    recorder = TraceRecorder(soc.system.sim) if (
        args.timeline or args.svg or args.vcd or args.jsonl or args.stats
        or args.html
    ) else None
    soc.run()
    print(soc.format_summary())
    if recorder is not None:
        _emit_outputs(args, soc.system, recorder)
    return 0


def cmd_report(args) -> int:
    """Offline analysis of a saved JSONL trace (no model needed)."""
    from .trace.statistics import task_stats_from_records

    recorder = TraceRecorder.load_jsonl(args.trace)
    print(f"loaded {len(recorder)} records, "
          f"{len(recorder.tasks())} tasks")
    chart = TimelineChart.from_recorder(recorder)
    if args.timeline:
        print(chart.render_ascii(width=args.width))
    if args.stats:
        print(format_report(task_stats_from_records(recorder)))
    if args.svg:
        save_svg(chart, args.svg)
        print(f"wrote {args.svg}")
    if args.vcd:
        save_vcd(recorder, args.vcd)
        print(f"wrote {args.vcd}")
    return 0


def cmd_campaign(args) -> int:
    """Run a Monte-Carlo campaign over the MPEG-2 SoC in parallel."""
    import functools

    from .analysis.montecarlo import format_campaign, monte_carlo
    from .campaign import mpeg2_experiment

    experiment = functools.partial(
        mpeg2_experiment, frames=args.frames, engine=args.engine
    )
    campaign = monte_carlo(
        experiment,
        runs=args.runs,
        base_seed=args.base_seed,
        workers=args.workers,
        cache=args.cache,
        timeout=args.timeout,
        retries=args.retries,
        progress=args.progress,
        strict=not args.keep_going,
    )
    print(format_campaign(campaign))
    stats = campaign.stats
    print(
        f"campaign: {stats['runs']} runs in {stats['wall_s']:.2f}s "
        f"(workers={stats['workers']}, cache hits={stats['cache_hits']} "
        f"misses={stats['cache_misses']}, failed={stats['failed']})"
    )
    if args.json:
        payload = {
            "runs": campaign.runs,
            "stats": stats,
            "metrics": {
                name: sample.summary()
                for name, sample in campaign.items()
            },
            "failures": [f.describe() for f in campaign.failures],
        }
        _emit_json(payload, args.json)
        print(f"wrote {args.json}")
    return 0 if not campaign.failures else 1


def _lint_target(target: str, suppress):
    """Return a (location, Report, witnessable-spec) triple for one target.

    The third element is the builder spec dict for spec-backed targets
    (the witness harness can re-build and explore them), ``None`` for
    source files and targets without an injectable simulator.
    """
    from .analyze import analyze_source, analyze_system

    if target == "fig6":
        from .workloads.fig6 import fig6_spec

        spec = fig6_spec()
        return target, analyze_system(build_system(spec),
                                      suppress=suppress), spec
    if target == "mpeg2":
        from .workloads.mpeg2 import Mpeg2Soc

        soc = Mpeg2Soc(frames=1)
        return target, analyze_system(soc.system, suppress=suppress), None
    if target.endswith(".json"):
        with open(target) as handle:
            spec = json.load(handle)
        return target, analyze_system(build_system(spec),
                                      suppress=suppress), spec
    if target.endswith(".py"):
        report = analyze_source(target)
        report.suppress.update(suppress)
        if suppress:
            kept = []
            for diagnostic in report.diagnostics:
                if diagnostic.rule in report.suppress:
                    report.suppressed.append(diagnostic)
                else:
                    kept.append(diagnostic)
            report.diagnostics = kept
        return target, report, None
    raise SystemExit(
        f"pyrtos-sc lint: unknown target {target!r} "
        "(expected fig6, mpeg2, a .json spec, or a .py file)"
    )


def _witness_report(spec, report, horizon):
    """Run witness attempts for a report's ERRORs; returns outcome dicts.

    Confirmed and unconfirmed outcomes alike are appended to the report
    as INFO diagnostics, so an ERROR never ships without either a
    concrete witness or an explicit no-witness justification.
    """
    from .verify.witness import witness_findings, witnessable

    outcomes = witness_findings(spec, report, horizon=horizon)
    rendered = {}
    for rule_id, outcome in sorted(outcomes.items()):
        rendered[rule_id] = outcome.to_dict()
        status = "confirmed" if outcome.confirmed else "unconfirmed"
        report.add(
            rule_id, report.INFO, f"witness ({status})",
            outcome.justification,
        )
    for rule_id in sorted({d.rule for d in report.errors}):
        if not witnessable(rule_id):
            rendered[rule_id] = {
                "rule": rule_id, "confirmed": False,
                "justification": "rule makes no reachability claim; no "
                                 "dynamic witness exists by construction",
            }
    return rendered


def cmd_lint(args) -> int:
    """Statically analyze models and sources without simulating them."""
    if args.explain:
        from .analyze.diagnostics import explain_rule

        for rule_id in args.explain:
            try:
                print(explain_rule(rule_id))
            except KeyError as exc:
                raise SystemExit(f"pyrtos-sc lint: {exc.args[0]}")
            print()
        if not args.targets:
            return 0
    elif not args.targets:
        raise SystemExit(
            "pyrtos-sc lint: pass at least one target, or --explain RULE"
        )
    suppress = set()
    for chunk in args.suppress or ():
        suppress.update(part.strip() for part in chunk.split(",")
                        if part.strip())
    if args.apply and not args.fix:
        raise SystemExit("pyrtos-sc lint: --apply requires --fix")
    results = [_lint_target(target, suppress) for target in args.targets]
    witness_horizon = parse_time(args.witness_horizon) \
        if args.witness_horizon else None
    witnesses = {}
    if args.witness:
        for location, report, spec in results:
            if spec is None:
                continue
            outcome = _witness_report(spec, report, witness_horizon)
            if outcome:
                witnesses[location] = outcome
    fixes = {}
    if args.fix:
        from .analyze.fixes import plan_fixes

        for location, report, spec in results:
            if spec is None:
                continue
            planned = plan_fixes(spec, suppress=suppress)
            if planned:
                fixes[location] = planned
    failed = False
    if args.json:
        payload = []
        for location, report, _ in results:
            entry = report.to_dict()
            entry["target"] = location
            if location in witnesses:
                entry["witness"] = witnesses[location]
            if args.fix:
                entry["fixes"] = fixes.get(location, [])
            payload.append(entry)
            if not report.ok(strict=args.strict):
                failed = True
        _emit_json(payload)
    else:
        for location, report, _ in results:
            if len(results) > 1:
                print(f"== {location} ==")
            print(report.format_text())
            for fix in fixes.get(location, ()):
                status = ("discharges" if fix.get("discharged")
                          else "does NOT discharge")
                detail = {k: v for k, v in fix.items()
                          if k not in ("rule", "kind", "discharged")}
                print(f"fix [{fix['rule']}] {fix['kind']}: "
                      f"{json.dumps(detail, sort_keys=True)} "
                      f"({status} the finding)")
            if not report.ok(strict=args.strict):
                failed = True
    if args.apply:
        from .analyze.fixes import apply_fixes

        for location, _, spec in results:
            applicable = [fix for fix in fixes.get(location, ())
                          if fix.get("discharged")]
            if not applicable:
                continue
            if not location.endswith(".json"):
                raise SystemExit(
                    "pyrtos-sc lint: --apply needs a writable .json spec; "
                    f"{location!r} is a built-in target"
                )
            patched = apply_fixes(spec, applicable)
            _emit_json(patched, location)
            print(f"applied {len(applicable)} fix(es) to {location}",
                  file=sys.stderr)
    if args.sarif:
        from .analyze.sarif import SARIF_SCHEMA, SARIF_VERSION, \
            report_to_sarif

        runs = []
        for location, report, _ in results:
            runs.extend(report_to_sarif(
                report, artifact=location,
                witnesses=witnesses.get(location),
            )["runs"])
        log = {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION,
               "runs": runs}
        _emit_json(log, args.sarif)
        print(f"wrote {args.sarif}", file=sys.stderr)
    return 1 if failed else 0


def _verify_target_spec(target: str) -> dict:
    """Resolve a ``verify`` target name to a builder spec."""
    if target == "fig6":
        from .workloads.fig6 import fig6_spec

        return fig6_spec()
    if target == "fig6-deadlock":
        from .workloads.fig6 import fig6_crossed_mutex_spec

        return fig6_crossed_mutex_spec()
    if target == "fig6-miss":
        from .workloads.fig6 import fig6_deadline_miss_spec

        return fig6_deadline_miss_spec()
    if target == "smp-miss":
        from .smp import smp_miss_spec

        return smp_miss_spec()
    if target.endswith(".json"):
        with open(target) as handle:
            return json.load(handle)
    raise SystemExit(
        f"pyrtos-sc verify: unknown target {target!r} "
        "(expected fig6, fig6-deadlock, fig6-miss, smp-miss, "
        "or a .json spec)"
    )


def cmd_verify(args) -> int:
    """Model-check a spec over every schedule within the bound."""
    from .verify import build_report, replay_spec, spec_factory, verify_spec

    spec = _verify_target_spec(args.target)
    horizon = parse_time(args.horizon) if args.horizon else None
    bounds = {
        "preemption_bound": (
            parse_time(args.preemption_bound)
            if args.preemption_bound else None
        ),
        "starvation_bound": (
            parse_time(args.starvation_bound)
            if args.starvation_bound else None
        ),
    }
    result = verify_spec(
        spec,
        strategy=args.strategy,
        horizon=horizon,
        max_depth=args.depth,
        sanitize=args.sanitize,
        max_runs=args.max_runs,
        runs=args.runs,
        seed=args.seed,
        **bounds,
    )
    report = build_report(result, factory=spec_factory(spec))
    if args.json:
        payload = result.to_dict()
        payload["report"] = report.to_dict()
        payload["target"] = args.target
        _emit_json(payload)
    else:
        stats = result.stats
        print(
            f"verdict: {result.verdict()} (strategy={result.strategy}, "
            f"runs={stats.runs}, states={stats.states}, "
            f"dedup={stats.dedup_hit_rate:.0%})"
        )
        if len(report):
            print(report.format_text())
        counterexample = result.counterexample
        if counterexample is not None:
            print(counterexample.describe())
    if args.replay:
        counterexample = result.counterexample
        if counterexample is None:
            print("nothing to replay: no counterexample found")
        else:
            system, recorder, outcome = replay_spec(
                spec, counterexample.choices,
                horizon=horizon, max_depth=args.depth, **bounds,
            )
            exhibited = [v.property_id for v in outcome.violations]
            print(
                f"replayed {len(counterexample.choices)} choice(s) to "
                f"t={format_time(outcome.end_time)}; violations: "
                + (", ".join(exhibited) if exhibited else "none")
            )
            _emit_outputs(args, system, recorder)
    return 0 if result.ok else 1


def cmd_serve(args) -> int:
    """Run the simulation-as-a-service HTTP gateway."""
    from .serve import Gateway

    gateway = Gateway(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        rate=args.rate,
        burst=args.burst,
        cache=None if args.no_cache else args.cache,
        cache_max_entries=args.cache_max_entries,
        strict_lint=not args.lax_lint,
        job_timeout=args.job_timeout,
        job_retries=args.retries,
        drain_timeout=args.drain_timeout,
        verbose=args.verbose,
    )
    gateway.start()
    print(
        f"pyrtos-sc serve: listening on http://{gateway.host}:{gateway.port} "
        f"(workers={args.workers}, queue={args.queue_size}, "
        f"cache={'off' if args.no_cache else args.cache})",
        flush=True,
    )
    gateway.install_signal_handlers()
    try:
        gateway.serve_forever()
    except KeyboardInterrupt:
        pass
    clean = gateway.drain()
    served = int(gateway.metrics["requests"].total())
    print(f"pyrtos-sc serve: {'drained cleanly' if clean else 'drain timed out'}"
          f" after {served} request(s)", flush=True)
    return 0 if clean else 1


def cmd_codegen(args) -> int:
    from .codegen import generate_c

    with open(args.spec) as handle:
        spec = json.load(handle)
    paths = generate_c(spec, args.out)
    for path in paths:
        print(f"wrote {path}")
    print(
        f"build with: cc -O2 {args.out}/app.c {args.out}/rtos_port_posix.c "
        "-lpthread -o app"
    )
    return 0


def _corpus_catalogue() -> dict:
    """The full scenario vocabulary: generators, policies, personalities."""
    from .corpus import GENERATORS
    from .personality import PERSONALITIES
    from .rtos.policies import POLICIES

    def _doc(cls) -> str:
        doc = (cls.__doc__ or "").strip().splitlines()
        return doc[0].rstrip(".") if doc else ""

    return {
        "generators": {
            name: GENERATORS[name].description
            for name in sorted(GENERATORS)
        },
        "policies": {
            name: _doc(POLICIES[name]) for name in sorted(POLICIES)
        },
        "personalities": {
            name: PERSONALITIES[name].description
            for name in sorted(PERSONALITIES)
        },
    }


def cmd_corpus(args) -> int:
    """Generate one corpus scenario spec (or list the catalogue)."""
    from .corpus import generate, spec_digest

    if args.list or args.json or not args.kind:
        catalogue = _corpus_catalogue()
        if args.json:
            _emit_json(catalogue, args.out)
            return 0
        for section, entries in catalogue.items():
            print(f"{section}:")
            width = max(len(name) for name in entries)
            for name, description in entries.items():
                print(f"  {name:<{width}}  {description}")
        return 0
    params = json.loads(args.params) if args.params else None
    spec = generate(args.kind, args.seed, params)
    if args.digest:
        print(spec_digest(spec))
        return 0
    _emit_json(spec, args.out)
    if args.out:
        print(f"wrote {args.out}")
    return 0


def cmd_batch_run(args) -> int:
    """Fan a batch matrix through the cached campaign runner."""
    from .corpus import load_matrix, run_matrix

    doc = load_matrix(args.matrix)
    report = run_matrix(
        doc,
        workers=args.workers,
        cache=args.cache,
        timeout=args.timeout,
        progress=args.progress,
    )
    _emit_json(report, args.out)
    summary = report["summary"]
    if args.out:
        print(
            f"{summary['completed']}/{summary['cells']} cells "
            f"({summary['cache_hits']} cached, "
            f"{summary['violating']} violating, "
            f"{summary['failed']} failed) -> {args.out}"
        )
    return 1 if report["failures"] else 0


def cmd_compare(args) -> int:
    """Diff two batch-run reports: verdict flips and metric drift."""
    import os.path

    from .corpus import compare_reports, format_comparison, load_report

    report_a = load_report(args.report_a)
    report_b = load_report(args.report_b)
    diff = compare_reports(
        report_a, report_b,
        label_a=os.path.basename(args.report_a),
        label_b=os.path.basename(args.report_b),
    )
    if args.json:
        _emit_json(diff)
    else:
        print(format_comparison(diff))
    return 0 if diff["identical"] else 1


def cmd_fuzz(args) -> int:
    """Fuzz generated scenarios; freeze findings as regression seeds."""
    from .corpus import (
        DEFAULT_HORIZON,
        PipelineOptions,
        check_seed,
        fuzz,
        iter_seed_paths,
        load_seed,
    )

    seeds_dir = args.seeds_dir
    if args.replay:
        paths = iter_seed_paths(seeds_dir)
        if not paths:
            print(f"no seeds under {seeds_dir}")
            return 0
        failed = 0
        for path in paths:
            result = check_seed(load_seed(path), path=path)
            status = "ok" if result["ok"] else "MISMATCH"
            print(f"{status}  {path}")
            if not result["ok"]:
                failed += 1
                print(f"    expected {result['expected'][:16]}..., "
                      f"got {result['actual'][:16]}...")
        print(f"replayed {len(paths)} seed(s), {failed} mismatch(es)")
        return 1 if failed else 0

    horizon = parse_time(args.horizon) if args.horizon else DEFAULT_HORIZON
    options = PipelineOptions(
        horizon=horizon,
        verify=not args.no_verify,
        verify_max_runs=args.max_runs,
        verify_max_depth=args.depth,
    )
    report = fuzz(
        seed=args.seed,
        budget=args.budget,
        kinds=args.kind or None,
        seeds_dir=seeds_dir,
        options=options,
        max_wall_s=args.max_wall,
        write=not args.no_write,
        progress=print if not args.json else None,
    )
    if args.json:
        _emit_json(report.to_dict(), args.out)
    else:
        print(
            f"fuzzed {report.scenarios}/{report.budget} scenario(s) in "
            f"{report.wall_s:.1f}s ({report.scenarios_per_second:.1f}/s)"
        )
        print(f"stream sha256: {report.stream_sha256}")
        print(
            f"findings: {len(report.findings)} "
            f"({report.new_seeds} new, {report.known} known, "
            f"{report.shrink_runs} shrink runs)"
        )
    if args.check and report.new_seeds:
        print(f"--check: {report.new_seeds} new seed(s) found", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pyrtos-sc",
        description="Generic RTOS model simulation (Le Moigne et al., DATE'04)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run a JSON system spec")
    run_parser.add_argument("spec", help="path to the JSON specification")
    run_parser.add_argument("--duration", help='e.g. "10ms" (default: to idle)')
    _add_output_flags(run_parser)
    run_parser.set_defaults(func=cmd_run)

    fig6_parser = sub.add_parser("fig6", help="run the paper's §5 example")
    fig6_parser.add_argument("--engine", default="procedural",
                             choices=("procedural", "threaded"))
    _add_output_flags(fig6_parser)
    fig6_parser.set_defaults(func=cmd_fig6)

    mpeg2_parser = sub.add_parser("mpeg2", help="run the MPEG-2 SoC study")
    mpeg2_parser.add_argument("--frames", type=int, default=12)
    mpeg2_parser.add_argument("--seed", type=int, default=0)
    mpeg2_parser.add_argument("--engine", default="procedural",
                              choices=("procedural", "threaded"))
    _add_output_flags(mpeg2_parser)
    mpeg2_parser.set_defaults(func=cmd_mpeg2)

    report_parser = sub.add_parser(
        "report", help="analyze a saved JSONL trace offline"
    )
    report_parser.add_argument("trace", help="path to a --jsonl trace file")
    report_parser.add_argument("--timeline", action="store_true")
    report_parser.add_argument("--width", type=int, default=100)
    report_parser.add_argument("--stats", action="store_true")
    report_parser.add_argument("--svg", metavar="PATH")
    report_parser.add_argument("--vcd", metavar="PATH")
    report_parser.set_defaults(func=cmd_report)

    campaign_parser = sub.add_parser(
        "campaign",
        help="run a parallel Monte-Carlo campaign (MPEG-2 SoC grid)",
    )
    campaign_parser.add_argument("--runs", type=int, default=16,
                                 help="number of seeded runs")
    campaign_parser.add_argument("--frames", type=int, default=8)
    campaign_parser.add_argument("--base-seed", type=int, default=0)
    campaign_parser.add_argument("--engine", default="procedural",
                                 choices=("procedural", "threaded"))
    campaign_parser.add_argument("--workers", type=int, default=1,
                                 help="worker processes (1 = in-process)")
    campaign_parser.add_argument("--cache", metavar="DIR", default=None,
                                 help="result-cache directory "
                                      "(e.g. .campaign-cache)")
    campaign_parser.add_argument("--timeout", type=float, default=None,
                                 help="per-run wall-clock limit in seconds")
    campaign_parser.add_argument("--retries", type=int, default=0,
                                 help="extra attempts per failed run")
    campaign_parser.add_argument("--progress", action="store_true",
                                 help="live progress/ETA on stderr")
    campaign_parser.add_argument("--keep-going", action="store_true",
                                 help="record failures instead of aborting")
    campaign_parser.add_argument("--json", metavar="PATH",
                                 help="write the campaign summary as JSON")
    campaign_parser.set_defaults(func=cmd_campaign)

    lint_parser = sub.add_parser(
        "lint",
        help="statically analyze models/sources without simulating",
    )
    lint_parser.add_argument(
        "targets", nargs="*",
        help="fig6 | mpeg2 | spec.json | experiment.py (any mix)",
    )
    lint_parser.add_argument("--json", action="store_true",
                             help="machine-readable JSON on stdout")
    lint_parser.add_argument("--strict", action="store_true",
                             help="exit nonzero on warnings, not just errors")
    lint_parser.add_argument("--suppress", action="append", metavar="RULES",
                             help="comma-separated rule ids to suppress "
                                  "(repeatable)")
    lint_parser.add_argument("--explain", action="append", metavar="RULE",
                             help="print the catalogue entry and long-form "
                                  "explanation of a rule (repeatable)")
    lint_parser.add_argument("--sarif", metavar="PATH",
                             help="write findings as a SARIF 2.1.0 log")
    lint_parser.add_argument("--witness", action="store_true",
                             help="hand every ERROR to the bounded "
                                  "verifier for a concrete witness "
                                  "(spec-backed targets only)")
    lint_parser.add_argument("--witness-horizon", metavar="TIME",
                             default="50ms",
                             help="time bound for witness exploration "
                                  "(default: 50ms)")
    lint_parser.add_argument("--fix", action="store_true",
                             help="plan machine-applicable spec patches "
                                  "for fixable findings (RTS181/182/183), "
                                  "each re-linted for discharge")
    lint_parser.add_argument("--apply", action="store_true",
                             help="with --fix: write the discharged "
                                  "patches back to .json spec targets")
    lint_parser.set_defaults(func=cmd_lint)

    verify_parser = sub.add_parser(
        "verify",
        help="model-check a spec over all bounded schedules",
    )
    verify_parser.add_argument(
        "target",
        help="fig6 | fig6-deadlock | fig6-miss | smp-miss | spec.json",
    )
    verify_parser.add_argument("--strategy", default="dfs",
                               choices=("dfs", "random"),
                               help="exhaustive DFS or seeded sampling")
    verify_parser.add_argument("--horizon", metavar="TIME",
                               help='per-run time bound, e.g. "2ms" '
                                    "(default: run to idle)")
    verify_parser.add_argument("--depth", type=int, default=64,
                               help="maximum explored choice depth")
    verify_parser.add_argument("--max-runs", type=int, default=10_000,
                               help="DFS run budget")
    verify_parser.add_argument("--runs", type=int, default=100,
                               help="samples for --strategy random")
    verify_parser.add_argument("--seed", type=int, default=0,
                               help="base seed for --strategy random")
    verify_parser.add_argument("--sanitize", action="store_true",
                               help="run the nondeterminism sanitizer "
                                    "(SAN301/302/303) during exploration")
    verify_parser.add_argument("--preemption-bound", metavar="TIME",
                               default=None,
                               help="check RTS-V006: max time a ready "
                                    "higher-priority task may wait behind "
                                    "a lower-priority running task")
    verify_parser.add_argument("--starvation-bound", metavar="TIME",
                               default=None,
                               help="check RTS-V007: max continuous READY "
                                    "time before a task counts as starved")
    verify_parser.add_argument("--json", action="store_true",
                               help="machine-readable JSON on stdout")
    verify_parser.add_argument("--replay", action="store_true",
                               help="re-execute the counterexample with a "
                                    "trace recorder (combine with --svg, "
                                    "--vcd, --timeline, ...)")
    _add_output_flags(verify_parser)
    verify_parser.set_defaults(func=cmd_verify)

    serve_parser = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP gateway",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="listen port (0 = ephemeral)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="worker threads executing jobs")
    serve_parser.add_argument("--queue-size", type=int, default=16,
                              help="bounded admission queue; overflow = 429")
    serve_parser.add_argument("--rate", type=float, default=None,
                              help="per-client requests/second "
                                   "(default: unlimited)")
    serve_parser.add_argument("--burst", type=int, default=10,
                              help="per-client token-bucket burst")
    serve_parser.add_argument("--cache", metavar="DIR",
                              default=".serve-cache",
                              help="job-dedup cache directory")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="disable the on-disk dedup cache")
    serve_parser.add_argument("--cache-max-entries", type=int, default=1024,
                              help="LRU bound on cached results")
    serve_parser.add_argument("--lax-lint", action="store_true",
                              help="admit specs with lint warnings "
                                   "(errors still reject)")
    serve_parser.add_argument("--job-timeout", type=float, default=None,
                              help="per-job wall-clock limit in seconds")
    serve_parser.add_argument("--retries", type=int, default=0,
                              help="extra attempts per failed job")
    serve_parser.add_argument("--drain-timeout", type=float, default=30.0,
                              help="seconds to finish in-flight jobs on "
                                   "SIGTERM")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="per-request logging on stderr")
    serve_parser.set_defaults(func=cmd_serve)

    codegen_parser = sub.add_parser(
        "codegen", help="generate a C application from a JSON spec"
    )
    codegen_parser.add_argument("spec", help="path to the JSON specification")
    codegen_parser.add_argument("out", help="output directory")
    codegen_parser.set_defaults(func=cmd_codegen)

    corpus_parser = sub.add_parser(
        "corpus",
        help="generate a scenario spec from the corpus generators",
    )
    corpus_parser.add_argument(
        "kind", nargs="?",
        help="generator kind (omit or use --list for the catalogue)",
    )
    corpus_parser.add_argument("--seed", type=int, default=0,
                               help="scenario seed")
    corpus_parser.add_argument("--params", metavar="JSON",
                               help='generator parameters, e.g. '
                                    '\'{"n": 5, "utilization": 0.9}\'')
    corpus_parser.add_argument("--out", metavar="PATH",
                               help="write the spec JSON here "
                                    "(default: stdout)")
    corpus_parser.add_argument("--digest", action="store_true",
                               help="print only the canonical spec sha256")
    corpus_parser.add_argument("--json", action="store_true",
                               help="emit the catalogue (generators, "
                                    "scheduling policies, personalities) "
                                    "as JSON")
    corpus_parser.add_argument("--list", action="store_true",
                               help="list the generator catalogue")
    corpus_parser.set_defaults(func=cmd_corpus)

    batch_parser = sub.add_parser(
        "batch-run",
        help="run a declarative batch matrix through the campaign runner",
    )
    batch_parser.add_argument("matrix", help="path to the matrix JSON")
    batch_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = in-process)")
    batch_parser.add_argument("--cache", metavar="DIR", default=None,
                              help="campaign result-cache directory")
    batch_parser.add_argument("--timeout", type=float, default=None,
                              help="per-cell wall-clock limit in seconds")
    batch_parser.add_argument("--progress", action="store_true",
                              help="live progress/ETA on stderr")
    batch_parser.add_argument("--out", metavar="PATH",
                              help="write the report JSON here "
                                   "(default: stdout)")
    batch_parser.set_defaults(func=cmd_batch_run)

    compare_parser = sub.add_parser(
        "compare",
        help="diff two batch-run reports (verdict flips, metric drift)",
    )
    compare_parser.add_argument("report_a", help="baseline report JSON")
    compare_parser.add_argument("report_b", help="candidate report JSON")
    compare_parser.add_argument("--json", action="store_true",
                                help="machine-readable JSON on stdout")
    compare_parser.set_defaults(func=cmd_compare)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="fuzz generated scenarios through lint+simulate+verify",
    )
    fuzz_parser.add_argument("--seed", type=int, default=0,
                             help="fuzz stream seed")
    fuzz_parser.add_argument("--budget", type=int, default=100,
                             help="number of scenarios to generate")
    fuzz_parser.add_argument("--kind", action="append", metavar="KIND",
                             help="restrict to this generator (repeatable)")
    fuzz_parser.add_argument("--seeds-dir", default="tests/corpus/seeds",
                             help="regression-seed corpus directory")
    fuzz_parser.add_argument("--horizon", metavar="TIME",
                             help='per-scenario time bound (default 200ms)')
    fuzz_parser.add_argument("--depth", type=int, default=12,
                             help="verify-stage max choice depth")
    fuzz_parser.add_argument("--max-runs", type=int, default=32,
                             help="verify-stage DFS run budget")
    fuzz_parser.add_argument("--max-wall", type=float, default=None,
                             help="wall-clock bound in seconds (covers a "
                                  "prefix of the deterministic stream)")
    fuzz_parser.add_argument("--no-verify", action="store_true",
                             help="skip the bounded model-checking stage")
    fuzz_parser.add_argument("--no-write", action="store_true",
                             help="report new findings without writing "
                                  "seed files")
    fuzz_parser.add_argument("--check", action="store_true",
                             help="exit nonzero if any NEW seed was found "
                                  "(CI gate: clean tree -> zero new seeds)")
    fuzz_parser.add_argument("--replay", action="store_true",
                             help="replay every checked-in seed instead "
                                  "of fuzzing")
    fuzz_parser.add_argument("--json", action="store_true",
                             help="machine-readable JSON on stdout")
    fuzz_parser.add_argument("--out", metavar="PATH",
                             help="write the fuzz report JSON here "
                                  "(with --json)")
    fuzz_parser.set_defaults(func=cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
