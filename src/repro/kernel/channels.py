"""Primitive channels: signal, FIFO, mutex, semaphore, event queue.

These mirror SystemC's primitive channel library and serve two purposes:

* they complete the SystemC substrate (hardware sides of a co-simulated
  model communicate through them), and
* the MCSE relations (:mod:`repro.mcse`) and the RTOS services
  (:mod:`repro.rtos.services`) are built on the same wait/notify idioms.

Blocking operations are **generator methods**: call them with
``yield from`` inside a thread process::

    item = yield from fifo.get()
    yield from mutex.lock()
    ...
    mutex.unlock()
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Generator, List

from ..errors import SimulationError
from .event import Event
from .simulator import Simulator
from .time import Time


class Signal:
    """A value holder with SystemC evaluate/update semantics.

    Writes are deferred to the update phase, so every reader within one
    delta cycle observes the same stable value; ``value_changed`` is
    delta-notified when the committed value differs from the old one.
    """

    def __init__(self, sim: Simulator, name: str = "signal", initial=None) -> None:
        self.sim = sim
        self.name = sim.unique_name(name)
        self._value = initial
        self._new_value = initial
        self._update_requested = False
        #: Delta-notified whenever the committed value changes.
        self.value_changed = Event(sim, f"{self.name}.value_changed")
        #: Number of committed changes (useful for toggle counting).
        self.change_count = 0

    def read(self):
        """Return the current committed value."""
        return self._value

    @property
    def value(self):
        return self._value

    def write(self, value) -> None:
        """Schedule ``value`` to be committed at the next update phase."""
        sanitizer = getattr(self.sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.observe_signal_write(self, value)
        self._new_value = value
        self.sim._request_update(self)

    def _update(self) -> None:
        sanitizer = getattr(self.sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.observe_signal_update(self)
        if self._new_value != self._value:
            self._value = self._new_value
            self.change_count += 1
            self.value_changed.notify_delta()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Signal {self.name}={self._value!r}>"


class Fifo:
    """A bounded blocking FIFO (``sc_fifo``)."""

    def __init__(self, sim: Simulator, name: str = "fifo", capacity: int = 16) -> None:
        if capacity < 1:
            raise SimulationError(f"fifo capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = sim.unique_name(name)
        self.capacity = capacity
        self._items: Deque = deque()
        self.data_written = Event(sim, f"{self.name}.data_written")
        self.data_read = Event(sim, f"{self.name}.data_read")
        #: Lifetime counters for utilization statistics.
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    def try_put(self, item) -> bool:
        """Non-blocking put; returns False when full."""
        if len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self.total_put += 1
        self.data_written.notify_delta()
        return True

    def try_get(self):
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self.total_got += 1
        self.data_read.notify_delta()
        return True, item

    def put(self, item) -> Generator:
        """Blocking put (``yield from`` me)."""
        while not self.try_put(item):
            yield self.data_read

    def get(self) -> Generator:
        """Blocking get (``yield from`` me); returns the item."""
        while True:
            ok, item = self.try_get()
            if ok:
                return item
            yield self.data_written


class Mutex:
    """A non-recursive mutex (``sc_mutex``) with FIFO wakeup fairness."""

    def __init__(self, sim: Simulator, name: str = "mutex") -> None:
        self.sim = sim
        self.name = sim.unique_name(name)
        self.owner = None
        self.unlocked = Event(sim, f"{self.name}.unlocked")
        #: Lifetime counts for contention statistics.
        self.acquisitions = 0
        self.contentions = 0

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def try_lock(self) -> bool:
        """Non-blocking lock attempt by the current process."""
        if self.owner is not None:
            return False
        self.owner = self.sim.current_process
        self.acquisitions += 1
        return True

    def lock(self) -> Generator:
        """Blocking lock (``yield from`` me)."""
        if not self.try_lock():
            self.contentions += 1
            while True:
                yield self.unlocked
                if self.try_lock():
                    break

    def unlock(self) -> None:
        """Release; only the owning process may unlock."""
        current = self.sim.current_process
        if self.owner is None:
            raise SimulationError(f"unlock of unlocked mutex {self.name!r}")
        if current is not None and self.owner is not current:
            raise SimulationError(
                f"process {current.name!r} unlocking mutex {self.name!r} "
                f"owned by {self.owner.name!r}"
            )
        self.owner = None
        self.unlocked.notify()


class Semaphore:
    """A counting semaphore (``sc_semaphore``)."""

    def __init__(self, sim: Simulator, name: str = "semaphore", initial: int = 1) -> None:
        if initial < 0:
            raise SimulationError(f"negative semaphore count: {initial}")
        self.sim = sim
        self.name = sim.unique_name(name)
        self.count = initial
        self.posted = Event(sim, f"{self.name}.posted")

    def try_wait(self) -> bool:
        if self.count == 0:
            return False
        self.count -= 1
        return True

    def wait(self) -> Generator:
        """Blocking P operation (``yield from`` me)."""
        while not self.try_wait():
            yield self.posted

    def post(self) -> None:
        """V operation; wakes one-or-more blocked waiters to re-contend."""
        self.count += 1
        self.posted.notify()


class EventQueue:
    """Multiple outstanding timed notifications (``sc_event_queue``).

    Unlike a bare :class:`Event`, every queued notification fires, even
    when several land at the same instant (each in its own delta cycle).
    """

    def __init__(self, sim: Simulator, name: str = "event_queue") -> None:
        self.sim = sim
        self.name = sim.unique_name(name)
        #: Trigger one wait per queued notification by waiting on this.
        self.event = Event(sim, f"{self.name}.event")
        self._pending: List[Time] = []
        self._due = 0
        # Re-arms the event when several notifications land at one instant,
        # guaranteeing one delta-separated trigger per notification.
        self._pump = sim.method(
            self._drain, sensitive=(self.event,),
            name=f"{self.name}.pump", initialize=False,
        )

    def notify(self, delay: Time = 0) -> None:
        """Queue a notification ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"negative event-queue delay: {delay}")
        heapq.heappush(self._pending, self.sim.now + delay)
        self.sim.schedule_callback(delay, self._fire)

    def _fire(self) -> None:
        if self._pending:
            heapq.heappop(self._pending)
        self._due += 1
        self.event.notify_delta()

    def _drain(self) -> None:
        if self._due > 0:
            self._due -= 1
        if self._due > 0:
            self.event.notify_delta()

    def cancel_all(self) -> None:
        """Discard all queued notifications (best effort)."""
        self._pending.clear()
        self._due = 0
        self.event.cancel()

    @property
    def pending_count(self) -> int:
        """Notifications queued but not yet fired."""
        return len(self._pending)
