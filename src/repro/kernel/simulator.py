"""The public simulation facade.

:class:`Simulator` wraps :class:`~repro.kernel.scheduler.KernelCore` with
naming, factory helpers, and the trace hook the higher layers
(:mod:`repro.rtos`, :mod:`repro.trace`) attach to.  A typical standalone
use looks like::

    from repro.kernel import Simulator
    from repro.kernel.time import US

    sim = Simulator("demo")
    done = sim.event("done")

    def producer():
        yield 5 * US
        done.notify()

    def consumer():
        yield done
        print("got it at", sim.time_str())

    sim.thread(producer, name="producer")
    sim.thread(consumer, name="consumer")
    sim.run()
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Iterable, Optional, Union

from .event import Event
from .process import MethodProcess, Process, ThreadBody
from .scheduler import KernelCore
from .time import Time, format_time


class Simulator(KernelCore):
    """A named simulation context with object factories."""

    __slots__ = (
        "name",
        "_names",
        "recorder",
        "_observers",
        "sanitizer",
        "choice_controller",
    )

    def __init__(
        self,
        name: str = "sim",
        max_delta_cycles: int = 1_000_000,
        *,
        sanitize: bool = False,
    ) -> None:
        super().__init__(max_delta_cycles=max_delta_cycles)
        self.name = name
        self._names: Dict[str, int] = {}
        #: Optional :class:`repro.trace.recorder.TraceRecorder`; layers
        #: above the kernel emit records through this when set.
        self.recorder = None
        #: Online observers called with every emitted record (used by
        #: runtime monitors such as the deadline watchdog).
        self._observers: list = []
        #: Opt-in nondeterminism sanitizer (``sanitize=True``); ``None``
        #: by default so the kernel hooks cost one attribute check.
        self.sanitizer = None
        #: Optional :class:`repro.verify.choices.ChoiceController` that
        #: resolves scheduling nondeterminism (ready-queue ties, wake
        #: order, execution-time ranges); ``None`` by default so the
        #: hooks cost one attribute check per decision.
        self.choice_controller = None
        if sanitize:
            from ..analyze.sanitize import Sanitizer

            self.sanitizer = Sanitizer(self)

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def unique_name(self, base: str) -> str:
        """Return ``base``, deterministically suffixed if already taken."""
        count = self._names.get(base)
        if count is None:
            self._names[base] = 0
            return base
        self._names[base] = count + 1
        return f"{base}_{count + 1}"

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self, name: str = "event") -> Event:
        """Create a named :class:`Event` bound to this simulator."""
        return Event(self, self.unique_name(name))

    def thread(
        self,
        body: Union[Generator, ThreadBody],
        *args,
        name: Optional[str] = None,
        **kwargs,
    ) -> Process:
        """Register a thread process from a generator function (or generator).

        Extra positional/keyword arguments are passed to ``body``.
        """
        if name is None:
            name = getattr(body, "__name__", "thread")
        process = Process(self, self.unique_name(name), body, args, kwargs)
        self._register_process(process)
        return process

    def method(
        self,
        fn: Callable[[], object],
        sensitive: Iterable[Event] = (),
        *,
        name: Optional[str] = None,
        initialize: bool = True,
    ) -> MethodProcess:
        """Register a method process statically sensitive to ``sensitive``."""
        if name is None:
            name = getattr(fn, "__name__", "method")
        process = MethodProcess(
            self, self.unique_name(name), fn, sensitive, initialize=initialize
        )
        self._register_process(process)
        return process

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def time_str(self, t: Optional[Time] = None) -> str:
        """Format ``t`` (default: now) for humans."""
        return format_time(self.now if t is None else t)

    def set_recorder(self, recorder) -> None:
        """Attach a trace recorder (see :mod:`repro.trace.recorder`)."""
        self.recorder = recorder

    def add_observer(self, fn) -> None:
        """Register a callable invoked with every emitted trace record.

        Observers run synchronously at emission time (inside whatever
        process caused the record), so they can react *during* the
        simulation -- e.g. arm a watchdog timer.  They must not block.
        """
        self._observers.append(fn)

    def remove_observer(self, fn) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        try:
            self._observers.remove(fn)
        except ValueError:
            pass

    def record(self, record) -> None:
        """Emit a trace record to the recorder and all observers."""
        if self.recorder is not None:
            self.recorder.add(record)
        for observer in self._observers:
            observer(record)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator {self.name} t={format_time(self.now)} "
            f"procs={len(self.processes)} switches={self.process_switch_count}>"
        )
