"""Simulation events with SystemC ``sc_event`` notification semantics.

An :class:`Event` is the kernel's only synchronization primitive.  It can
be notified three ways, exactly like ``sc_event``:

* :meth:`Event.notify` -- **immediate**: processes waiting on the event
  become runnable within the *current* evaluate phase.
* :meth:`Event.notify_delta` -- **delta**: waiting processes become
  runnable in the next delta cycle (time does not advance).
* :meth:`Event.notify_after` -- **timed**: waiting processes become
  runnable when simulated time reaches ``now + delay``.

An event carries at most one *pending* (delta or timed) notification.
SystemC's override rules apply: an earlier notification cancels and
replaces a later pending one, and a later notification is discarded when
an earlier one is already pending.  :meth:`Event.cancel` discards any
pending notification.

Events are deliberately payload-free; data exchange happens in channels
(:mod:`repro.kernel.channels`) and MCSE relations (:mod:`repro.mcse`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..errors import SimulationError
from .time import Time, format_time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .process import _Sensitivity
    from .scheduler import KernelCore


class _TimedNotification:
    """A cancellable entry in the kernel's timed-notification heap."""

    __slots__ = ("time", "event", "cancelled")

    def __init__(self, time: Time, event: "Event") -> None:
        self.time = time
        self.event = event
        self.cancelled = False


#: Sentinel stored in ``Event._pending`` while a delta notification is queued.
_DELTA_PENDING = "delta"


class Event:
    """A notifiable simulation event (see module docstring).

    Instances are normally created through :meth:`Simulator.event` or
    :meth:`Module.event`, which take care of unique naming.
    """

    __slots__ = (
        "sim",
        "name",
        "_waiters",
        "_pending",
        "trigger_count",
        "last_trigger_time",
    )

    def __init__(self, sim: "KernelCore", name: str = "event") -> None:
        self.sim = sim
        self.name = name
        # dict used as an insertion-ordered set for deterministic wakeups
        self._waiters: Dict["_Sensitivity", None] = {}
        self._pending: Optional[object] = None
        #: Number of times this event has triggered (any notification kind).
        self.trigger_count = 0
        #: Simulation time of the most recent trigger, or ``None``.
        self.last_trigger_time: Optional[Time] = None

    # ------------------------------------------------------------------
    # Notification API
    # ------------------------------------------------------------------
    def notify(self) -> None:
        """Immediate notification: wake waiters in the current evaluate phase.

        Any pending delta/timed notification is cancelled first (it would
        be redundant: the event just fired).
        """
        if self._pending is not None:
            self.cancel()
        # immediate notification is a direct trigger (the kernel's
        # _immediate_notify hook does exactly this; inlined as it is on
        # the hottest notification path)
        self._trigger()

    def notify_delta(self) -> None:
        """Delta notification: wake waiters one delta cycle from now."""
        if self._pending is _DELTA_PENDING:
            return  # already as early as a pending notification can be
        # A delta notification is earlier than any timed one: override it.
        self.cancel()
        self._pending = _DELTA_PENDING
        self.sim._schedule_delta_notify(self)

    def notify_after(self, delay: Time) -> None:
        """Timed notification ``delay`` femtoseconds from now.

        ``delay == 0`` degenerates to a delta notification, as in SystemC.
        A pending notification that is *earlier* wins; a pending one that
        is *later* is cancelled and replaced.
        """
        if delay < 0:
            raise SimulationError(
                f"negative notification delay on event {self.name!r}: {delay}"
            )
        if delay == 0:
            self.notify_delta()
            return
        when = self.sim.now + delay
        pending = self._pending
        if pending is _DELTA_PENDING:
            return  # delta is earlier than any timed notification
        # past the delta check, ``pending`` is None or a _TimedNotification
        if pending is not None and not pending.cancelled:
            if pending.time <= when:
                return  # an earlier (or equal) notification already pending
            pending.cancelled = True
        self._pending = self.sim._schedule_timed_notify(self, when)

    def cancel(self) -> None:
        """Cancel any pending delta or timed notification."""
        pending = self._pending
        if pending is None:
            return
        if pending is _DELTA_PENDING:
            self.sim._cancel_delta_notify(self)
        else:
            pending.cancelled = True
        self._pending = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> bool:
        """Whether a delta or timed notification is currently queued."""
        pending = self._pending
        if pending is None:
            return False
        if isinstance(pending, _TimedNotification):
            return not pending.cancelled
        return True

    @property
    def pending_time(self) -> Optional[Time]:
        """Absolute trigger time of a pending *timed* notification.

        ``None`` when nothing is pending; the current time when a delta
        notification is pending.
        """
        pending = self._pending
        if isinstance(pending, _TimedNotification) and not pending.cancelled:
            return pending.time
        if pending is _DELTA_PENDING:
            return self.sim.now
        return None

    # ------------------------------------------------------------------
    # Kernel-internal hooks
    # ------------------------------------------------------------------
    def _trigger(self) -> None:
        """Fire the event: resolve sensitivities waiting on it.

        Called by the kernel during the appropriate phase.  Waiter
        callbacks may re-attach (static sensitivity) or attach new
        sensitivities; iteration therefore happens over a snapshot.
        """
        self._pending = None
        self.trigger_count += 1
        self.last_trigger_time = self.sim.now
        waiters = self._waiters
        if not waiters:
            return
        if len(waiters) == 1:
            # Fast path: the overwhelmingly common single-waiter case
            # needs no snapshot list -- grab the sole sensitivity before
            # its callback can mutate the waiter dict.
            for sensitivity in waiters:
                break
            sensitivity.on_event(self)
            return
        snapshot = list(waiters)
        # Sanitizer hook on the rare multi-waiter branch only: the wake
        # order below is deterministic but implementation-defined.
        sanitizer = getattr(self.sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.observe_multi_wake(self, len(snapshot))
        for sensitivity in snapshot:
            sensitivity.on_event(self)

    def _attach(self, sensitivity: "_Sensitivity") -> None:
        self._waiters[sensitivity] = None

    def _detach(self, sensitivity: "_Sensitivity") -> None:
        self._waiters.pop(sensitivity, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ""
        if self.pending:
            when = self.pending_time
            state = f" pending@{format_time(when) if when is not None else '?'}"
        return f"<Event {self.name}{state}>"
