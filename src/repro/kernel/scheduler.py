"""The discrete-event kernel core: queues, phases, and the run loop.

The loop follows the SystemC 2.0 scheduler structure:

1. **Evaluate phase** -- run every runnable process.  Immediate event
   notifications issued here wake processes into the *same* phase.
2. **Update phase** -- apply the update requests posted by primitive
   channels (e.g. signals committing their new value).
3. **Delta notification phase** -- trigger delta-notified events and
   zero-time waits.  If that made processes runnable, a new *delta cycle*
   starts at step 1 without advancing time.
4. **Timed notification phase** -- otherwise, advance simulated time to
   the earliest pending timed notification, trigger everything scheduled
   at that instant, and return to step 1.

The kernel also maintains :attr:`KernelCore.process_switch_count`, the
number of process resumptions performed.  This is the cost metric the
paper's §4 uses to compare its two RTOS implementation techniques (each
SystemC thread switch is expensive; the procedure-call technique exists
precisely to avoid them), so we expose it as a first-class statistic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional, Tuple

from ..errors import DeadlockError, SchedulerError, SimulationError
from .event import Event, _DELTA_PENDING, _TimedNotification
from .process import MethodProcess, Process, ProcessBase, ProcessState, _Timeout
from .time import Time, format_time


class _TimedCallback:
    """Cancellable timed-heap entry invoking a plain callable."""

    __slots__ = ("time", "fn", "cancelled")

    def __init__(self, time: Time, fn) -> None:
        self.time = time
        self.fn = fn
        self.cancelled = False


class KernelCore:
    """Event queues and scheduling loop shared by all simulations.

    Hot-path note: the kernel recycles :class:`_TimedNotification` and
    :class:`_Timeout` heap entries through free-lists.  An entry is only
    recycled after it has been popped from the timed heap *and* every
    external reference to it has been dropped (``Event._pending`` is
    cleared by ``_trigger``/``cancel``; ``ProcessBase._sensitivity`` is
    cleared on wait resolution), so a pooled object can never be observed
    through a stale handle.
    """

    __slots__ = (
        "now",
        "delta_count",
        "process_switch_count",
        "processes",
        "_runnable",
        "_timed",
        "_seq",
        "_delta_events",
        "_delta_resumes",
        "_delta_callbacks",
        "_update_requests",
        "_current",
        "_started",
        "_running",
        "_stop_requested",
        "_pending_error",
        "_max_delta_cycles",
        "_free_notifications",
        "_free_timeouts",
        "_free_sensitivities",
    )

    def __init__(self, max_delta_cycles: int = 1_000_000) -> None:
        #: Current simulated time in femtoseconds.
        self.now: Time = 0
        #: Total delta cycles executed so far.
        self.delta_count = 0
        #: Total process resumptions ("thread switches") performed.
        self.process_switch_count = 0
        #: All processes ever registered (terminated ones included).
        self.processes: List[ProcessBase] = []

        self._runnable: deque = deque()
        self._timed: List[Tuple[Time, int, object]] = []
        self._seq = 0
        self._delta_events: List[Event] = []
        self._delta_resumes: List[ProcessBase] = []
        self._delta_callbacks: List = []
        self._update_requests: List[object] = []
        self._current: Optional[ProcessBase] = None
        self._started = False
        self._running = False
        self._stop_requested = False
        self._pending_error: Optional[Tuple[ProcessBase, BaseException]] = None
        self._max_delta_cycles = max_delta_cycles
        # Free-lists recycling the high-churn kernel objects: the two
        # timed-heap entry kinds, plus resolved wait sensitivities.
        self._free_notifications: List[_TimedNotification] = []
        self._free_timeouts: List[_Timeout] = []
        self._free_sensitivities: List = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_process(self) -> Optional[ProcessBase]:
        """The process currently being evaluated, or ``None``."""
        return self._current

    @property
    def started(self) -> bool:
        """Whether the simulation has begun executing."""
        return self._started

    def pending_activity(self) -> bool:
        """True if anything at all is still scheduled."""
        if self._runnable or self._delta_events or self._delta_resumes:
            return True
        return any(not self._entry_cancelled(e) for _, _, e in self._timed)

    def next_time(self) -> Optional[Time]:
        """Earliest pending timed activity, or ``None`` when idle."""
        for when, _, entry in sorted(self._timed)[:]:
            if not self._entry_cancelled(entry):
                return when
        return None

    @staticmethod
    def _entry_cancelled(entry: object) -> bool:
        return bool(getattr(entry, "cancelled", False))

    # ------------------------------------------------------------------
    # Scheduling services used by events, processes and channels
    # ------------------------------------------------------------------
    def _push_timed(self, when: Time, entry: object) -> None:
        self._seq += 1
        heapq.heappush(self._timed, (when, self._seq, entry))

    def _schedule_timed_notify(self, event: Event, when: Time) -> _TimedNotification:
        pool = self._free_notifications
        if pool:
            entry = pool.pop()
            entry.time = when
            entry.event = event
            entry.cancelled = False
        else:
            entry = _TimedNotification(when, event)
        self._push_timed(when, entry)
        return entry

    def _schedule_delta_notify(self, event: Event) -> None:
        self._delta_events.append(event)

    def _cancel_delta_notify(self, event: Event) -> None:
        # Lazy cancellation: the delta phase re-checks ``event._pending``.
        pass

    def _immediate_notify(self, event: Event) -> None:
        event._trigger()

    def schedule_callback(self, delay: Time, fn) -> _TimedCallback:
        """Invoke ``fn()`` after ``delay`` simulated time.

        Returns a handle whose ``cancelled`` flag may be set to revoke
        the callback.  The callable runs during the timed notification
        phase, i.e. outside any process; it may notify events but must
        not block.
        """
        if delay < 0:
            raise SchedulerError(f"negative callback delay: {delay}")
        entry = _TimedCallback(self.now + delay, fn)
        self._push_timed(entry.time, entry)
        return entry

    def schedule_delta_callback(self, fn) -> None:
        """Invoke ``fn()`` in the next delta-notification phase.

        Unlike :meth:`schedule_callback` with zero delay (which fires in
        the same timed phase), this guarantees every process made
        runnable at the current instant has executed first.
        """
        self._delta_callbacks.append(fn)

    def _schedule_timeout(self, sensitivity, when: Time) -> _Timeout:
        pool = self._free_timeouts
        if pool:
            entry = pool.pop()
            entry.time = when
            entry.sensitivity = sensitivity
            entry.cancelled = False
        else:
            entry = _Timeout(when, sensitivity)
        self._push_timed(when, entry)
        return entry

    def _schedule_delta_resume(self, process: ProcessBase) -> None:
        self._delta_resumes.append(process)

    def _make_runnable(self, process: ProcessBase) -> None:
        process.state = ProcessState.RUNNABLE
        self._runnable.append(process)

    def _request_update(self, channel) -> None:
        if not getattr(channel, "_update_requested", False):
            channel._update_requested = True
            self._update_requests.append(channel)

    def _register_process(self, process: ProcessBase) -> None:
        self.processes.append(process)
        if isinstance(process, MethodProcess):
            if process.state is ProcessState.WAITING:
                return  # dont_initialize: wait for a static trigger
            process._enqueue()
            return
        if self._started:
            self._make_runnable(process)
        else:
            # queued for the initialization phase at the start of run()
            self._make_runnable(process)

    def _on_process_terminated(self, process: ProcessBase) -> None:
        if process._sensitivity is not None:
            process._sensitivity.cancel()
            process._sensitivity = None

    def _on_process_error(self, process: ProcessBase, exc: BaseException) -> None:
        self._pending_error = (process, exc)

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to return after the current process step."""
        self._stop_requested = True

    def run(
        self,
        duration: Optional[Time] = None,
        *,
        until: Optional[Time] = None,
        error_on_deadlock: bool = False,
    ) -> Time:
        """Advance the simulation.

        ``duration`` is relative to the current time; ``until`` is an
        absolute time (mutually exclusive).  With neither, the simulation
        runs until no activity remains.  Timed activity scheduled exactly
        *at* the end bound is **not** processed -- the kernel stops with
        ``now`` set to the bound, so back-to-back ``run(step)`` calls
        never double-process an instant.

        Returns the simulated time at which the run stopped.  With
        ``error_on_deadlock=True``, raises :class:`DeadlockError` if the
        run went idle while thread processes are still blocked.
        """
        if self._running:
            raise SchedulerError("run() is not reentrant")
        if duration is not None and until is not None:
            raise SchedulerError("pass either duration or until, not both")
        end: Optional[Time] = None
        if duration is not None:
            if duration < 0:
                raise SchedulerError(f"negative run duration: {duration}")
            end = self.now + duration
        elif until is not None:
            if until < self.now:
                raise SchedulerError(
                    f"until={format_time(until)} is in the past "
                    f"(now={format_time(self.now)})"
                )
            end = until

        self._running = True
        self._stop_requested = False
        self._started = True
        try:
            self._run_loop(end)
        finally:
            self._running = False
        if end is not None and not self._stop_requested:
            # everything strictly before ``end`` has been processed
            self.now = end
        if error_on_deadlock and not self.pending_activity():
            blocked = [
                p.name
                for p in self.processes
                if isinstance(p, Process)
                and not p.daemon
                and not p.terminated
                and p.state is ProcessState.WAITING
            ]
            if blocked:
                raise DeadlockError(
                    "simulation went idle with blocked processes: "
                    + ", ".join(sorted(blocked))
                )
        return self.now

    def _run_loop(self, end: Optional[Time]) -> None:
        delta_guard = 0
        # Hot-loop hoists: the phase queues and state sentinel are stable
        # objects (the loop snapshots-and-clears them rather than
        # rebinding), so bind them (and the deque's popleft) once.
        runnable = self._runnable
        popleft = runnable.popleft
        RUNNABLE = ProcessState.RUNNABLE
        TERMINATED = ProcessState.TERMINATED
        # The sanitizer is installed once at construction (or never), so
        # it can be hoisted; ``None`` keeps the hot loop hook-free.
        sanitizer = getattr(self, "sanitizer", None)
        delta_events = self._delta_events
        delta_resumes = self._delta_resumes
        delta_callbacks = self._delta_callbacks
        update_requests = self._update_requests
        while True:
            # --- evaluate phase ---------------------------------------
            ran_any = False
            while runnable:
                process = popleft()
                # a non-RUNNABLE state also covers terminated processes
                if process.state is not RUNNABLE:
                    continue
                ran_any = True
                self._current = process
                self.process_switch_count += 1
                if sanitizer is None:
                    process._step()
                else:
                    sanitizer.before_step(process)
                    process._step()
                    sanitizer.after_step(process)
                self._current = None
                if self._pending_error is not None:
                    process_, exc = self._pending_error
                    self._pending_error = None
                    raise SimulationError(
                        f"process {process_.name!r} raised at "
                        f"t={format_time(self.now)}: {exc!r}"
                    ) from exc
                if self._stop_requested:
                    return

            # --- update phase -----------------------------------------
            if update_requests:
                channels = update_requests[:]
                update_requests.clear()
                for channel in channels:
                    channel._update_requested = False
                    channel._update()

            # --- delta notification phase ------------------------------
            if delta_events or delta_resumes or delta_callbacks:
                self.delta_count += 1
                if ran_any:
                    delta_guard += 1
                    if delta_guard > self._max_delta_cycles:
                        raise SchedulerError(
                            f"more than {self._max_delta_cycles} delta cycles "
                            f"without time advancing at t={format_time(self.now)}; "
                            "the model probably has a zero-delay loop"
                        )
                events = delta_events[:]
                delta_events.clear()
                resumes = delta_resumes[:]
                delta_resumes.clear()
                callbacks = delta_callbacks[:]
                delta_callbacks.clear()
                for event in events:
                    if event._pending is _DELTA_PENDING:
                        event._trigger()
                for process in resumes:
                    if process.state is not TERMINATED:
                        process._on_wait_resolved(None)
                for fn in callbacks:
                    fn()
                if runnable:
                    continue

            # --- timed notification phase ------------------------------
            advanced = self._advance_time(end)
            if not advanced:
                return
            delta_guard = 0

    def _advance_time(self, end: Optional[Time]) -> bool:
        """Drain the earliest batch of timed entries; returns False when done.

        All entries scheduled at the earliest instant are popped in one
        heap pass.  Entries fired here may push *new* same-instant work
        (e.g. a zero-delay ``schedule_callback`` from inside a callback);
        the drain loop keeps going until the instant is exhausted, which
        preserves the original one-at-a-time semantics.
        """
        timed = self._timed
        pop = heapq.heappop
        free_notifications = self._free_notifications
        free_timeouts = self._free_timeouts
        while timed and timed[0][2].cancelled:
            entry = pop(timed)[2]
            cls = entry.__class__
            if cls is _TimedNotification:
                entry.event = None
                free_notifications.append(entry)
            elif cls is _Timeout:
                entry.sensitivity = None
                free_timeouts.append(entry)
        if not timed:
            return False
        when = timed[0][0]
        if end is not None and when >= end:
            return False
        if when < self.now:  # pragma: no cover - invariant guard
            raise SchedulerError(
                f"timed entry in the past: {format_time(when)} < "
                f"{format_time(self.now)}"
            )
        self.now = when
        while timed and timed[0][0] == when:
            entry = pop(timed)[2]
            cls = entry.__class__
            if cls is _TimedNotification:
                if not entry.cancelled:
                    entry.event._trigger()
                entry.event = None
                free_notifications.append(entry)
            elif cls is _Timeout:
                if not entry.cancelled:
                    entry.sensitivity.on_timeout()
                entry.sensitivity = None
                free_timeouts.append(entry)
            elif cls is _TimedCallback:
                if not entry.cancelled:
                    entry.fn()
            else:  # pragma: no cover - defensive
                raise SchedulerError(f"unknown timed entry: {entry!r}")
        return True
