"""A SystemC-like discrete-event simulation kernel in pure Python.

This package is the substrate on which the RTOS model of Le Moigne et
al. (DATE 2004) is rebuilt.  It reproduces the SystemC 2.0 semantics the
paper relies on: thread and method processes, events with immediate /
delta / timed notification, evaluate-update-delta phases, primitive
channels and clocks.

Quick tour::

    from repro.kernel import Simulator, wait_any
    from repro.kernel.time import US
"""

from .channels import EventQueue, Fifo, Mutex, Semaphore, Signal
from .clock import Clock, TickClock
from .event import Event
from .module import Module
from .process import (
    MethodProcess,
    Process,
    ProcessState,
    WaitEvents,
    WaitRequest,
    WaitTime,
    delta,
    wait_all,
    wait_any,
    wait_for,
    wait_on,
)
from .scheduler import KernelCore
from .simulator import Simulator
from .time import FS, MS, NS, PS, SEC, US, Time, format_time, parse_time

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Fifo",
    "FS",
    "KernelCore",
    "MethodProcess",
    "Module",
    "MS",
    "Mutex",
    "NS",
    "Process",
    "ProcessState",
    "PS",
    "SEC",
    "Semaphore",
    "Signal",
    "Simulator",
    "TickClock",
    "Time",
    "US",
    "WaitEvents",
    "WaitRequest",
    "WaitTime",
    "delta",
    "format_time",
    "parse_time",
    "wait_all",
    "wait_any",
    "wait_for",
    "wait_on",
]
