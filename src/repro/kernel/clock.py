"""Clock generators (``sc_clock`` equivalent plus a tick-event variant).

Two flavours are provided:

* :class:`Clock` -- a boolean :class:`~repro.kernel.channels.Signal`
  toggling with a given period/duty cycle, for RTL-ish hardware models.
* :class:`TickClock` -- a bare periodic :class:`Event`, which is what the
  paper's Figure 6 ``Clock`` hardware task needs (it "notifies the event
  Clk" every period).
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError
from .channels import Signal
from .event import Event
from .simulator import Simulator
from .time import Time, format_time


class Clock:
    """A free-running boolean clock signal.

    Parameters
    ----------
    period:
        Full cycle duration (femtoseconds).
    duty:
        Fraction of the period spent high, in ``(0, 1)``.
    start_time:
        Delay before the first posedge.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "clock",
        *,
        period: Time,
        duty: float = 0.5,
        start_time: Time = 0,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"clock period must be positive: {period}")
        if not 0.0 < duty < 1.0:
            raise SimulationError(f"clock duty must be in (0,1): {duty}")
        self.sim = sim
        self.name = sim.unique_name(name)
        self.period = period
        self.high_time = round(period * duty)
        self.low_time = period - self.high_time
        if self.high_time <= 0 or self.low_time <= 0:
            raise SimulationError(
                f"degenerate duty cycle for period {format_time(period)}"
            )
        self.signal = Signal(sim, f"{self.name}.sig", initial=False)
        self.posedge = Event(sim, f"{self.name}.posedge")
        self.negedge = Event(sim, f"{self.name}.negedge")
        self.cycle_count = 0
        self._stopped = False
        sim.schedule_callback(start_time, self._rise)

    def _rise(self) -> None:
        if self._stopped:
            return
        self.cycle_count += 1
        self.signal.write(True)
        self.posedge.notify_delta()
        self.sim.schedule_callback(self.high_time, self._fall)

    def _fall(self) -> None:
        if self._stopped:
            return
        self.signal.write(False)
        self.negedge.notify_delta()
        self.sim.schedule_callback(self.low_time, self._rise)

    def stop(self) -> None:
        """Freeze the clock (cannot be restarted)."""
        self._stopped = True

    def read(self) -> bool:
        return bool(self.signal.read())


class TickClock:
    """A periodic tick event -- the minimal hardware time base.

    Used to model timer interrupts and the paper's ``Clock`` hardware
    task.  The first tick fires at ``start_time + period`` (a timer must
    elapse once before ticking), unless ``immediate_first`` is set.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "tick",
        *,
        period: Time,
        start_time: Time = 0,
        immediate_first: bool = False,
        max_ticks: Optional[int] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"tick period must be positive: {period}")
        self.sim = sim
        self.name = sim.unique_name(name)
        self.period = period
        self.tick = Event(sim, f"{self.name}.tick")
        self.tick_count = 0
        self.max_ticks = max_ticks
        self._stopped = False
        first_delay = start_time if immediate_first else start_time + period
        sim.schedule_callback(first_delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.tick_count += 1
        self.tick.notify_delta()
        if self.max_ticks is not None and self.tick_count >= self.max_ticks:
            self._stopped = True
            return
        self.sim.schedule_callback(self.period, self._fire)

    def stop(self) -> None:
        """Stop ticking (cannot be restarted)."""
        self._stopped = True
