"""Simulation time: representation, units, parsing and formatting.

Simulated time is represented as a plain :class:`int` number of
**femtoseconds**, mirroring SystemC's default finest resolution.  Using a
bare integer (instead of a wrapper class) keeps the discrete-event inner
loop fast and makes arithmetic trivially correct: there is no floating
point anywhere in the kernel, so two notifications scheduled for "the same
time" always compare equal.

Unit constants are exported so model code reads naturally::

    from repro.kernel.time import US, MS

    yield wait_for(5 * US)          # five microseconds
    clock = Clock(sim, "clk", period=10 * MS)

Helpers convert to and from human-readable strings (``"1.5us"``) and
floating-point seconds, which is what most workload generators produce.
"""

from __future__ import annotations

import re
from typing import Union

#: One femtosecond -- the base resolution.  All times are ints of this unit.
FS = 1
#: One picosecond.
PS = 10**3
#: One nanosecond.
NS = 10**6
#: One microsecond.
US = 10**9
#: One millisecond.
MS = 10**12
#: One second.
SEC = 10**15

#: Ordered (suffix, multiplier) pairs used for parsing and formatting.
_UNITS = (
    ("s", SEC),
    ("ms", MS),
    ("us", US),
    ("ns", NS),
    ("ps", PS),
    ("fs", FS),
)

_UNIT_BY_NAME = {name: mult for name, mult in _UNITS}
# Common aliases.
_UNIT_BY_NAME["sec"] = SEC
_UNIT_BY_NAME["µs"] = US  # micro sign

#: Type alias for simulated time values (femtoseconds).
Time = int

_TIME_RE = re.compile(
    r"^\s*(?P<value>[0-9]+(?:\.[0-9]+)?)\s*(?P<unit>[a-zµ]+)\s*$"
)


def time_from_unit(value: Union[int, float, str], unit: str) -> Time:
    """Convert ``value`` expressed in ``unit`` into femtoseconds.

    Decimal strings are converted exactly (no float rounding), which
    matters for values with more significant digits than a double holds.

    >>> time_from_unit(5, "us")
    5000000000
    """
    try:
        mult = _UNIT_BY_NAME[unit.lower()]
    except KeyError:
        raise ValueError(f"unknown time unit: {unit!r}") from None
    if isinstance(value, int) and not isinstance(value, bool):
        return value * mult
    if isinstance(value, float):
        return round(value * mult)
    # exact decimal-string conversion
    text = str(value)
    if "." in text:
        int_part, frac_part = text.split(".", 1)
    else:
        int_part, frac_part = text, ""
    if not (int_part or frac_part):
        raise ValueError(f"cannot parse number: {value!r}")
    digits = int((int_part or "0") + frac_part) if (int_part + frac_part) else 0
    denom = 10 ** len(frac_part)
    total = digits * mult
    return (total + denom // 2) // denom


def parse_time(text: Union[str, int, float]) -> Time:
    """Parse a human-readable duration into femtoseconds.

    Accepts strings like ``"5us"``, ``"1.5 ms"`` or ``"10ns"``.  Integers
    pass through unchanged (they are assumed to already be femtoseconds);
    floats are rejected to avoid silent precision loss.

    >>> parse_time("15us")
    15000000000
    >>> parse_time(42)
    42
    """
    if isinstance(text, bool):  # bool is an int subclass; almost surely a bug
        raise TypeError("cannot interpret a bool as a time")
    if isinstance(text, int):
        return text
    if isinstance(text, float):
        raise TypeError(
            "refusing to interpret a bare float as femtoseconds; "
            "use time_from_unit(value, unit) or an explicit unit string"
        )
    match = _TIME_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse time: {text!r}")
    return time_from_unit(match.group("value"), match.group("unit"))


def format_time(t: Time, precision: int = 6) -> str:
    """Render ``t`` femtoseconds with the largest unit that keeps it >= 1.

    Conversion is exact integer arithmetic; ``precision`` caps the number
    of fractional digits (pass >= 15 for a lossless round trip through
    :func:`parse_time`).

    >>> format_time(15 * US)
    '15us'
    >>> format_time(1500 * NS)
    '1.5us'
    >>> format_time(0)
    '0s'
    """
    if t == 0:
        return "0s"
    sign = "-" if t < 0 else ""
    t = abs(t)
    for name, mult in _UNITS:
        if t >= mult:
            whole, rem = divmod(t, mult)
            if rem == 0:
                return f"{sign}{whole}{name}"
            width = len(str(mult)) - 1  # mult is a power of ten
            frac = str(rem).rjust(width, "0")
            if len(frac) > precision:
                # round to `precision` fractional digits
                scaled = int(frac[: precision + 1])
                scaled = (scaled + 5) // 10
                frac = str(scaled).rjust(precision, "0")
                if len(frac) > precision:  # carried into the integer part
                    whole += 1
                    frac = ""
            frac = frac.rstrip("0")
            if not frac:
                return f"{sign}{whole}{name}"
            return f"{sign}{whole}.{frac}{name}"
    return f"{sign}{t}fs"


def to_seconds(t: Time) -> float:
    """Convert femtoseconds to floating-point seconds (for reporting)."""
    return t / SEC


def from_seconds(seconds: float) -> Time:
    """Convert floating-point seconds to femtoseconds (rounded)."""
    return round(seconds * SEC)
