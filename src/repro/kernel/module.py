"""Hierarchical modules, the ``sc_module`` equivalent.

Modules give models a naming hierarchy (``top.cpu0.rtos``), own their
processes and events, and are the base class for both the MCSE
:class:`~repro.mcse.function.Function` and the RTOS
:class:`~repro.rtos.processor.Processor`, mirroring the UML diagram of
the paper's Figure 1 (both inherit from ``sc_module``).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Iterable, List, Optional, Union

from ..errors import ModelError
from .event import Event
from .process import MethodProcess, Process, ThreadBody
from .simulator import Simulator


class Module:
    """A named node in the model hierarchy.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Leaf name; the full name is derived from the parent chain.
    parent:
        Optional enclosing module.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        parent: Optional["Module"] = None,
    ) -> None:
        if not name:
            raise ModelError("module name must be non-empty")
        self.sim = sim
        self.basename = name
        self.parent = parent
        self.children: List["Module"] = []
        self._child_names: Dict[str, "Module"] = {}
        if parent is not None:
            parent._adopt(self)

    # ------------------------------------------------------------------
    # Hierarchy
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Fully qualified hierarchical name."""
        if self.parent is None:
            return self.basename
        return f"{self.parent.name}.{self.basename}"

    def _adopt(self, child: "Module") -> None:
        if child.basename in self._child_names:
            raise ModelError(
                f"duplicate child name {child.basename!r} under {self.name!r}"
            )
        self._child_names[child.basename] = child
        self.children.append(child)

    def child(self, basename: str) -> "Module":
        """Look up a direct child by its leaf name."""
        try:
            return self._child_names[basename]
        except KeyError:
            raise ModelError(
                f"{self.name!r} has no child named {basename!r}"
            ) from None

    def walk(self) -> Iterable["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # ------------------------------------------------------------------
    # Factories scoped to this module's name
    # ------------------------------------------------------------------
    def event(self, basename: str = "event") -> Event:
        return self.sim.event(f"{self.name}.{basename}")

    def thread(
        self,
        body: Union[Generator, ThreadBody],
        *args,
        name: Optional[str] = None,
        **kwargs,
    ) -> Process:
        if name is None:
            name = getattr(body, "__name__", "thread")
        return self.sim.thread(body, *args, name=f"{self.name}.{name}", **kwargs)

    def method(
        self,
        fn: Callable[[], object],
        sensitive: Iterable[Event] = (),
        *,
        name: Optional[str] = None,
        initialize: bool = True,
    ) -> MethodProcess:
        if name is None:
            name = getattr(fn, "__name__", "method")
        return self.sim.method(
            fn, sensitive, name=f"{self.name}.{name}", initialize=initialize
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
