"""Simulation processes: generator-based threads and method processes.

The kernel offers the two SystemC process flavours:

* **Thread processes** (:class:`Process`, ``SC_THREAD``): a Python
  generator that *yields* wait requests to the kernel and is resumed when
  the wait is satisfied.  This is the workhorse used for RTOS tasks.
* **Method processes** (:class:`MethodProcess`, ``SC_METHOD``): a plain
  callable re-invoked whenever one of its statically sensitive events
  triggers; it never blocks, but may override its next trigger once by
  returning a wait request (``next_trigger`` semantics).

Yield protocol
--------------

A thread process communicates with the kernel exclusively through
``yield``.  The yielded value is a *wait request*; for convenience some
raw values are auto-converted:

=====================================  =======================================
``yield 5 * US``                       wait for a duration (int femtoseconds)
``yield event``                        wait for one event
``yield (ev_a, ev_b)``                 wait for any of several events
``yield wait_any(a, b, timeout=t)``    first event, or ``None`` on timeout
``yield wait_all(a, b)``               wait until every event has triggered
``yield delta()``                      wait one delta cycle
=====================================  =======================================

The value *returned* by ``yield`` is the triggering :class:`Event` (for
single/any waits), or ``None`` for pure time waits, delta waits, timeouts
and all-waits.
"""

from __future__ import annotations

import enum
from typing import (
    TYPE_CHECKING,
    Callable,
    Generator,
    Iterable,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ProcessError, ProcessKilled
from .event import Event
from .time import Time

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import KernelCore


class ProcessState(enum.Enum):
    """Life-cycle states of a kernel process."""

    CREATED = "created"
    RUNNABLE = "runnable"
    RUNNING = "running"
    WAITING = "waiting"
    TERMINATED = "terminated"


# ---------------------------------------------------------------------------
# Wait requests
# ---------------------------------------------------------------------------
class WaitRequest:
    """Base class for everything a thread process may yield."""

    __slots__ = ()


class WaitTime(WaitRequest):
    """Suspend for a fixed duration (0 means one delta cycle)."""

    __slots__ = ("duration",)

    def __init__(self, duration: Time) -> None:
        if duration < 0:
            raise ProcessError(f"cannot wait a negative duration: {duration}")
        self.duration = duration


class WaitEvents(WaitRequest):
    """Suspend until event(s) trigger, with optional timeout.

    ``mode`` is ``"any"`` (resume on the first trigger) or ``"all"``
    (resume once every listed event has triggered at least once).
    """

    __slots__ = ("events", "mode", "timeout")

    def __init__(
        self,
        events: Sequence[Event],
        mode: str = "any",
        timeout: Optional[Time] = None,
    ) -> None:
        if not events:
            raise ProcessError("wait request needs at least one event")
        if mode not in ("any", "all"):
            raise ProcessError(f"unknown wait mode: {mode!r}")
        if timeout is not None and timeout < 0:
            raise ProcessError(f"negative wait timeout: {timeout}")
        self.events: Tuple[Event, ...] = tuple(events)
        self.mode = mode
        self.timeout = timeout


def _flatten_events(events: Sequence[object]) -> Tuple[Event, ...]:
    """Allow both ``wait_any(a, b)`` and ``wait_any([a, b])`` spellings."""
    if len(events) == 1 and isinstance(events[0], (list, tuple, set)):
        events = tuple(events[0])  # type: ignore[assignment]
    for ev in events:
        if not isinstance(ev, Event):
            raise ProcessError(f"not an Event: {ev!r}")
    return tuple(events)  # type: ignore[return-value]


def wait_for(duration: Time) -> WaitTime:
    """Build a wait request for a fixed simulated duration."""
    return WaitTime(duration)


def delta() -> WaitTime:
    """Build a wait request for a single delta cycle (zero time)."""
    return WaitTime(0)


def wait_on(event: Event, timeout: Optional[Time] = None) -> WaitEvents:
    """Build a wait request for one event (optionally bounded by a timeout)."""
    return WaitEvents((event,), "any", timeout)


def wait_any(*events: object, timeout: Optional[Time] = None) -> WaitEvents:
    """Build a wait request satisfied by the first of several events."""
    return WaitEvents(_flatten_events(events), "any", timeout)


def wait_all(*events: object, timeout: Optional[Time] = None) -> WaitEvents:
    """Build a wait request satisfied once all events have triggered."""
    return WaitEvents(_flatten_events(events), "all", timeout)


# ---------------------------------------------------------------------------
# Sensitivities
# ---------------------------------------------------------------------------
class _Timeout:
    """Cancellable timed-heap entry that resolves a sensitivity.

    ``sensitivity`` is anything with an ``on_timeout()`` method: a
    :class:`_Sensitivity` for event waits with a timeout, or the waiting
    :class:`ProcessBase` itself for pure timed waits (which then need no
    sensitivity object at all).  In the latter case the entry doubles as
    the process's cancellation handle, hence :meth:`cancel`.
    """

    __slots__ = ("time", "sensitivity", "cancelled")

    def __init__(self, time: Time, sensitivity) -> None:
        self.time = time
        self.sensitivity = sensitivity
        self.cancelled = False

    def cancel(self) -> None:
        """Revoke the timeout without waking its target (kill/throw path)."""
        self.cancelled = True


class _Sensitivity:
    """Dynamic sensitivity binding a suspended process to its wakeup.

    Exactly one sensitivity is live per waiting thread process.  It is
    resolved by the first matching trigger and then fully detached, so a
    stale event trigger can never wake a process twice.

    Resolved sensitivities are recycled through the kernel's free-list
    (see :meth:`_acquire`).  That is safe because resolution detaches
    the object from every event and from its process before it is
    pooled, and a pooled object can only be reused from a subsequent
    ``_install_wait`` -- which never runs while an event-trigger
    snapshot that might still name this object is being iterated.
    Cancelled sensitivities (kill/throw) are *not* pooled: a snapshot
    taken before the cancel may still reference them.
    """

    __slots__ = ("process", "events", "mode", "remaining", "timeout_entry", "resolved")

    def __init__(
        self,
        process: "ProcessBase",
        events: Tuple[Event, ...],
        mode: str,
    ) -> None:
        self.process = process
        self.events = events
        self.mode = mode
        self.remaining = set(events) if mode == "all" else None
        self.timeout_entry: Optional[_Timeout] = None
        self.resolved = False
        for ev in events:
            ev._attach(self)

    @staticmethod
    def _acquire(
        process: "ProcessBase",
        events: Tuple[Event, ...],
        mode: str,
    ) -> "_Sensitivity":
        """Pool-aware constructor: reuse a resolved sensitivity if any."""
        pool = process.sim._free_sensitivities
        if not pool:
            return _Sensitivity(process, events, mode)
        self = pool.pop()
        self.process = process
        self.events = events
        self.mode = mode
        self.remaining = set(events) if mode == "all" else None
        self.timeout_entry = None
        self.resolved = False
        for ev in events:
            ev._attach(self)
        return self

    def on_event(self, event: Event) -> None:
        if self.resolved:
            return
        if self.remaining is None:  # "any" mode
            self._resolve(event)
            return
        remaining = self.remaining
        remaining.discard(event)
        event._detach(self)
        if not remaining:
            self._resolve(None)

    def on_timeout(self) -> None:
        if not self.resolved:
            self._resolve(None)

    def cancel(self) -> None:
        """Forcibly detach without waking the process (used by kill)."""
        if self.resolved:
            return
        self.resolved = True
        self._detach_all()

    def _resolve(self, value: Optional[Event]) -> None:
        self.resolved = True
        self._detach_all()
        process = self.process
        self.process = None
        self.events = ()
        self.remaining = None
        process._on_wait_resolved(value)
        process.sim._free_sensitivities.append(self)

    def _detach_all(self) -> None:
        for ev in self.events:
            ev._detach(self)
        if self.timeout_entry is not None:
            self.timeout_entry.cancelled = True
            self.timeout_entry = None


class _StaticSensitivity:
    """Persistent sensitivity of a method process (never detaches)."""

    __slots__ = ("process",)

    def __init__(self, process: "MethodProcess", events: Iterable[Event]) -> None:
        self.process = process
        for ev in events:
            ev._attach(self)

    def on_event(self, event: Event) -> None:
        self.process._on_static_trigger(event)


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------
class ProcessBase:
    """State shared by thread and method processes."""

    __slots__ = (
        "sim",
        "name",
        "state",
        "terminated_event",
        "result",
        "exception",
        "_sensitivity",
        "step_count",
        "daemon",
    )

    def __init__(self, sim: "KernelCore", name: str) -> None:
        self.sim = sim
        self.name = name
        #: Daemon processes (service loops) are ignored by deadlock checks.
        self.daemon = False
        self.state = ProcessState.CREATED
        #: Delta-notified when the process terminates (for joins).
        self.terminated_event = Event(sim, f"{name}.terminated")
        self.result: object = None
        self.exception: Optional[BaseException] = None
        #: Live wakeup handle while WAITING: a :class:`_Sensitivity` for
        #: event waits, or the :class:`_Timeout` entry itself for pure
        #: timed waits.  Either way it has ``cancel()``.
        self._sensitivity = None
        #: Number of times the kernel has resumed this process.
        self.step_count = 0

    @property
    def terminated(self) -> bool:
        return self.state is ProcessState.TERMINATED

    def on_timeout(self) -> None:
        """Resolve a pure timed wait (the process is its own sensitivity)."""
        self._on_wait_resolved(None)

    def _on_wait_resolved(self, value: Optional[Event]) -> None:
        raise NotImplementedError

    def _step(self) -> None:
        raise NotImplementedError

    def _terminate(self, result: object = None,
                   exception: Optional[BaseException] = None) -> None:
        self.state = ProcessState.TERMINATED
        self.result = result
        self.exception = exception
        self.terminated_event.notify_delta()
        self.sim._on_process_terminated(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name} {self.state.value}>"


#: Signature of a thread-process body.
ThreadBody = Callable[..., Generator]


class Process(ProcessBase):
    """A thread process wrapping a Python generator (``SC_THREAD``)."""

    __slots__ = ("_gen", "_send_value", "_pending_throw")

    def __init__(
        self,
        sim: "KernelCore",
        name: str,
        body: Union[Generator, ThreadBody],
        args: Tuple = (),
        kwargs: Optional[dict] = None,
    ) -> None:
        super().__init__(sim, name)
        if isinstance(body, Generator):
            self._gen = body
        else:
            gen = body(*args, **(kwargs or {}))
            if not isinstance(gen, Generator):
                raise ProcessError(
                    f"thread body {name!r} did not return a generator; "
                    "did you forget a yield?"
                )
            self._gen = gen
        self._send_value: Optional[Event] = None
        self._pending_throw: Optional[BaseException] = None

    # -- kernel interface ------------------------------------------------
    def _on_wait_resolved(self, value: Optional[Event]) -> None:
        # inlined _make_runnable: this is the per-wakeup hot path
        self._sensitivity = None
        self._send_value = value
        self.state = ProcessState.RUNNABLE
        self.sim._runnable.append(self)

    def on_timeout(self) -> None:
        """Resolve a pure timed wait (the process is its own sensitivity)."""
        self._sensitivity = None
        self._send_value = None
        self.state = ProcessState.RUNNABLE
        self.sim._runnable.append(self)

    def _step(self) -> None:
        self.state = ProcessState.RUNNING
        self.step_count += 1
        throw = self._pending_throw
        self._pending_throw = None
        try:
            if throw is not None:
                request = self._gen.throw(throw)
            else:
                request = self._gen.send(self._send_value)
        except StopIteration as stop:
            self._terminate(result=stop.value)
            return
        except ProcessKilled:
            self._terminate()
            return
        except BaseException as exc:  # model bug: surface it to the caller
            self._terminate(exception=exc)
            self.sim._on_process_error(self, exc)
            return
        self._send_value = None
        self._install_wait(request)

    def _install_wait(self, request: object) -> None:
        sim = self.sim
        self.state = ProcessState.WAITING
        # Fast paths for the two dominant yield shapes: a raw duration
        # (int femtoseconds) and a single Event.  Both skip _normalize
        # and, for timed waits, skip the _Sensitivity allocation -- the
        # process itself is the timeout target (see _Timeout).
        cls = request.__class__
        if cls is int:
            if request > 0:
                self._sensitivity = sim._schedule_timeout(self, sim.now + request)
            elif request == 0:
                sim._schedule_delta_resume(self)
            else:
                raise ProcessError(
                    f"cannot wait a negative duration: {request}"
                )
            return
        if cls is Event:
            self._sensitivity = _Sensitivity._acquire(self, (request,), "any")
            return
        request = self._normalize(request)
        if isinstance(request, WaitTime):
            if request.duration == 0:
                sim._schedule_delta_resume(self)
                return
            self._sensitivity = sim._schedule_timeout(
                self, sim.now + request.duration
            )
            return
        assert isinstance(request, WaitEvents)
        sensitivity = _Sensitivity._acquire(self, request.events, request.mode)
        if request.timeout is not None:
            sensitivity.timeout_entry = sim._schedule_timeout(
                sensitivity, sim.now + request.timeout
            )
        self._sensitivity = sensitivity

    def _normalize(self, request: object) -> WaitRequest:
        if isinstance(request, WaitRequest):
            return request
        if isinstance(request, bool):
            raise ProcessError(f"{self.name}: yielded a bool; not a wait request")
        if isinstance(request, int):
            return WaitTime(request)
        if isinstance(request, Event):
            return WaitEvents((request,), "any", None)
        if isinstance(request, (tuple, list)):
            return WaitEvents(_flatten_events(tuple(request)), "any", None)
        raise ProcessError(
            f"{self.name}: yielded {request!r}, which is not a wait request"
        )

    # -- public control ---------------------------------------------------
    def kill(self) -> None:
        """Terminate the process as soon as the kernel regains control.

        A :class:`ProcessKilled` is thrown into the generator so that
        ``finally`` blocks in the model run.  Killing a terminated process
        is a no-op.
        """
        if self.terminated:
            return
        self._pending_throw = ProcessKilled()
        if self._sensitivity is not None:
            self._sensitivity.cancel()
            self._sensitivity = None
        if self.state is not ProcessState.RUNNABLE:
            self.sim._make_runnable(self)

    def throw(self, exception: BaseException) -> None:
        """Inject ``exception`` into the process at its current wait point."""
        if self.terminated:
            raise ProcessError(f"cannot throw into terminated process {self.name}")
        self._pending_throw = exception
        if self._sensitivity is not None:
            self._sensitivity.cancel()
            self._sensitivity = None
        if self.state is not ProcessState.RUNNABLE:
            self.sim._make_runnable(self)

    def join_request(self) -> WaitRequest:
        """Wait request that resumes the caller when this process ends.

        Safe to use even when the process has already terminated (the
        caller then just waits one delta cycle).
        """
        if self.terminated:
            return WaitTime(0)
        return WaitEvents((self.terminated_event,), "any", None)


class MethodProcess(ProcessBase):
    """A method process: a callable re-run on each sensitive trigger."""

    __slots__ = ("fn", "_static", "_queued", "_dynamic_active")

    def __init__(
        self,
        sim: "KernelCore",
        name: str,
        fn: Callable[[], object],
        sensitive: Iterable[Event] = (),
        initialize: bool = True,
    ) -> None:
        super().__init__(sim, name)
        self.fn = fn
        self._static = _StaticSensitivity(self, tuple(sensitive))
        self._queued = False
        self._dynamic_active = False
        if not initialize:
            self.state = ProcessState.WAITING

    def _on_static_trigger(self, event: Event) -> None:
        if self._dynamic_active or self.terminated:
            return  # next_trigger override in effect
        self._enqueue()

    def _on_wait_resolved(self, value: Optional[Event]) -> None:
        self._sensitivity = None
        self._dynamic_active = False
        self._enqueue()

    def _enqueue(self) -> None:
        if self._queued:
            return
        self._queued = True
        self.sim._make_runnable(self)

    def _step(self) -> None:
        self._queued = False
        self.state = ProcessState.RUNNING
        self.step_count += 1
        try:
            request = self.fn()
        except BaseException as exc:
            self._terminate(exception=exc)
            self.sim._on_process_error(self, exc)
            return
        if request is None:
            self.state = ProcessState.WAITING
            return
        # next_trigger override: dynamic sensitivity masks static for one shot
        if isinstance(request, int) and not isinstance(request, bool):
            request = WaitTime(request)
        elif isinstance(request, Event):
            request = WaitEvents((request,), "any", None)
        if isinstance(request, WaitTime):
            self._dynamic_active = True
            self.state = ProcessState.WAITING
            if request.duration == 0:
                self.sim._schedule_delta_resume(self)
                return
            self._sensitivity = self.sim._schedule_timeout(
                self, self.sim.now + request.duration
            )
            return
        if isinstance(request, WaitEvents):
            self._dynamic_active = True
            self.state = ProcessState.WAITING
            sensitivity = _Sensitivity._acquire(self, request.events, request.mode)
            if request.timeout is not None:
                sensitivity.timeout_entry = self.sim._schedule_timeout(
                    sensitivity, self.sim.now + request.timeout
                )
            self._sensitivity = sensitivity
            return
        raise ProcessError(
            f"{self.name}: method returned {request!r}; expected a wait "
            "request or None"
        )
