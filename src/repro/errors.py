"""Exception hierarchy for pyrtos-sc.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.  The
kernel, MCSE and RTOS layers each get a dedicated subtree because the
*reason* a simulation fails differs a lot between "your model is
structurally wrong" (caught at build time) and "the simulated system
misbehaved" (caught at run time).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The simulation kernel detected an illegal condition at run time."""


class ProcessError(SimulationError):
    """A simulation process performed an illegal operation.

    Typical causes: yielding an object that is not a wait request, calling
    :func:`wait` from outside a process, or re-starting a terminated
    process.
    """


class ProcessKilled(BaseException):
    """Thrown *into* a process generator to terminate it.

    Deliberately derived from :class:`BaseException` (like
    :class:`GeneratorExit`) so that well-meaning ``except Exception``
    blocks inside model code do not swallow a kill request.
    """


class SchedulerError(SimulationError):
    """The discrete-event scheduler reached an inconsistent state."""


class ModelError(ReproError):
    """A model is structurally invalid (bad wiring, duplicate names...)."""


class BuildError(ModelError):
    """A declarative system specification could not be elaborated."""


class RTOSError(ReproError):
    """The RTOS model detected an illegal condition."""


class TaskStateError(RTOSError):
    """An RTOS task attempted an illegal state transition."""


class DeadlockError(SimulationError):
    """Simulation ended while processes are still blocked on each other.

    Raised only when the caller asked :meth:`Simulator.run` to treat
    starvation as an error (``error_on_deadlock=True``).
    """


class ConstraintViolation(ReproError):
    """A declarative timing constraint was violated during simulation.

    Raised by :mod:`repro.analysis.constraints` when a constraint is
    configured with ``hard=True``; soft constraints are merely recorded.
    """


class TraceError(ReproError):
    """Trace recording or rendering failed."""


class VerifyError(ReproError):
    """The model checker was misused or a replay diverged.

    Raised by :mod:`repro.verify` when a scripted counterexample replay
    encounters a choice point that does not match the recorded schedule
    (the model changed under the trace), or when exploration options are
    inconsistent.
    """


class CampaignError(ReproError):
    """A batch campaign could not be dispatched or completed.

    Raised by :mod:`repro.campaign` when an experiment cannot be shipped
    to worker processes (not picklable), when cache keying fails, or --
    in strict mode -- when individual runs failed after all retries.
    """


class CorpusError(ReproError):
    """A scenario generator, batch matrix or fuzz loop was misused.

    Raised by :mod:`repro.corpus` for unknown generator kinds, malformed
    batch-matrix documents, and corrupt or unreproducible seed files.
    """


class RunTimeout(BaseException):
    """A campaign run exceeded its per-run wall-clock timeout.

    Like :class:`ProcessKilled`, deliberately derived from
    :class:`BaseException` so that ``except Exception`` blocks inside
    model code cannot swallow the deadline signal; the campaign runner
    converts it into a structured ``RunFailure`` record.
    """
