"""SVG export of TimeLine charts (no external dependencies).

Produces a self-contained SVG file laid out like the paper's Figure 6:
one horizontal band per task with colored state segments, vertical
arrows for relation accesses, hatched slices for RTOS overheads on
processor bands, and a time axis.
"""

from __future__ import annotations

from typing import List, Optional
from xml.sax.saxutils import escape

from ..kernel.time import Time, format_time
from .records import AccessKind, OverheadKind, TaskState
from .timeline import TimelineChart

#: Fill colors per task state.
STATE_COLORS = {
    TaskState.RUNNING: "#4caf50",
    TaskState.READY: "#ffc107",
    TaskState.WAITING: "#e0e0e0",
    TaskState.WAITING_RESOURCE: "#f44336",
    TaskState.CREATED: "#90caf9",
    TaskState.TERMINATED: "#9e9e9e",
}

OVERHEAD_COLORS = {
    OverheadKind.CONTEXT_SAVE: "#7e57c2",
    OverheadKind.SCHEDULING: "#5c6bc0",
    OverheadKind.CONTEXT_LOAD: "#26a69a",
}

_DOWN_ARROWS = (AccessKind.SIGNAL, AccessKind.WRITE)

ROW_HEIGHT = 26
ROW_GAP = 8
MARGIN_LEFT = 140
MARGIN_TOP = 30
MARGIN_BOTTOM = 40
AXIS_TICKS = 10


def render_svg(
    chart: TimelineChart,
    width: int = 1000,
    title: Optional[str] = None,
) -> str:
    """Render ``chart`` to an SVG document string."""
    span = max(chart.end - chart.start, 1)
    plot_width = width - MARGIN_LEFT - 20

    def x(t: Time) -> float:
        return MARGIN_LEFT + (t - chart.start) * plot_width / span

    rows = list(chart.task_segments) + list(chart.overheads)
    height = (
        MARGIN_TOP + len(rows) * (ROW_HEIGHT + ROW_GAP) + MARGIN_BOTTOM
    )
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="18" text-anchor="middle" '
            f'font-size="14">{escape(title)}</text>'
        )

    y = MARGIN_TOP
    for task in chart.task_segments:
        parts.append(
            f'<text x="{MARGIN_LEFT - 8}" y="{y + ROW_HEIGHT / 2 + 4}" '
            f'text-anchor="end">{escape(task)}</text>'
        )
        for segment in chart.task_segments[task]:
            x0, x1 = x(segment.start), x(segment.end)
            w = max(x1 - x0, 0.5)
            color = STATE_COLORS[segment.state]
            parts.append(
                f'<rect x="{x0:.2f}" y="{y}" width="{w:.2f}" '
                f'height="{ROW_HEIGHT}" fill="{color}">'
                f"<title>{escape(task)}: {segment.state.value} "
                f"{format_time(segment.start)}..{format_time(segment.end)}"
                f"</title></rect>"
            )
        for arrow in chart.arrows:
            if arrow.task != task:
                continue
            ax = x(arrow.time)
            down = arrow.kind in _DOWN_ARROWS
            y0, y1 = (y - 6, y + ROW_HEIGHT / 2) if down else (
                y + ROW_HEIGHT + 6, y + ROW_HEIGHT / 2,
            )
            parts.append(
                f'<line x1="{ax:.2f}" y1="{y0}" x2="{ax:.2f}" y2="{y1}" '
                f'stroke="black" stroke-width="1.5" '
                f'marker-end="url(#arrowhead)">'
                f"<title>{arrow.kind.value} {escape(arrow.relation)} at "
                f"{format_time(arrow.time)}</title></line>"
            )
        y += ROW_HEIGHT + ROW_GAP

    for processor in chart.overheads:
        parts.append(
            f'<text x="{MARGIN_LEFT - 8}" y="{y + ROW_HEIGHT / 2 + 4}" '
            f'text-anchor="end">{escape(processor)} (RTOS)</text>'
        )
        for window in chart.overheads[processor]:
            x0, x1 = x(window.start), x(window.end)
            parts.append(
                f'<rect x="{x0:.2f}" y="{y + 4}" '
                f'width="{max(x1 - x0, 0.5):.2f}" height="{ROW_HEIGHT - 8}" '
                f'fill="{OVERHEAD_COLORS[window.kind]}">'
                f"<title>{window.kind.value} "
                f"{format_time(window.start)}..{format_time(window.end)}"
                f"</title></rect>"
            )
        y += ROW_HEIGHT + ROW_GAP

    # time axis
    axis_y = y + 8
    parts.append(
        f'<line x1="{MARGIN_LEFT}" y1="{axis_y}" '
        f'x2="{MARGIN_LEFT + plot_width}" y2="{axis_y}" stroke="black"/>'
    )
    for i in range(AXIS_TICKS + 1):
        t = chart.start + span * i // AXIS_TICKS
        tx = x(t)
        parts.append(
            f'<line x1="{tx:.2f}" y1="{axis_y}" x2="{tx:.2f}" '
            f'y2="{axis_y + 5}" stroke="black"/>'
            f'<text x="{tx:.2f}" y="{axis_y + 18}" text-anchor="middle" '
            f'font-size="10">{format_time(t)}</text>'
        )

    parts.append(
        '<defs><marker id="arrowhead" markerWidth="6" markerHeight="6" '
        'refX="3" refY="5" orient="auto">'
        '<path d="M0,0 L6,0 L3,6 z" fill="black"/></marker></defs>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(chart: TimelineChart, path: str, **kwargs) -> None:
    """Render and write the chart to ``path``."""
    with open(path, "w") as handle:
        handle.write(render_svg(chart, **kwargs))
