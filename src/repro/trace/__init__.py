"""Trace recording, TimeLine charts, statistics and exporters.

The result-exploitation layer of the paper's §5: attach a
:class:`TraceRecorder` to a simulator, run, then build a
:class:`TimelineChart` (ASCII or SVG), compute the Figure-8 statistics,
or export to VCD for a waveform viewer.
"""

from .records import (
    AccessKind,
    AccessRecord,
    InterruptRecord,
    MarkerRecord,
    MigrationRecord,
    OverheadKind,
    OverheadRecord,
    PreemptionRecord,
    StateRecord,
    TaskState,
    TraceRecord,
)
from .diff import TraceDivergence, diff_traces, format_diff, traces_equal
from .html import render_report, save_report
from .recorder import TraceRecorder
from .statistics import (
    RelationStats,
    TaskStats,
    format_report,
    relation_stats,
    task_stats_from_functions,
    task_stats_from_records,
)
from .svg import render_svg, save_svg
from .timeline import Arrow, OverheadWindow, Segment, TimelineChart
from .vcd import save_vcd, write_vcd

__all__ = [
    "AccessKind",
    "AccessRecord",
    "Arrow",
    "InterruptRecord",
    "MarkerRecord",
    "MigrationRecord",
    "OverheadKind",
    "OverheadRecord",
    "OverheadWindow",
    "PreemptionRecord",
    "RelationStats",
    "Segment",
    "StateRecord",
    "TaskState",
    "TaskStats",
    "TimelineChart",
    "TraceDivergence",
    "TraceRecord",
    "TraceRecorder",
    "diff_traces",
    "format_diff",
    "traces_equal",
    "format_report",
    "relation_stats",
    "render_report",
    "render_svg",
    "save_report",
    "save_svg",
    "save_vcd",
    "task_stats_from_functions",
    "task_stats_from_records",
    "write_vcd",
]
