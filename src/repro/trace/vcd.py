"""VCD (Value Change Dump) export of traces.

Writes an IEEE-1364-style VCD file so task states and processor activity
can be inspected in any waveform viewer (GTKWave and friends).  Each
task becomes a string-valued variable holding its state; each processor
gets a string variable holding the running task's name plus a wire that
pulses on preemptions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TextIO

from ..kernel.time import Time
from .records import PreemptionRecord, StateRecord
from .recorder import TraceRecorder

#: VCD identifier alphabet (printable ASCII as per the standard).
_ID_ALPHABET = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Dense VCD identifier for variable ``index``."""
    chars = []
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[digit])
    return "".join(chars)


def write_vcd(
    recorder: TraceRecorder,
    handle: TextIO,
    timescale: str = "1fs",
    date: str = "simulation",
) -> None:
    """Serialize the recorder's state/preemption records as VCD."""
    state_records = recorder.of_type(StateRecord)
    preemptions = recorder.of_type(PreemptionRecord)

    tasks: List[str] = []
    processors: List[str] = []
    for record in state_records:
        if record.task not in tasks:
            tasks.append(record.task)
        if record.processor and record.processor not in processors:
            processors.append(record.processor)
    for record in preemptions:
        if record.processor not in processors:
            processors.append(record.processor)

    task_ids: Dict[str, str] = {}
    cpu_ids: Dict[str, str] = {}
    preempt_ids: Dict[str, str] = {}
    counter = 0
    for task in tasks:
        task_ids[task] = _identifier(counter)
        counter += 1
    for cpu in processors:
        cpu_ids[cpu] = _identifier(counter)
        counter += 1
        preempt_ids[cpu] = _identifier(counter)
        counter += 1

    handle.write(f"$date {date} $end\n")
    handle.write("$version pyrtos-sc trace export $end\n")
    handle.write(f"$timescale {timescale} $end\n")
    handle.write("$scope module system $end\n")
    for task, ident in task_ids.items():
        safe = task.replace(" ", "_")
        handle.write(f"$var string 1 {ident} {safe}_state $end\n")
    for cpu in processors:
        safe = cpu.replace(" ", "_")
        handle.write(f"$var string 1 {cpu_ids[cpu]} {safe}_running $end\n")
        handle.write(f"$var wire 1 {preempt_ids[cpu]} {safe}_preempt $end\n")
    handle.write("$upscope $end\n$enddefinitions $end\n")

    # initial values
    handle.write("#0\n")
    for ident in task_ids.values():
        handle.write(f"sUNBORN {ident}\n")
    for cpu in processors:
        handle.write(f"sidle {cpu_ids[cpu]}\n")
        handle.write(f"0{preempt_ids[cpu]}\n")

    # merge records in time order (recorder preserves it already)
    running: Dict[str, str] = {}
    events = sorted(
        [(r.time, 0, r) for r in state_records]
        + [(r.time, 1, r) for r in preemptions],
        key=lambda item: (item[0], item[1]),
    )
    last_time: Optional[Time] = 0
    pulse_resets: List[str] = []
    for time, _, record in events:
        if time != last_time:
            # close preemption pulses one step after they were raised
            if pulse_resets:
                handle.write(f"#{last_time + 1}\n")
                for ident in pulse_resets:
                    handle.write(f"0{ident}\n")
                pulse_resets = []
            handle.write(f"#{time}\n")
            last_time = time
        if isinstance(record, StateRecord):
            handle.write(f"s{record.state.value} {task_ids[record.task]}\n")
            if record.processor:
                cpu = record.processor
                if record.state.value == "running":
                    running[cpu] = record.task
                    handle.write(f"s{record.task} {cpu_ids[cpu]}\n")
                elif running.get(cpu) == record.task:
                    running.pop(cpu, None)
                    handle.write(f"sidle {cpu_ids[cpu]}\n")
        else:
            ident = preempt_ids[record.processor]
            handle.write(f"1{ident}\n")
            pulse_resets.append(ident)
    if pulse_resets and last_time is not None:
        handle.write(f"#{last_time + 1}\n")
        for ident in pulse_resets:
            handle.write(f"0{ident}\n")


def save_vcd(recorder: TraceRecorder, path: str, **kwargs) -> None:
    """Write the recorder contents to a VCD file at ``path``."""
    with open(path, "w") as handle:
        write_vcd(recorder, handle, **kwargs)
