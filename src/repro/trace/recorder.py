"""The trace recorder: collects records and serves typed views.

Attach a recorder to a simulator and every layer starts emitting::

    recorder = TraceRecorder(sim)     # attaches itself
    ... run ...
    recorder.state_records("Function_1")
    recorder.save_jsonl("trace.jsonl")

Recording costs one list append per record; with no recorder attached
the emission sites are no-ops, so long benchmark runs can go untraced.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Callable, Iterable, List, Optional, Type

from ..kernel.simulator import Simulator
from ..kernel.time import Time
from .records import (
    AccessRecord,
    InterruptRecord,
    MarkerRecord,
    MigrationRecord,
    OverheadRecord,
    PreemptionRecord,
    StateRecord,
    TraceRecord,
)


class TraceRecorder:
    """An append-only store of trace records with typed accessors."""

    def __init__(self, sim: Optional[Simulator] = None,
                 limit: Optional[int] = None) -> None:
        self.records: List[TraceRecord] = []
        self.limit = limit
        self.dropped = 0
        self.sim = sim
        if sim is not None:
            sim.set_recorder(self)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add(self, record: TraceRecord) -> None:
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(record)

    def mark(self, label: str, task: Optional[str] = None) -> None:
        """Insert a free-form marker at the current time."""
        time = self.sim.now if self.sim is not None else 0
        self.add(MarkerRecord(time, label, task))

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Typed views
    # ------------------------------------------------------------------
    def of_type(self, record_type: Type[TraceRecord],
                predicate: Optional[Callable] = None) -> List[TraceRecord]:
        out = [r for r in self.records if type(r) is record_type]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return out

    def state_records(self, task: Optional[str] = None) -> List[StateRecord]:
        records = self.of_type(StateRecord)
        if task is not None:
            records = [r for r in records if r.task == task]
        return records

    def accesses(self, relation: Optional[str] = None) -> List[AccessRecord]:
        records = self.of_type(AccessRecord)
        if relation is not None:
            records = [r for r in records if r.relation == relation]
        return records

    def overheads(self, processor: Optional[str] = None) -> List[OverheadRecord]:
        records = self.of_type(OverheadRecord)
        if processor is not None:
            records = [r for r in records if r.processor == processor]
        return records

    def preemptions(self) -> List[PreemptionRecord]:
        return self.of_type(PreemptionRecord)

    def interrupts(self) -> List[InterruptRecord]:
        return self.of_type(InterruptRecord)

    def markers(self) -> List[MarkerRecord]:
        return self.of_type(MarkerRecord)

    def migrations(self, task: Optional[str] = None) -> List[MigrationRecord]:
        records = self.of_type(MigrationRecord)
        if task is not None:
            records = [r for r in records if r.task == task]
        return records

    def tasks(self) -> List[str]:
        """Names of all tasks that ever changed state, in first-seen order."""
        seen = {}
        for record in self.of_type(StateRecord):
            seen.setdefault(record.task, None)
        return list(seen)

    def between(self, start: Time, end: Time) -> List[TraceRecord]:
        """Records with start <= time < end."""
        return [r for r in self.records if start <= r.time < end]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dicts(self) -> Iterable[dict]:
        for record in self.records:
            data = asdict(record)
            data["type"] = type(record).__name__
            for key, value in list(data.items()):
                if hasattr(value, "value"):  # enums
                    data[key] = value.value
            yield data

    def save_jsonl(self, path: str) -> None:
        """Write one JSON object per record (enums as their value strings)."""
        with open(path, "w") as handle:
            for data in self.to_dicts():
                handle.write(json.dumps(data, default=repr) + "\n")

    @classmethod
    def from_dicts(cls, dicts: Iterable[dict]) -> "TraceRecorder":
        """Rebuild a recorder from :meth:`to_dicts`-shaped payloads.

        Payload ``value`` fields that were repr-serialized come back as
        strings; everything the timeline/statistics pipelines use
        (times, tasks, states, kinds) round-trips exactly.  Unknown or
        future record kinds are skipped rather than failing the load.
        """
        from .records import (
            AccessKind,
            OverheadKind,
            TaskState,
        )

        type_map = {
            "StateRecord": StateRecord,
            "AccessRecord": AccessRecord,
            "OverheadRecord": OverheadRecord,
            "PreemptionRecord": PreemptionRecord,
            "InterruptRecord": InterruptRecord,
            "MarkerRecord": MarkerRecord,
            "MigrationRecord": MigrationRecord,
        }
        enum_fields = {
            ("StateRecord", "state"): TaskState,
            ("AccessRecord", "kind"): AccessKind,
            ("OverheadRecord", "kind"): OverheadKind,
        }
        recorder = cls()
        for data in dicts:
            data = dict(data)
            type_name = data.pop("type", None)
            record_cls = type_map.get(type_name)
            if record_cls is None:
                continue
            for (owner, field), enum_cls in enum_fields.items():
                if owner == type_name and field in data:
                    data[field] = enum_cls(data[field])
            recorder.add(record_cls(**data))
        return recorder

    @classmethod
    def load_jsonl(cls, path: str) -> "TraceRecorder":
        """Rebuild a recorder from a save_jsonl file (offline analysis)."""
        def lines():
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        yield json.loads(line)

        return cls.from_dicts(lines())
