"""Self-contained HTML simulation reports.

Bundles everything the paper's tool shows -- the TimeLine chart (as
embedded SVG), the Figure-8 statistics tables, processor counters and an
optional timing-constraint verdict -- into one dependency-free HTML file
a designer can archive or mail around.
"""

from __future__ import annotations

from typing import Iterable, List, Optional
from xml.sax.saxutils import escape

from ..kernel.time import format_time
from .recorder import TraceRecorder
from .statistics import (
    RelationStats,
    TaskStats,
    relation_stats,
    task_stats_from_functions,
)
from .svg import render_svg
from .timeline import TimelineChart

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { background: #f0f0f0; }
.pass { color: #2e7d32; font-weight: 600; }
.fail { color: #c62828; font-weight: 600; }
.meta { color: #666; font-size: 0.9em; }
"""


def _task_table(stats: List[TaskStats]) -> str:
    rows = [
        "<table><tr><th>task</th><th>processor</th><th>activity</th>"
        "<th>preempted</th><th>ready</th><th>waiting</th>"
        "<th>resource</th></tr>"
    ]
    for s in stats:
        rows.append(
            f"<tr><td>{escape(s.name)}</td>"
            f"<td>{escape(s.processor or '-')}</td>"
            f"<td>{s.activity_ratio:.2%}</td>"
            f"<td>{s.preempted_ratio:.2%}</td>"
            f"<td>{s.ready_ratio:.2%}</td>"
            f"<td>{s.waiting_ratio:.2%}</td>"
            f"<td>{s.waiting_resource_ratio:.2%}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _relation_table(stats: List[RelationStats]) -> str:
    rows = [
        "<table><tr><th>relation</th><th>kind</th><th>utilization</th>"
        "<th>accesses</th><th>blocked</th></tr>"
    ]
    for s in stats:
        rows.append(
            f"<tr><td>{escape(s.name)}</td><td>{s.kind}</td>"
            f"<td>{s.utilization:.2%}</td><td>{s.access_count}</td>"
            f"<td>{s.blocked_count}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _processor_table(processors: Iterable) -> str:
    rows = [
        "<table><tr><th>processor</th><th>engine</th><th>policy</th>"
        "<th>utilization</th><th>dispatches</th><th>preemptions</th>"
        "<th>overhead</th></tr>"
    ]
    for cpu in processors:
        info = cpu.stats()
        rows.append(
            f"<tr><td>{escape(info['processor'])}</td>"
            f"<td>{info['engine']}</td><td>{info['policy']}</td>"
            f"<td>{info['utilization']:.2%}</td>"
            f"<td>{info['dispatches']}</td><td>{info['preemptions']}</td>"
            f"<td>{format_time(info['overhead_time'])}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _constraint_section(constraints, recorder: TraceRecorder) -> str:
    rows = ["<table><tr><th>constraint</th><th>verdict</th>"
            "<th>details</th></tr>"]
    for constraint in constraints.constraints:
        violations = constraint.check(recorder)
        verdict = (
            '<span class="pass">PASS</span>' if not violations
            else f'<span class="fail">FAIL ({len(violations)})</span>'
        )
        details = "<br>".join(escape(v.detail) for v in violations[:3])
        rows.append(
            f"<tr><td>{escape(constraint.name)}</td><td>{verdict}</td>"
            f"<td>{details}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def render_report(
    system,
    recorder: TraceRecorder,
    *,
    title: Optional[str] = None,
    constraints=None,
    svg_width: int = 1100,
) -> str:
    """Render a complete HTML report for a finished simulation.

    ``system`` is the :class:`~repro.mcse.model.System` that ran with
    ``recorder`` attached; ``constraints`` is an optional
    :class:`~repro.analysis.constraints.ConstraintSet`.
    """
    title = title or f"Simulation report: {system.name}"
    chart = TimelineChart.from_recorder(recorder)
    svg = render_svg(chart, width=svg_width)
    tasks = task_stats_from_functions(system.functions.values())
    relations = relation_stats(system.relations.values())

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p class='meta'>simulated time: {format_time(system.now)} "
        f"&mdash; {len(recorder)} trace records &mdash; "
        f"{len(system.functions)} tasks on "
        f"{len(system.processors)} RTOS processor(s)</p>",
        "<h2>TimeLine</h2>",
        svg,
        "<h2>Task statistics (Figure 8)</h2>",
        _task_table(tasks),
    ]
    if relations:
        parts += ["<h2>Relations</h2>", _relation_table(relations)]
    if system.processors:
        parts += ["<h2>Processors</h2>",
                  _processor_table(system.processors.values())]
    if constraints is not None and constraints.constraints:
        parts += ["<h2>Timing constraints</h2>",
                  _constraint_section(constraints, recorder)]
    parts.append("</body></html>")
    return "\n".join(parts)


def save_report(system, recorder: TraceRecorder, path: str, **kwargs) -> None:
    """Render and write the HTML report to ``path``."""
    with open(path, "w") as handle:
        handle.write(render_report(system, recorder, **kwargs))
