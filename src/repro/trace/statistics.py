"""Whole-run statistics: the paper's Figure 8.

From a simulation the paper's tool reports, per task, the **activity
ratio** (1), the **preempted ratio** (2) and the **waiting-on-resource
ratio** (3), plus per relation the **utilization ratio** (4).  This
module computes all four, two independent ways:

* :func:`task_stats_from_functions` -- from the online accumulators every
  function keeps (cheap, always available);
* :func:`task_stats_from_records` -- by replaying the recorded trace
  (exactly what a display tool would do).

The test suite cross-checks both paths against each other, which guards
the whole state-accounting pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from ..kernel.time import Time, format_time
from .records import StateRecord, TaskState
from .recorder import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from ..mcse.function import Function
    from ..mcse.relations import Relation


@dataclass
class TaskStats:
    """Per-task ratios of the Figure-8 table."""

    name: str
    processor: Optional[str]
    total: Time
    running: Time
    ready: Time
    preempted: Time
    waiting: Time
    waiting_resource: Time

    @property
    def activity_ratio(self) -> float:
        """Fraction of time executing on the processor (Fig. 8 (1))."""
        return self.running / self.total if self.total else 0.0

    @property
    def preempted_ratio(self) -> float:
        """Fraction of time preempted -- Ready entered by eviction (Fig. 8 (2))."""
        return self.preempted / self.total if self.total else 0.0

    @property
    def ready_ratio(self) -> float:
        """Fraction of time Ready for any reason."""
        return self.ready / self.total if self.total else 0.0

    @property
    def waiting_ratio(self) -> float:
        """Fraction of time waiting for a synchronization."""
        return self.waiting / self.total if self.total else 0.0

    @property
    def waiting_resource_ratio(self) -> float:
        """Fraction of time blocked on mutual exclusion (Fig. 8 (3))."""
        return self.waiting_resource / self.total if self.total else 0.0


@dataclass
class RelationStats:
    """Per-relation utilization of the Figure-8 table (4)."""

    name: str
    kind: str
    utilization: float
    access_count: int
    blocked_count: int
    mean_occupancy: float


def task_stats_from_functions(
    functions: Iterable["Function"], total: Optional[Time] = None
) -> List[TaskStats]:
    """Compute task statistics from the functions' online accumulators."""
    stats = []
    for fn in functions:
        end = total if total is not None else fn.sim.now
        durations = dict(fn.state_durations)
        if fn.state is not None:
            durations[fn.state] = durations.get(fn.state, 0) + (
                fn.sim.now - fn._state_since
            )
        stats.append(
            TaskStats(
                name=fn.name,
                processor=fn.processor_name,
                total=end,
                running=durations.get(TaskState.RUNNING, 0),
                ready=durations.get(TaskState.READY, 0),
                preempted=fn.preempted_time,
                waiting=durations.get(TaskState.WAITING, 0),
                waiting_resource=durations.get(TaskState.WAITING_RESOURCE, 0),
            )
        )
    return stats


def task_stats_from_records(
    recorder: TraceRecorder, total: Optional[Time] = None
) -> List[TaskStats]:
    """Compute task statistics by replaying the recorded trace."""
    records = recorder.of_type(StateRecord)
    if total is None:
        total = max((r.time for r in recorder.records), default=0)
    per_task: Dict[str, Dict] = {}
    open_state: Dict[str, StateRecord] = {}
    for record in records:
        previous = open_state.get(record.task)
        entry = per_task.setdefault(
            record.task,
            {
                "processor": record.processor,
                "durations": {},
                "preempted": 0,
            },
        )
        if record.processor is not None:
            entry["processor"] = record.processor
        if previous is not None:
            elapsed = record.time - previous.time
            durations = entry["durations"]
            durations[previous.state] = durations.get(previous.state, 0) + elapsed
            if previous.state is TaskState.READY and previous.reason == "preempted":
                entry["preempted"] += elapsed
        open_state[record.task] = record
    for task, record in open_state.items():
        elapsed = total - record.time
        if elapsed > 0:
            entry = per_task[task]
            durations = entry["durations"]
            durations[record.state] = durations.get(record.state, 0) + elapsed
            if record.state is TaskState.READY and record.reason == "preempted":
                entry["preempted"] += elapsed
    stats = []
    for task, entry in per_task.items():
        durations = entry["durations"]
        stats.append(
            TaskStats(
                name=task,
                processor=entry["processor"],
                total=total,
                running=durations.get(TaskState.RUNNING, 0),
                ready=durations.get(TaskState.READY, 0),
                preempted=entry["preempted"],
                waiting=durations.get(TaskState.WAITING, 0),
                waiting_resource=durations.get(TaskState.WAITING_RESOURCE, 0),
            )
        )
    return stats


def relation_stats(
    relations: Iterable["Relation"], now: Optional[Time] = None
) -> List[RelationStats]:
    """Compute per-relation utilization (Fig. 8 (4)).

    Utilization is defined per relation kind: fraction of time locked for
    shared variables, mean buffer occupancy over capacity for bounded
    queues, and mean pending-signal level for memorizing events.
    """
    from ..mcse.queues import MessageQueue
    from ..mcse.shared import SharedVariable

    stats = []
    for relation in relations:
        mean_occ = relation.mean_occupancy()
        if isinstance(relation, SharedVariable):
            utilization = relation.utilization()
            kind = "shared"
        elif isinstance(relation, MessageQueue):
            kind = "queue"
            if relation.capacity:
                utilization = mean_occ / relation.capacity
            else:
                utilization = mean_occ
        else:
            kind = "event"
            utilization = mean_occ
        stats.append(
            RelationStats(
                name=relation.name,
                kind=kind,
                utilization=utilization,
                access_count=relation.access_count,
                blocked_count=relation.blocked_count,
                mean_occupancy=mean_occ,
            )
        )
    return stats


def format_report(
    task_stats: List[TaskStats],
    rel_stats: Optional[List[RelationStats]] = None,
    processors: Optional[Iterable] = None,
    domains: Optional[Iterable] = None,
) -> str:
    """Render the Figure-8 statistics as a fixed-width text table."""
    lines = []
    name_w = max([len(s.name) for s in task_stats] + [4])
    lines.append(
        f"{'task':{name_w}}  {'cpu':10}  {'activity':>8}  {'preempted':>9}  "
        f"{'ready':>7}  {'waiting':>7}  {'resource':>8}"
    )
    for s in task_stats:
        lines.append(
            f"{s.name:{name_w}}  {s.processor or '-':10}  "
            f"{s.activity_ratio:8.2%}  {s.preempted_ratio:9.2%}  "
            f"{s.ready_ratio:7.2%}  {s.waiting_ratio:7.2%}  "
            f"{s.waiting_resource_ratio:8.2%}"
        )
    if rel_stats:
        lines.append("")
        rel_w = max([len(s.name) for s in rel_stats] + [8])
        lines.append(
            f"{'relation':{rel_w}}  {'kind':6}  {'util':>7}  "
            f"{'accesses':>8}  {'blocked':>7}"
        )
        for s in rel_stats:
            lines.append(
                f"{s.name:{rel_w}}  {s.kind:6}  {s.utilization:7.2%}  "
                f"{s.access_count:8d}  {s.blocked_count:7d}"
            )
    if processors:
        lines.append("")
        for cpu in processors:
            info = cpu.stats()
            line = (
                f"processor {info['processor']} ({info['engine']}, "
                f"{info['policy']}): util {info['utilization']:.2%}, "
                f"{info['dispatches']} dispatches, "
                f"{info['preemptions']} preemptions, "
                f"overhead {format_time(info['overhead_time'])}"
            )
            if info.get("migrations"):
                line += f", {info['migrations']} migrations"
            lines.append(line)
    if domains:
        lines.append("")
        for domain in domains:
            info = domain.stats()
            lines.append(
                f"domain {info['domain']} ({info['kind']}, {info['policy']}):"
                f" {len(info['processors'])} cores, "
                f"{info['migrations']} migrations, "
                f"mean util {info['mean_utilization']:.2%}"
            )
    return "\n".join(lines)
