"""TimeLine charts: the paper's main result-exploitation view (§5).

A TimeLine chart displays, per task, its state over time (Running,
Ready, Waiting, Waiting-for-resource) plus arrows for every relation
access, and per processor the RTOS overhead windows.  The paper reads
reaction times, overhead windows and blocking intervals directly off
this chart; :class:`TimelineChart` exposes the same data
programmatically (segments and arrows) and renders it as ASCII art; the
SVG exporter (:mod:`repro.trace.svg`) produces the graphical version.

ASCII legend::

    #  running            .  waiting (synchronization)
    =  ready (preempted or waiting for the processor)
    m  waiting for resource (mutual exclusion)
    c  created            x  terminated
    s/S/l  context-save / scheduling / context-load (processor rows)
    markers: v write/signal down-arrow, ^ read/wait up-arrow, L/U lock/unlock
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import TraceError
from ..kernel.time import Time, format_time
from .records import (
    AccessKind,
    AccessRecord,
    OverheadKind,
    OverheadRecord,
    StateRecord,
    TaskState,
)
from .recorder import TraceRecorder

#: One character per state for the ASCII rendering.
STATE_SYMBOLS = {
    TaskState.RUNNING: "#",
    TaskState.READY: "=",
    TaskState.WAITING: ".",
    TaskState.WAITING_RESOURCE: "m",
    TaskState.CREATED: "c",
    TaskState.TERMINATED: "x",
}

ACCESS_SYMBOLS = {
    AccessKind.SIGNAL: "v",
    AccessKind.WRITE: "v",
    AccessKind.WAIT: "^",
    AccessKind.READ: "^",
    AccessKind.LOCK: "L",
    AccessKind.UNLOCK: "U",
}

OVERHEAD_SYMBOLS = {
    OverheadKind.CONTEXT_SAVE: "s",
    OverheadKind.SCHEDULING: "S",
    OverheadKind.CONTEXT_LOAD: "l",
}


@dataclass(frozen=True)
class Segment:
    """A task stayed in ``state`` during [start, end)."""

    start: Time
    end: Time
    state: TaskState


@dataclass(frozen=True)
class Arrow:
    """A relation access drawn as a vertical arrow."""

    time: Time
    task: str
    relation: str
    kind: AccessKind
    blocked: bool


@dataclass(frozen=True)
class OverheadWindow:
    """An RTOS overhead slice on a processor row."""

    start: Time
    end: Time
    kind: OverheadKind
    processor: str
    task: Optional[str]


class TimelineChart:
    """The chart model: per-task segments, arrows, overhead windows."""

    def __init__(self, start: Time, end: Time) -> None:
        if end < start:
            raise TraceError(f"empty time window: {start}..{end}")
        self.start = start
        self.end = end
        self.task_segments: Dict[str, List[Segment]] = {}
        self.arrows: List[Arrow] = []
        self.overheads: Dict[str, List[OverheadWindow]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_recorder(
        cls,
        recorder: TraceRecorder,
        start: Time = 0,
        end: Optional[Time] = None,
    ) -> "TimelineChart":
        """Build the chart from recorded state/access/overhead records."""
        if end is None:
            end = max((r.time for r in recorder.records), default=0)
        chart = cls(start, end)
        open_state: Dict[str, Tuple[Time, TaskState]] = {}
        for record in recorder.records:
            if isinstance(record, StateRecord):
                previous = open_state.get(record.task)
                if previous is not None:
                    seg_start, state = previous
                    chart._add_segment(record.task, seg_start, record.time, state)
                open_state[record.task] = (record.time, record.state)
            elif isinstance(record, AccessRecord):
                chart.arrows.append(
                    Arrow(record.time, record.task, record.relation,
                          record.kind, record.blocked)
                )
            elif isinstance(record, OverheadRecord):
                chart.overheads.setdefault(record.processor, []).append(
                    OverheadWindow(
                        record.time, record.time + record.duration,
                        record.kind, record.processor, record.task,
                    )
                )
        for task, (seg_start, state) in open_state.items():
            chart._add_segment(task, seg_start, end, state)
        return chart

    def _add_segment(self, task: str, start: Time, end: Time,
                     state: TaskState) -> None:
        if end < start:
            raise TraceError(
                f"segment for {task!r} goes backwards: {start}..{end}"
            )
        self.task_segments.setdefault(task, []).append(
            Segment(start, end, state)
        )

    # ------------------------------------------------------------------
    # Queries (the measurements the paper reads off the chart)
    # ------------------------------------------------------------------
    def tasks(self) -> List[str]:
        return list(self.task_segments)

    def segments(self, task: str, state: Optional[TaskState] = None) -> List[Segment]:
        segments = self.task_segments.get(task, [])
        if state is not None:
            segments = [s for s in segments if s.state is state]
        return segments

    def state_at(self, task: str, time: Time) -> Optional[TaskState]:
        """The state ``task`` was in at ``time`` (None before creation)."""
        for segment in self.task_segments.get(task, []):
            if segment.start <= time < segment.end:
                return segment.state
        return None

    def first_running(self, task: str, after: Time = 0) -> Optional[Time]:
        """When ``task`` first entered Running at or after ``after``."""
        for segment in self.segments(task, TaskState.RUNNING):
            if segment.start >= after:
                return segment.start
        return None

    def time_in_state(self, task: str, state: TaskState) -> Time:
        return sum(s.end - s.start for s in self.segments(task, state))

    # ------------------------------------------------------------------
    # ASCII rendering
    # ------------------------------------------------------------------
    def render_ascii(self, width: int = 100, show_arrows: bool = True,
                     show_overheads: bool = True) -> str:
        """Render the chart as fixed-width ASCII art."""
        span = max(self.end - self.start, 1)
        label_width = max(
            [len(name) for name in self.task_segments] +
            [len(name) for name in self.overheads] + [4]
        )

        def column(t: Time) -> int:
            col = (t - self.start) * width // span
            return min(max(int(col), 0), width - 1)

        lines = []
        header = (
            f"{'':{label_width}} "
            f"{format_time(self.start)} .. {format_time(self.end)}  "
            f"(1 col = {format_time(span // width or 1)})"
        )
        lines.append(header)
        for task, segments in self.task_segments.items():
            row = [" "] * width
            for segment in segments:
                c0 = column(segment.start)
                c1 = column(segment.end) if segment.end > segment.start else c0
                c1 = max(c1, c0 + 1)
                symbol = STATE_SYMBOLS[segment.state]
                for c in range(c0, min(c1, width)):
                    row[c] = symbol
            if show_arrows:
                for arrow in self.arrows:
                    if arrow.task == task and self.start <= arrow.time <= self.end:
                        row[column(arrow.time)] = ACCESS_SYMBOLS[arrow.kind]
            lines.append(f"{task:{label_width}} " + "".join(row))
        if show_overheads:
            for processor, windows in self.overheads.items():
                row = [" "] * width
                for window in windows:
                    c0 = column(window.start)
                    c1 = max(column(window.end), c0 + 1)
                    symbol = OVERHEAD_SYMBOLS[window.kind]
                    for c in range(c0, min(c1, width)):
                        row[c] = symbol
                lines.append(f"{processor:{label_width}} " + "".join(row))
        lines.append(
            f"{'':{label_width}} legend: #=running ==ready .=waiting "
            "m=resource s/S/l=save/sched/load v/^=write/read L/U=lock/unlock"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TimelineChart {format_time(self.start)}..{format_time(self.end)} "
            f"tasks={len(self.task_segments)} arrows={len(self.arrows)}>"
        )
