"""Comparing traces: the tool behind every engine-equivalence claim.

The paper presents its two implementation techniques as equivalent
models; this module turns "equivalent" into a checkable statement.
:func:`diff_traces` compares two recorded runs record-by-record on the
observable dimensions (task states with times, accesses, preemptions --
*not* internal bookkeeping like record ordering inside one instant) and
reports the first divergences in a readable form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..kernel.time import format_time
from .records import AccessRecord, PreemptionRecord, StateRecord
from .recorder import TraceRecorder


@dataclass(frozen=True)
class TraceDivergence:
    """One point where two traces disagree (projected record keys)."""

    index: int
    left: Optional[Tuple]
    right: Optional[Tuple]

    def __str__(self) -> str:
        def show(key):
            if key is None:
                return "<missing>"
            time, kind, *rest = key
            detail = " ".join(str(part) for part in rest)
            return f"{kind}@{format_time(time)} {detail}"

        return f"#{self.index}: {show(self.left)}  !=  {show(self.right)}"


def _comparable(recorder: TraceRecorder) -> List[Tuple]:
    """Project a trace onto its observable, order-stable content.

    Records are keyed by (time, kind, task/relation, payload) and sorted
    within each instant, so delta-cycle interleaving differences between
    engines do not count as divergences.
    """
    keys = []
    for record in recorder.records:
        if isinstance(record, StateRecord):
            keys.append(
                (record.time, "state", record.task, record.state.value,
                 record.processor or "")
            )
        elif isinstance(record, AccessRecord):
            keys.append(
                (record.time, "access", record.task, record.relation,
                 record.kind.value, record.blocked)
            )
        elif isinstance(record, PreemptionRecord):
            keys.append(
                (record.time, "preempt", record.preempted, record.processor)
            )
    keys.sort()
    return keys


def diff_traces(
    left: TraceRecorder,
    right: TraceRecorder,
    *,
    limit: int = 10,
) -> List[TraceDivergence]:
    """Return up to ``limit`` divergences between two traces.

    An empty list means the traces are observably identical.
    """
    left_keys = _comparable(left)
    right_keys = _comparable(right)
    divergences: List[TraceDivergence] = []
    for index in range(max(len(left_keys), len(right_keys))):
        a = left_keys[index] if index < len(left_keys) else None
        b = right_keys[index] if index < len(right_keys) else None
        if a != b:
            divergences.append(TraceDivergence(index, a, b))
            if len(divergences) >= limit:
                break
    return divergences


def traces_equal(left: TraceRecorder, right: TraceRecorder) -> bool:
    """Whether two traces are observably identical."""
    return not diff_traces(left, right, limit=1)


def format_diff(divergences: List[TraceDivergence]) -> str:
    """Human-readable divergence report."""
    if not divergences:
        return "traces are observably identical"
    lines = [f"{len(divergences)} divergence(s):"]
    lines += [f"  {d}" for d in divergences]
    return "\n".join(lines)
