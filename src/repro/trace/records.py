"""Typed trace records emitted by the MCSE and RTOS layers.

Every observable thing that the paper's TimeLine chart displays is one of
these records:

* task state changes (Creation, Ready, Running, Waiting, Waiting-for-
  resource, Destruction) -- horizontal line segments on the chart;
* relation accesses (read / write / signal / lock / unlock) -- the
  vertical arrows;
* RTOS overhead windows (context save, scheduling, context load) -- the
  hatched slices the paper measures in Figure 6 (a)/(b)/(c);
* hardware interrupts / preemption decisions -- annotations.

Records are plain frozen dataclasses so they are hashable, comparable and
cheap; the recorder stores them in arrival order, which equals time order
because the kernel never goes backwards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..kernel.time import Time


class TaskState(enum.Enum):
    """Task states shown on a TimeLine chart.

    ``READY`` is the paper's "waiting for processor availability",
    ``WAITING`` its "waiting for a synchronization", and
    ``WAITING_RESOURCE`` its "waiting for resource" (mutual exclusion).
    """

    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    WAITING = "waiting"
    WAITING_RESOURCE = "waiting_resource"
    TERMINATED = "terminated"


class AccessKind(enum.Enum):
    """Kinds of relation access drawn as arrows on the TimeLine."""

    SIGNAL = "signal"
    WAIT = "wait"
    WRITE = "write"
    READ = "read"
    LOCK = "lock"
    UNLOCK = "unlock"


class OverheadKind(enum.Enum):
    """The RTOS overhead components (paper §3.2 plus SMP migration)."""

    CONTEXT_SAVE = "context_save"
    SCHEDULING = "scheduling"
    CONTEXT_LOAD = "context_load"
    MIGRATION = "migration"


@dataclass(frozen=True)
class TraceRecord:
    """Base record: a timestamped observation."""

    time: Time


@dataclass(frozen=True)
class StateRecord(TraceRecord):
    """A task entered ``state`` at ``time``.

    ``reason`` distinguishes, e.g., a READY entered by *preemption* from
    one entered by *wakeup* -- the paper's Figure-8 "preempted ratio"
    only counts the former.
    """

    task: str
    state: TaskState
    processor: Optional[str] = None
    reason: Optional[str] = None


@dataclass(frozen=True)
class AccessRecord(TraceRecord):
    """A task touched a relation (arrow on the TimeLine).

    ``blocked`` marks accesses that could not complete immediately --
    they are followed by a WAITING/WAITING_RESOURCE state segment.
    """

    task: str
    relation: str
    kind: AccessKind
    blocked: bool = False
    value: object = field(default=None, compare=False)


@dataclass(frozen=True)
class OverheadRecord(TraceRecord):
    """An RTOS overhead window of ``duration`` starting at ``time``."""

    processor: str
    kind: OverheadKind
    duration: Time
    task: Optional[str] = None


@dataclass(frozen=True)
class InterruptRecord(TraceRecord):
    """A hardware interrupt delivered to a processor."""

    processor: str
    source: str


@dataclass(frozen=True)
class PreemptionRecord(TraceRecord):
    """``preempting`` task preempted ``preempted`` on ``processor``."""

    processor: str
    preempted: str
    preempting: str


@dataclass(frozen=True)
class MigrationRecord(TraceRecord):
    """A scheduling domain moved ``task`` from ``source`` to ``target``."""

    task: str
    source: str
    target: str
    domain: Optional[str] = None


@dataclass(frozen=True)
class MarkerRecord(TraceRecord):
    """A free-form annotation (used by examples and tests)."""

    label: str
    task: Optional[str] = None
