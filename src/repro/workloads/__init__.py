"""Workload generators: synthetic task sets, control loops, MPEG-2 SoC."""

from .automotive import AutomotiveResult, build_automotive_system
from .control import ControlLoop, build_control_system, default_loops
from .distributions import (
    Bimodal,
    Constant,
    Distribution,
    Empirical,
    Exponential,
    Normal,
    Uniform,
)
from .fig6 import fig6_spec
from .mpeg2 import FRAME_PERIOD, FrameStats, GOP_PATTERN, Mpeg2Soc
from .synthetic import (
    PeriodicRunResult,
    build_periodic_system,
    generate_periodic_taskset,
    random_pipeline_spec,
    uunifast,
)

__all__ = [
    "AutomotiveResult",
    "Bimodal",
    "Constant",
    "ControlLoop",
    "Distribution",
    "Empirical",
    "Exponential",
    "Normal",
    "Uniform",
    "build_automotive_system",
    "FRAME_PERIOD",
    "FrameStats",
    "GOP_PATTERN",
    "Mpeg2Soc",
    "PeriodicRunResult",
    "build_control_system",
    "build_periodic_system",
    "default_loops",
    "fig6_spec",
    "generate_periodic_taskset",
    "random_pipeline_spec",
    "uunifast",
]
