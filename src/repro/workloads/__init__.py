"""Workload generators: synthetic task sets, control loops, MPEG-2 SoC."""

from .automotive import AutomotiveResult, build_automotive_system
from .control import ControlLoop, build_control_system, default_loops
from .distributions import (
    Bimodal,
    Constant,
    Distribution,
    Empirical,
    Exponential,
    Normal,
    Uniform,
)
from .mpeg2 import FRAME_PERIOD, FrameStats, GOP_PATTERN, Mpeg2Soc
from .synthetic import (
    PeriodicRunResult,
    build_periodic_system,
    generate_periodic_taskset,
    random_pipeline_spec,
    uunifast,
)

__all__ = [
    "AutomotiveResult",
    "Bimodal",
    "Constant",
    "ControlLoop",
    "Distribution",
    "Empirical",
    "Exponential",
    "Normal",
    "Uniform",
    "build_automotive_system",
    "FRAME_PERIOD",
    "FrameStats",
    "GOP_PATTERN",
    "Mpeg2Soc",
    "PeriodicRunResult",
    "build_control_system",
    "build_periodic_system",
    "default_loops",
    "generate_periodic_taskset",
    "random_pipeline_spec",
    "uunifast",
]
