"""Synthetic workload generators: periodic task sets and task graphs.

Periodic task sets use the standard UUniFast utilization generator
(Bini & Buttazzo), with log-uniform periods, so benchmark sweeps match
what the real-time literature samples.  All generation is deterministic
for a given seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.response_time import PeriodicTask
from ..errors import ReproError
from ..kernel.time import MS, Time, US
from ..mcse.model import System


def uunifast(n: int, total_utilization: float, rng: random.Random) -> List[float]:
    """Draw ``n`` task utilizations summing to ``total_utilization``."""
    if n < 1:
        raise ReproError("need at least one task")
    if not 0 < total_utilization:
        raise ReproError(f"utilization must be positive: {total_utilization}")
    utilizations = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def generate_periodic_taskset(
    n: int,
    total_utilization: float,
    seed: int = 0,
    period_min: Time = 1 * MS,
    period_max: Time = 100 * MS,
    rate_monotonic: bool = True,
) -> List[PeriodicTask]:
    """Generate a random periodic task set.

    Periods are log-uniform in [period_min, period_max]; WCETs follow
    from the UUniFast utilizations.  With ``rate_monotonic`` priorities
    are assigned by period (shorter = higher), else randomly.
    """
    rng = random.Random(seed)
    utilizations = uunifast(n, total_utilization, rng)
    tasks = []
    log_min, log_max = math.log(period_min), math.log(period_max)
    for index, utilization in enumerate(utilizations):
        period = round(math.exp(rng.uniform(log_min, log_max)))
        wcet = max(1 * US, round(period * utilization))
        tasks.append(
            PeriodicTask(
                name=f"task{index}",
                wcet=wcet,
                period=period,
                priority=0,
            )
        )
    if rate_monotonic:
        ordered = sorted(tasks, key=lambda t: (t.period, t.name))
    else:
        ordered = tasks[:]
        rng.shuffle(ordered)
    return [
        PeriodicTask(
            name=t.name, wcet=t.wcet, period=t.period,
            priority=len(ordered) - i,
        )
        for i, t in enumerate(ordered)
    ]


@dataclass
class PeriodicRunResult:
    """Observations from running a periodic set on the RTOS model."""

    responses: Dict[str, List[Time]] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    releases: Dict[str, int] = field(default_factory=dict)
    #: Absolute deadline of each task's in-flight job, if any.
    pending_deadline: Dict[str, Time] = field(default_factory=dict)
    sim: Optional[object] = None

    def worst_response(self, name: str) -> Optional[Time]:
        values = self.responses.get(name)
        return max(values) if values else None

    def starved(self, now: Optional[Time] = None) -> int:
        """In-flight jobs whose deadline already passed (the worst miss)."""
        if now is None:
            now = self.sim.now if self.sim is not None else 0
        return sum(
            1 for deadline in self.pending_deadline.values() if deadline <= now
        )

    def total_misses(self, now: Optional[Time] = None) -> int:
        """Completed overruns plus starved (incomplete, past-deadline) jobs."""
        return sum(self.misses.values()) + self.starved(now)


def build_periodic_system(
    tasks: List[PeriodicTask],
    *,
    engine: str = "procedural",
    policy: str = "priority_preemptive",
    scheduling_duration: Time = 0,
    context_load_duration: Time = 0,
    context_save_duration: Time = 0,
    policy_kwargs: Optional[dict] = None,
    set_deadlines: bool = False,
    sim=None,
) -> "tuple[System, PeriodicRunResult]":
    """Instantiate a periodic task set on one RTOS processor.

    Every task releases at multiples of its period (synchronous at t=0,
    the critical instant), executes its WCET, and sleeps to the next
    release.  Response times and deadline misses are recorded in the
    returned :class:`PeriodicRunResult`.  With ``set_deadlines`` the
    task's absolute deadline is refreshed every job (for EDF/LLF).
    """
    system = System("periodic", sim=sim)
    cpu = system.processor(
        "cpu",
        engine=engine,
        policy=policy,
        scheduling_duration=scheduling_duration,
        context_load_duration=context_load_duration,
        context_save_duration=context_save_duration,
        **(policy_kwargs or {}),
    )
    result = PeriodicRunResult()

    def make_behavior(spec: PeriodicTask):
        def body(fn):
            result.responses[spec.name] = []
            result.misses[spec.name] = 0
            result.releases[spec.name] = 0
            release = 0
            while True:
                if set_deadlines:
                    fn.task.absolute_deadline = release + spec.effective_deadline
                result.releases[spec.name] += 1
                result.pending_deadline[spec.name] = (
                    release + spec.effective_deadline
                )
                yield from fn.execute(spec.wcet)
                now = system.now
                result.pending_deadline.pop(spec.name, None)
                response = now - release
                result.responses[spec.name].append(response)
                if response > spec.effective_deadline:
                    result.misses[spec.name] += 1
                release += spec.period
                if now < release:
                    yield from fn.delay(release - now)
                # overrun: start the next job immediately (carried backlog)

        return body

    for spec in tasks:
        fn = system.function(spec.name, make_behavior(spec),
                             priority=spec.priority)
        # Periodic profile annotations for the static analyzers
        # (repro.analyze reads these instead of guessing from the body).
        fn.wcet = spec.wcet
        fn.period = spec.period
        if spec.deadline is not None:
            fn.deadline = spec.deadline
        cpu.map(fn)
    result.sim = system.sim
    return system, result


def random_pipeline_spec(
    stages: int,
    seed: int = 0,
    *,
    processors: int = 1,
    queue_capacity: int = 4,
    items: int = 20,
    engine: str = "procedural",
) -> Dict:
    """A declarative spec for a random processing pipeline.

    ``stages`` functions pass ``items`` messages down a chain of queues;
    stage compute times are random but seeded.  Stages are dealt onto
    ``processors`` RTOS processors round-robin -- a quick way to produce
    multi-processor stress models for the builder.
    """
    if stages < 2:
        raise ReproError("a pipeline needs at least 2 stages")
    rng = random.Random(seed)
    spec: Dict = {
        "name": f"pipeline{stages}",
        "relations": [
            {"kind": "queue", "name": f"q{i}", "capacity": queue_capacity}
            for i in range(stages - 1)
        ],
        "processors": [
            {
                "name": f"cpu{p}",
                "engine": engine,
                "scheduling_duration": 1 * US,
                "context_load_duration": 1 * US,
                "context_save_duration": 1 * US,
            }
            for p in range(processors)
        ],
        "functions": [],
    }
    for index in range(stages):
        compute = rng.randint(1, 20) * US
        ops: List = []
        body: List = []
        if index > 0:
            body.append(["read", f"q{index - 1}"])
        body.append(["execute", compute])
        if index < stages - 1:
            body.append(["write", f"q{index}", "item"])
        ops.append(["loop", items, body])
        spec["functions"].append(
            {
                "name": f"stage{index}",
                "priority": stages - index,
                "processor": f"cpu{index % processors}",
                "script": ops,
            }
        )
    return spec
