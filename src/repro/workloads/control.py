"""Closed-loop control workloads: sensor -> controller -> actuator.

The introduction's motivating class of real-time system: periodic
sensors raise events, software controllers compute commands under
deadlines, actuators must fire within a reaction bound.  The generator
builds ``n`` independent control loops sharing one RTOS processor plus
an optional background load task, and returns the matching
:class:`~repro.analysis.constraints.ConstraintSet` so the paper's
"automatic verification of timing constraints" future-work feature can
be demonstrated end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.constraints import ConstraintSet, DeadlineConstraint, ReactionConstraint
from ..kernel.time import MS, Time, US
from ..mcse.model import System
from ..rtos.interrupts import PeriodicInterrupt


@dataclass(frozen=True)
class ControlLoop:
    """Parameters of one sensor/controller/actuator loop."""

    name: str
    period: Time
    compute: Time
    deadline: Time
    priority: int


def default_loops(n: int, seed: int = 0) -> List[ControlLoop]:
    """``n`` loops with log-spread periods, deadline = period / 2.

    Priorities are deadline-monotonic (tighter deadline = higher).
    """
    rng = random.Random(seed)
    loops = []
    for index in range(n):
        period = rng.choice([5, 10, 20, 40, 80]) * MS
        compute = round(period * rng.uniform(0.02, 0.10))
        loops.append(
            ControlLoop(
                name=f"loop{index}",
                period=period,
                compute=compute,
                deadline=period // 2,
                priority=0,
            )
        )
    ordered = sorted(loops, key=lambda loop: (loop.deadline, loop.name))
    return [
        ControlLoop(
            name=loop.name, period=loop.period, compute=loop.compute,
            deadline=loop.deadline, priority=len(ordered) - i,
        )
        for i, loop in enumerate(ordered)
    ]


def build_control_system(
    loops: List[ControlLoop],
    *,
    engine: str = "procedural",
    scheduling_duration: Time = 10 * US,
    context_load_duration: Time = 5 * US,
    context_save_duration: Time = 5 * US,
    background_load: Optional[Time] = None,
    duration_periods: int = 20,
) -> Tuple[System, ConstraintSet, Time]:
    """Build the control system; returns (system, constraints, run_time).

    Each loop: a hardware timer interrupt signals a counter event; the
    controller task waits it, computes, and "actuates" (a marker the
    reaction constraint checks).  ``background_load`` optionally adds a
    lowest-priority busy task consuming that much CPU per 100ms.
    """
    system = System("control")
    cpu = system.processor(
        "cpu",
        engine=engine,
        scheduling_duration=scheduling_duration,
        context_load_duration=context_load_duration,
        context_save_duration=context_save_duration,
    )
    constraints = ConstraintSet()
    longest = max(loop.period for loop in loops)
    run_time = longest * duration_periods

    for loop in loops:
        sensor_event = system.event(f"{loop.name}.sample", policy="counter")
        fires = int(run_time // loop.period)

        def controller(fn, loop=loop, sensor_event=sensor_event, fires=fires):
            for _ in range(fires):
                yield from fn.wait(sensor_event)
                yield from fn.execute(loop.compute)

        fn = system.function(loop.name, controller, priority=loop.priority)
        cpu.map(fn)
        PeriodicInterrupt(
            system.sim,
            f"{loop.name}.timer",
            period=loop.period,
            handler=sensor_event.signal,
            processor_name=cpu.name,
            max_fires=fires,
        )
        constraints.add(
            DeadlineConstraint(loop.name, loop.deadline)
        )
        constraints.add(
            ReactionConstraint(
                f"{loop.name}.timer", loop.name, loop.deadline
            )
        )

    if background_load:
        def background(fn):
            chunks = int(run_time // (100 * MS)) + 1
            for _ in range(chunks):
                yield from fn.execute(background_load)
                yield from fn.delay(100 * MS - background_load)

        bg = system.function("background", background, priority=0)
        cpu.map(bg)

    return system, constraints, run_time
