"""The paper's Figure 6 example system as a declarative spec.

Section 5 of the paper validates the RTOS model on a three-function,
one-processor system: ``Function_1`` (priority 5) reacts to a 100 us
clock and signals ``Function_2`` (priority 3) mid-computation, while
``Function_3`` (priority 2) provides background load.  All three RTOS
overhead durations are 5 us, matching the paper's measurements.

Keeping the spec here (rather than inline in the CLI) lets other entry
points -- ``pyrtos-sc lint fig6``, tests, docs -- build the model
without running it.
"""

from __future__ import annotations

from typing import Dict


def fig6_spec(engine: str = "procedural") -> Dict:
    """Return the Figure 6 system spec for :func:`repro.mcse.build_system`."""
    return {
        "name": "fig6",
        "relations": [
            {"kind": "event", "name": "Clk", "policy": "fugitive"},
            {"kind": "event", "name": "Event_1", "policy": "boolean"},
        ],
        "processors": [
            {
                "name": "Processor",
                "engine": engine,
                "scheduling_duration": "5us",
                "context_load_duration": "5us",
                "context_save_duration": "5us",
            }
        ],
        "functions": [
            {"name": "Function_1", "priority": 5, "processor": "Processor",
             "script": [["wait", "Clk"], ["execute", "20us"],
                        ["signal", "Event_1"], ["execute", "10us"]]},
            {"name": "Function_2", "priority": 3, "processor": "Processor",
             "script": [["wait", "Event_1"], ["execute", "30us"]]},
            {"name": "Function_3", "priority": 2, "processor": "Processor",
             "script": [["execute", "200us"]]},
            {"name": "Clock",
             "script": [["delay", "100us"], ["signal", "Clk"]]},
        ],
    }


def fig6_crossed_mutex_spec(engine: str = "procedural") -> Dict:
    """Figure 6 variant seeded with a schedule-dependent deadlock.

    ``Function_3`` takes shared variable ``B`` then -- after an
    execution whose cost is the *interval* 5..150 us -- shared ``A``;
    ``Function_1``, woken by the 100 us clock, takes them in the
    opposite order.  At the nominal (lower-bound) cost ``Function_3``
    is done before the clock fires, so a single simulation run looks
    perfectly healthy.  When the verifier explores the upper bound,
    ``Function_3`` still holds ``B`` at the clock tick, the two tasks
    acquire crosswise, and the system deadlocks (RTS-V001).
    """
    return {
        "name": "fig6_crossed_mutex",
        "relations": [
            {"kind": "event", "name": "Clk", "policy": "fugitive"},
            {"kind": "shared", "name": "A"},
            {"kind": "shared", "name": "B"},
        ],
        "processors": [
            {
                "name": "Processor",
                "engine": engine,
                "scheduling_duration": "5us",
                "context_load_duration": "5us",
                "context_save_duration": "5us",
            }
        ],
        "functions": [
            {"name": "Function_1", "priority": 5, "processor": "Processor",
             "script": [["wait", "Clk"],
                        ["lock", "A"], ["execute", "10us"],
                        ["lock", "B"], ["execute", "10us"],
                        ["unlock", "B"], ["unlock", "A"]]},
            {"name": "Function_3", "priority": 2, "processor": "Processor",
             "script": [["lock", "B"], ["execute", "5us..150us"],
                        ["lock", "A"], ["execute", "10us"],
                        ["unlock", "A"], ["unlock", "B"]]},
            {"name": "Clock",
             "script": [["delay", "100us"], ["signal", "Clk"]]},
        ],
    }


def fig6_deadline_miss_spec(engine: str = "procedural") -> Dict:
    """Figure 6 variant seeded with a schedule-dependent deadline miss.

    ``Function_2`` declares a 70 us relative deadline, and
    ``Function_1``'s post-signal computation becomes the interval
    10..80 us.  At the nominal cost ``Function_2`` responds well inside
    its deadline; only when the verifier explores the upper bound does
    the higher-priority ``Function_1`` starve it past 70 us (RTS-V002).
    """
    spec = fig6_spec(engine)
    spec["name"] = "fig6_deadline_miss"
    for fn in spec["functions"]:
        if fn["name"] == "Function_1":
            fn["script"][-1] = ["execute", "10us..80us"]
        elif fn["name"] == "Function_2":
            fn["deadline"] = "70us"
    return spec
