"""The paper's Figure 6 example system as a declarative spec.

Section 5 of the paper validates the RTOS model on a three-function,
one-processor system: ``Function_1`` (priority 5) reacts to a 100 us
clock and signals ``Function_2`` (priority 3) mid-computation, while
``Function_3`` (priority 2) provides background load.  All three RTOS
overhead durations are 5 us, matching the paper's measurements.

Keeping the spec here (rather than inline in the CLI) lets other entry
points -- ``pyrtos-sc lint fig6``, tests, docs -- build the model
without running it.
"""

from __future__ import annotations

from typing import Dict


def fig6_spec(engine: str = "procedural") -> Dict:
    """Return the Figure 6 system spec for :func:`repro.mcse.build_system`."""
    return {
        "name": "fig6",
        "relations": [
            {"kind": "event", "name": "Clk", "policy": "fugitive"},
            {"kind": "event", "name": "Event_1", "policy": "boolean"},
        ],
        "processors": [
            {
                "name": "Processor",
                "engine": engine,
                "scheduling_duration": "5us",
                "context_load_duration": "5us",
                "context_save_duration": "5us",
            }
        ],
        "functions": [
            {"name": "Function_1", "priority": 5, "processor": "Processor",
             "script": [["wait", "Clk"], ["execute", "20us"],
                        ["signal", "Event_1"], ["execute", "10us"]]},
            {"name": "Function_2", "priority": 3, "processor": "Processor",
             "script": [["wait", "Event_1"], ["execute", "30us"]]},
            {"name": "Function_3", "priority": 2, "processor": "Processor",
             "script": [["execute", "200us"]]},
            {"name": "Clock",
             "script": [["delay", "100us"], ["signal", "Clk"]]},
        ],
    }
