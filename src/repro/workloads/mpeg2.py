"""The MPEG-2 codec SoC case study (paper §5, last paragraph).

The paper validates its model on "a video MPEG-2 compressing and
decompressing SoC ... composed of 18 tasks implemented on six
processors, three of them software processors with a RTOS model".  The
original application is proprietary, so this module builds the closest
synthetic equivalent that exercises the same code paths:

* **18 tasks**: 13 software tasks on three RTOS processors (a RISC
  control CPU and two DSPs) plus 5 hardware functions on three hardware
  blocks (camera, display, bitstream engine);
* a full encode -> transmit -> decode pipeline over bounded message
  queues, a shared variable (the quantizer level, written by rate
  control and read by the quantizer under mutual exclusion), periodic
  control tasks, and per-frame compute budgets that follow published
  MPEG-2 stage complexity ratios with an I/P/B group-of-pictures
  pattern.

Architecture::

    CameraIn(HW) > q_raw > Preprocess > MotionEst > Dct > Quant > Vlc
        [DSP_enc: 5 tasks]                                  |
    Vlc > q_vlc > Mux > q_tx > BitstreamTx(HW) > q_channel >
        BitstreamRx(HW) > q_rx > Demux > q_vld >
        [CTRL_cpu: SysControl, RateControl, Mux, Demux]
    Vld > InvQuant > Idct > MotionComp > q_disp > DisplayOut(HW)
        [DSP_dec: 4 tasks]

The class records per-frame encode, decode and end-to-end latencies and
per-processor statistics -- everything the paper's DSE sweep reads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..kernel.time import MS, Time, US, format_time
from ..mcse.model import System

#: Default frame period: 30 fps.
FRAME_PERIOD = 33_333 * US

#: Group-of-pictures pattern cycled over the frame index.
GOP_PATTERN = "IBBPBBPBB"

#: Per-stage base compute budgets in microseconds, per frame type.
#: Ratios follow the usual MPEG-2 complexity split (motion estimation
#: dominates encode; IDCT + motion compensation dominate decode).
STAGE_BUDGETS_US: Dict[str, Dict[str, int]] = {
    "Preprocess": {"I": 2000, "P": 2000, "B": 2000},
    "MotionEst": {"I": 1000, "P": 9000, "B": 11000},
    "Dct": {"I": 3400, "P": 3000, "B": 2800},
    "Quant": {"I": 1400, "P": 1200, "B": 1100},
    "Vlc": {"I": 3500, "P": 2500, "B": 2200},
    "Mux": {"I": 500, "P": 400, "B": 400},
    "Demux": {"I": 500, "P": 400, "B": 400},
    "Vld": {"I": 3000, "P": 2200, "B": 2000},
    "InvQuant": {"I": 1100, "P": 1000, "B": 950},
    "Idct": {"I": 3400, "P": 3200, "B": 3000},
    "MotionComp": {"I": 500, "P": 3800, "B": 4300},
    "RateControl": {"I": 400, "P": 300, "B": 300},
}

#: Transmission latency per packet on the bitstream engine.
CHANNEL_LATENCY = 500 * US


@dataclass
class FrameStats:
    """Timestamps gathered while one frame flows through the SoC."""

    index: int
    frame_type: str
    captured: Time
    encoded: Optional[Time] = None
    received: Optional[Time] = None
    displayed: Optional[Time] = None

    @property
    def encode_latency(self) -> Optional[Time]:
        if self.encoded is None:
            return None
        return self.encoded - self.captured

    @property
    def decode_latency(self) -> Optional[Time]:
        if self.displayed is None or self.received is None:
            return None
        return self.displayed - self.received

    @property
    def end_to_end(self) -> Optional[Time]:
        if self.displayed is None:
            return None
        return self.displayed - self.captured


class Mpeg2Soc:
    """The synthetic MPEG-2 codec system-on-chip model."""

    def __init__(
        self,
        *,
        engine: str = "procedural",
        frames: int = 12,
        frame_period: Time = FRAME_PERIOD,
        scheduling_duration: Time = 5 * US,
        context_load_duration: Time = 5 * US,
        context_save_duration: Time = 5 * US,
        policy: str = "priority_preemptive",
        seed: int = 0,
        queue_capacity: int = 3,
        use_bus: bool = False,
        bus_setup: Time = 100 * US,
        bus_per_byte: Time = 0,
        **policy_kwargs,
    ) -> None:
        self.frames = frames
        self.frame_period = frame_period
        self._rng = random.Random(seed)
        self.frame_stats: List[FrameStats] = [
            FrameStats(
                index=i,
                frame_type=GOP_PATTERN[i % len(GOP_PATTERN)],
                captured=0,
            )
            for i in range(frames)
        ]
        # per-frame, per-stage jittered budgets (deterministic for a seed)
        self._budgets: Dict[str, List[Time]] = {}
        for stage, by_type in STAGE_BUDGETS_US.items():
            self._budgets[stage] = [
                round(
                    by_type[self.frame_stats[i].frame_type]
                    * (0.85 + 0.3 * self._rng.random())
                )
                * US
                for i in range(frames)
            ]

        self.system = System("mpeg2_soc")
        overheads = dict(
            scheduling_duration=scheduling_duration,
            context_load_duration=context_load_duration,
            context_save_duration=context_save_duration,
        )
        self.cpu_ctrl = self.system.processor(
            "CTRL_cpu", engine=engine, policy=policy, **overheads,
            **policy_kwargs,
        )
        self.dsp_enc = self.system.processor(
            "DSP_enc", engine=engine, policy=policy, **overheads,
            **policy_kwargs,
        )
        self.dsp_dec = self.system.processor(
            "DSP_dec", engine=engine, policy=policy, **overheads,
            **policy_kwargs,
        )
        self.use_bus = use_bus
        self.bus = None
        if use_bus:
            from ..comm import Bus

            self.bus = Bus(self.system.sim, "soc_bus", setup=bus_setup,
                           per_byte=bus_per_byte, arbitration="priority")
        self._build_relations(queue_capacity)
        self._build_tasks()

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------
    def _build_relations(self, capacity: int) -> None:
        system = self.system
        chain = [
            "q_raw", "q_pre", "q_me", "q_dct", "q_q", "q_vlc",
            "q_tx", "q_channel", "q_rx", "q_vld", "q_iq", "q_idct",
            "q_mc", "q_disp",
        ]
        self.queues = {}
        for name in chain:
            if name == "q_channel" and self.bus is not None:
                # the encoded bitstream crosses the shared SoC bus
                from ..comm import RemoteQueue

                queue = RemoteQueue(
                    system.sim, name, capacity=capacity, bus=self.bus,
                    message_size=1500, transfer_priority=1,
                )
                system.relations[name] = queue
                self.queues[name] = queue
            else:
                self.queues[name] = system.queue(name, capacity=capacity)
        self.q_sizes = system.queue("q_sizes", capacity=None)
        self.quant_level = system.shared("QuantLevel", initial=8)

    def _stage(self, name: str, source: Optional[str], sink: Optional[str],
               *, timestamp: Optional[str] = None):
        """Build a pipeline-stage behavior: read, compute, write."""
        budgets = self._budgets.get(name)
        queues = self.queues

        def body(fn):
            for i in range(self.frames):
                if source is not None:
                    frame = yield from fn.read(queues[source])
                else:
                    frame = i
                if budgets is not None:
                    yield from fn.execute(budgets[i])
                if name == "Quant":
                    # quantizer level under mutual exclusion
                    yield from fn.read_shared(self.quant_level)
                if name == "Vlc":
                    size = self._budgets["Vlc"][i] // US
                    yield from fn.write(self.q_sizes, (i, size))
                if timestamp is not None:
                    setattr(self.frame_stats[frame], timestamp,
                            self.system.now)
                if sink is not None:
                    yield from fn.write(queues[sink], frame)

        return body

    def _build_tasks(self) -> None:
        system = self.system
        queues = self.queues
        stats = self.frame_stats
        period = self.frame_period
        frames = self.frames

        # ---------------- hardware functions (3 HW blocks) -------------
        def camera(fn):
            for i in range(frames):
                stats[i].captured = system.now
                yield from fn.write(queues["q_raw"], i)
                yield from fn.delay(period)

        def display(fn):
            for _ in range(frames):
                frame = yield from fn.read(queues["q_disp"])
                stats[frame].displayed = system.now

        use_bus = self.bus is not None

        def bitstream_tx(fn):
            for _ in range(frames):
                frame = yield from fn.read(queues["q_tx"])
                if not use_bus:
                    # fixed point-to-point link latency
                    yield from fn.delay(CHANNEL_LATENCY)
                # with a bus, the write itself posts an arbitrated
                # transfer; contention shows up in the frame latency
                yield from fn.write(queues["q_channel"], frame)

        def bitstream_rx(fn):
            for _ in range(frames):
                frame = yield from fn.read(queues["q_channel"])
                stats[frame].received = system.now
                yield from fn.write(queues["q_rx"], frame)

        def audio_path(fn):
            # independent periodic hardware activity
            for _ in range(frames * 4):
                yield from fn.delay(period // 4)

        system.function("CameraIn", camera)
        system.function("DisplayOut", display)
        system.function("BitstreamTx", bitstream_tx)
        system.function("BitstreamRx", bitstream_rx)
        system.function("AudioPath", audio_path)

        # ---------------- encoder DSP (5 tasks) ------------------------
        enc = [
            ("Preprocess", "q_raw", "q_pre", 1),
            ("MotionEst", "q_pre", "q_me", 2),
            ("Dct", "q_me", "q_dct", 3),
            ("Quant", "q_dct", "q_q", 4),
            ("Vlc", "q_q", "q_vlc", 5),
        ]
        for name, source, sink, priority in enc:
            fn = system.function(name, self._stage(name, source, sink),
                                 priority=priority)
            self.dsp_enc.map(fn)

        # ---------------- decoder DSP (4 tasks) ------------------------
        dec = [
            ("Vld", "q_vld", "q_iq", 1),
            ("InvQuant", "q_iq", "q_idct", 2),
            ("Idct", "q_idct", "q_mc", 3),
            ("MotionComp", "q_mc", "q_disp", 4),
        ]
        for name, source, sink, priority in dec:
            fn = system.function(name, self._stage(name, source, sink),
                                 priority=priority)
            self.dsp_dec.map(fn)

        # ---------------- control CPU (4 tasks) ------------------------
        mux = system.function(
            "Mux",
            self._stage("Mux", "q_vlc", "q_tx", timestamp="encoded"),
            priority=5,
        )
        demux = system.function(
            "Demux", self._stage("Demux", "q_rx", "q_vld"), priority=6
        )

        def rate_control(fn):
            for i in range(frames):
                frame, size = yield from fn.read(self.q_sizes)
                yield from fn.execute(self._budgets["RateControl"][i])
                # feedback: nudge the quantizer level under the lock
                level = yield from fn.read_shared(self.quant_level)
                target = 2500
                new_level = max(1, min(31, level + (1 if size > target else -1)))
                yield from fn.write_shared(self.quant_level, new_level)

        def sys_control(fn):
            # highest-priority periodic supervision: 200us every 10ms
            ticks = frames * period // (10 * MS) + 1
            for _ in range(int(ticks)):
                yield from fn.execute(200 * US)
                yield from fn.delay(10 * MS)

        rate = system.function("RateControl", rate_control, priority=3)
        supervisor = system.function("SysControl", sys_control, priority=10)
        for fn in (mux, demux, rate, supervisor):
            self.cpu_ctrl.map(fn)

    # ------------------------------------------------------------------
    # Execution & reporting
    # ------------------------------------------------------------------
    @property
    def task_count(self) -> int:
        return len(self.system.functions)

    @property
    def processors(self):
        return list(self.system.processors.values())

    def run(self, timeout_factor: Optional[int] = None) -> None:
        """Run the whole clip (every behavior loop is finite).

        Pass ``timeout_factor`` to bound a run that might starve (e.g.
        when experimenting with tiny queue capacities): the simulation
        then stops at ``frames * frame_period * timeout_factor``.
        """
        if timeout_factor is None:
            self.system.run()
        else:
            self.system.run(
                until=self.frame_period * self.frames * timeout_factor
            )

    def completed_frames(self) -> int:
        return sum(1 for f in self.frame_stats if f.displayed is not None)

    def latencies(self, kind: str = "end_to_end") -> List[Time]:
        values = [getattr(f, kind) for f in self.frame_stats]
        return [v for v in values if v is not None]

    def throughput_fps(self) -> float:
        done = [f.displayed for f in self.frame_stats if f.displayed]
        if len(done) < 2:
            return 0.0
        span = max(done) - min(done)
        return (len(done) - 1) / (span / 1e15) if span else 0.0

    def summary(self) -> Dict:
        """The DSE-level report: latencies, throughput, utilizations."""
        e2e = self.latencies("end_to_end")
        return {
            "tasks": self.task_count,
            "frames_completed": self.completed_frames(),
            "mean_e2e_latency": sum(e2e) // len(e2e) if e2e else None,
            "max_e2e_latency": max(e2e) if e2e else None,
            "throughput_fps": self.throughput_fps(),
            "processors": {
                cpu.name: cpu.stats() for cpu in self.processors
            },
        }

    def format_summary(self) -> str:
        info = self.summary()
        lines = [
            f"MPEG-2 SoC: {info['tasks']} tasks, "
            f"{info['frames_completed']}/{self.frames} frames",
            f"  mean end-to-end latency: "
            f"{format_time(info['mean_e2e_latency'] or 0)}",
            f"  max  end-to-end latency: "
            f"{format_time(info['max_e2e_latency'] or 0)}",
            f"  throughput: {info['throughput_fps']:.2f} fps",
        ]
        for name, stats in info["processors"].items():
            lines.append(
                f"  {name}: util {stats['utilization']:.2%}, "
                f"{stats['dispatches']} dispatches, "
                f"{stats['preemptions']} preemptions"
            )
        return "\n".join(lines)
