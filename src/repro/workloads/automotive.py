"""An automotive ECU network: periodic control + CAN-style shared bus.

A second domain workload for the intro's motivating class of systems:
three ECUs (each an RTOS processor) exchange frames over one
priority-arbitrated bus -- which is exactly how CAN arbitration works
(lower message ID = higher priority; here: higher ``transfer_priority``
wins).  Safety messages must beat bulk diagnostics on the wire, and the
receiving control tasks carry reaction deadlines, so the generated
:class:`~repro.analysis.constraints.ConstraintSet` verifies the whole
chain sensor -> bus -> controller automatically.

Topology::

    ECU_engine : crank_sensor (10ms) --rpm--> ECU_dash : display
                 fuel_control (10ms, local)
    ECU_brake  : wheel_sensor (5ms) --wheel--> ECU_brake : abs_control
                 (local queue; highest priority on its CPU)
    ECU_dash   : diagnostics (bulk frames, lowest bus priority)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..analysis.constraints import ConstraintSet, ReactionConstraint
from ..comm import Bus, RemoteQueue
from ..kernel.time import MS, Time, US
from ..mcse.model import System

#: Rough 500 kbit/s CAN timing: ~16us per payload byte on the wire.
CAN_PER_BYTE = 16 * US
CAN_SETUP = 94 * US  # frame overhead (arbitration, CRC, spacing)


@dataclass
class AutomotiveResult:
    """Per-message latencies observed during the run."""

    rpm_latencies: List[Time] = field(default_factory=list)
    wheel_latencies: List[Time] = field(default_factory=list)
    diag_sent: int = 0

    def worst(self, name: str) -> Time:
        values = getattr(self, f"{name}_latencies")
        return max(values) if values else 0


def build_automotive_system(
    *,
    engine: str = "procedural",
    cycles: int = 20,
    bus_setup: Time = CAN_SETUP,
    bus_per_byte: Time = CAN_PER_BYTE,
    diagnostics_frames: int = 40,
    scheduling_duration: Time = 10 * US,
) -> Tuple[System, ConstraintSet, AutomotiveResult, Bus]:
    """Build the three-ECU network; returns (system, constraints,
    result, bus).  ``cycles`` counts 10ms engine periods."""
    system = System("automotive")
    bus = Bus(system.sim, "can", setup=bus_setup, per_byte=bus_per_byte,
              arbitration="priority")
    overheads = dict(
        scheduling_duration=scheduling_duration,
        context_load_duration=scheduling_duration // 2,
        context_save_duration=scheduling_duration // 2,
    )
    ecu_engine = system.processor("ECU_engine", engine=engine, **overheads)
    ecu_brake = system.processor("ECU_brake", engine=engine, **overheads)
    ecu_dash = system.processor("ECU_dash", engine=engine, **overheads)

    # CAN-ish frames: safety small & urgent, diagnostics big & lazy
    rpm_link = RemoteQueue(system.sim, "rpm", bus=bus, message_size=8,
                           transfer_priority=9)
    wheel_link = RemoteQueue(system.sim, "wheel", bus=bus, message_size=8,
                             transfer_priority=10)
    diag_link = RemoteQueue(system.sim, "diag", bus=bus, message_size=64,
                            transfer_priority=1, capacity=None)
    for name, relation in (("rpm", rpm_link), ("wheel", wheel_link),
                           ("diag", diag_link)):
        system.relations[name] = relation

    result = AutomotiveResult()

    # ---------------- ECU_engine ------------------------------------
    def crank_sensor(fn):
        for cycle in range(cycles):
            yield from fn.execute(300 * US)
            yield from fn.write(rpm_link, system.now)
            yield from fn.delay(10 * MS - 300 * US)

    def fuel_control(fn):
        for _ in range(cycles):
            yield from fn.execute(2 * MS)
            yield from fn.delay(8 * MS)

    ecu_engine.map(system.function("crank_sensor", crank_sensor, priority=8))
    ecu_engine.map(system.function("fuel_control", fuel_control, priority=4))

    # ---------------- ECU_brake -------------------------------------
    def wheel_sensor(fn):
        for _ in range(cycles * 2):
            yield from fn.execute(150 * US)
            yield from fn.write(wheel_link, system.now)
            yield from fn.delay(5 * MS - 150 * US)

    def abs_control(fn):
        for _ in range(cycles * 2):
            sent_at = yield from fn.read(wheel_link)
            yield from fn.execute(400 * US)
            result.wheel_latencies.append(system.now - sent_at)

    ecu_brake.map(system.function("wheel_sensor", wheel_sensor, priority=7))
    ecu_brake.map(system.function("abs_control", abs_control, priority=9))

    # ---------------- ECU_dash --------------------------------------
    def display(fn):
        for _ in range(cycles):
            sent_at = yield from fn.read(rpm_link)
            yield from fn.execute(500 * US)
            result.rpm_latencies.append(system.now - sent_at)

    def diagnostics(fn):
        for _ in range(diagnostics_frames):
            yield from fn.execute(200 * US)
            yield from fn.write(diag_link, "dump")
            result.diag_sent += 1
            yield from fn.delay(3 * MS)

    ecu_dash.map(system.function("display", display, priority=5))
    ecu_dash.map(system.function("diagnostics", diagnostics, priority=1))

    # end-to-end reaction bounds: a sensor write (the stimulus) must see
    # the consuming controller running within the bound -- this covers
    # the wire, the wake-up, and the receiving RTOS dispatch
    constraints = ConstraintSet()
    constraints.add(ReactionConstraint("wheel", "abs_control", 5 * MS))
    constraints.add(ReactionConstraint("rpm", "display", 10 * MS))
    return system, constraints, result, bus
