"""Execution-time distributions for stochastic workloads.

Fixed WCETs answer worst-case questions; distributions answer the
"what does the latency *distribution* look like" questions a DSE also
needs.  Each distribution samples integer femtosecond durations from a
caller-supplied ``random.Random``, so whole Monte-Carlo campaigns stay
reproducible (see :mod:`repro.analysis.montecarlo`).

Example::

    rng = random.Random(42)
    compute = Normal(2 * MS, 200 * US, minimum=500 * US)

    def body(fn):
        while True:
            yield from fn.execute(compute.sample(rng))
            ...
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..errors import ReproError
from ..kernel.time import Time


class Distribution:
    """Base class: sample non-negative integer durations."""

    def sample(self, rng: random.Random) -> Time:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytical mean (used for sanity checks and utilization math)."""
        raise NotImplementedError


class Constant(Distribution):
    """Always the same duration (the degenerate case)."""

    def __init__(self, value: Time) -> None:
        if value < 0:
            raise ReproError(f"negative duration: {value}")
        self.value = value

    def sample(self, rng: random.Random) -> Time:
        return self.value

    def mean(self) -> float:
        return float(self.value)


class Uniform(Distribution):
    """Uniform over [low, high]."""

    def __init__(self, low: Time, high: Time) -> None:
        if not 0 <= low <= high:
            raise ReproError(f"bad uniform bounds: [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> Time:
        return rng.randint(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2


class Normal(Distribution):
    """Gaussian, clipped below at ``minimum`` (durations stay positive)."""

    def __init__(self, mu: Time, sigma: Time, minimum: Time = 1) -> None:
        if mu <= 0 or sigma < 0 or minimum < 0:
            raise ReproError(f"bad normal parameters: mu={mu} sigma={sigma}")
        self.mu = mu
        self.sigma = sigma
        self.minimum = minimum

    def sample(self, rng: random.Random) -> Time:
        return max(self.minimum, round(rng.gauss(self.mu, self.sigma)))

    def mean(self) -> float:
        return float(self.mu)  # clipping bias ignored (documented)


class Exponential(Distribution):
    """Exponential with the given mean, optionally capped."""

    def __init__(self, mean_value: Time, cap: Time = 0) -> None:
        if mean_value <= 0 or cap < 0:
            raise ReproError(f"bad exponential mean: {mean_value}")
        self.mean_value = mean_value
        self.cap = cap

    def sample(self, rng: random.Random) -> Time:
        value = round(rng.expovariate(1.0 / self.mean_value))
        if self.cap:
            value = min(value, self.cap)
        return max(1, value)

    def mean(self) -> float:
        return float(self.mean_value)


class Bimodal(Distribution):
    """Two modes (e.g. cache hit vs miss): ``first`` with prob ``p``."""

    def __init__(self, first: Distribution, second: Distribution,
                 p_first: float) -> None:
        if not 0 <= p_first <= 1:
            raise ReproError(f"probability out of range: {p_first}")
        self.first = first
        self.second = second
        self.p_first = p_first

    def sample(self, rng: random.Random) -> Time:
        chosen = self.first if rng.random() < self.p_first else self.second
        return chosen.sample(rng)

    def mean(self) -> float:
        return (self.p_first * self.first.mean()
                + (1 - self.p_first) * self.second.mean())


class Empirical(Distribution):
    """Resample uniformly from measured durations."""

    def __init__(self, values: Sequence[Time]) -> None:
        values = list(values)
        if not values:
            raise ReproError("empirical distribution needs samples")
        if any(v < 0 for v in values):
            raise ReproError("negative duration in empirical samples")
        self.values: List[Time] = values

    def sample(self, rng: random.Random) -> Time:
        return rng.choice(self.values)

    def mean(self) -> float:
        return sum(self.values) / len(self.values)
