"""Scheduling domains: N processors dispatching from a shared ready pool.

The paper's model is one Processor owning one ready queue.  A
:class:`SchedulingDomain` coordinates several existing processors into
one multicore scheduling entity with pluggable dispatch:

* ``global`` -- a single logical pool over all member cores.  A task
  waking up may be placed on any idle eligible core (or preempt the
  least-urgent running task); an idle core pulls the most urgent
  eligible ready task from *any* member's queue, migrating it over.
* ``partitioned`` -- static task-to-core assignment.  Each member keeps
  its own policy and queue; the domain only aggregates statistics.  A
  partitioned domain over one core reproduces the standalone-processor
  behavior byte-identically (asserted by the golden-trace tests).
* ``clustered`` -- ``global`` within each named cluster of cores,
  ``partitioned`` across clusters.

Mechanics and invariants:

* A READY task always lives in ``task.processor._ready``; global
  dispatch *pulls* (work-stealing at election time) rather than keeping
  a separate shared queue, so the per-core engine code paths -- idle
  dispatch, preemption requests, overhead charging -- are reused
  unchanged (the ``ProcessorBase._admit_ready`` seam).
* Migration happens lazily at dispatch: when a core's election picks a
  task queued on a sibling, the task moves (``Task.migration_count``,
  a :class:`~repro.trace.records.MigrationRecord`, and the
  ``Overheads.migration`` cost charged on the target just before the
  context load).
* Placement and dispatch ties are verifier choice points: ``place``
  (which eligible core a waking task is delivered to) and ``migrate``
  (equal-urgency dispatch under global EDF/RM).  ``repro.verify``
  explores both and minimizes counterexamples over them.
* Per-task affinity masks (``Task.affinity`` / the builder's
  ``affinity`` function key) restrict which member cores may run a
  task; execution budgets are scaled by the speed of the core the
  ``execute`` *starts* on (heterogeneous-speed migration mid-execute
  keeps the entry core's scaling).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import RTOSError
from ..kernel.simulator import Simulator
from ..rtos.overheads import Overheads, OverheadSpec
from ..rtos.policies import SchedulingPolicy, make_policy
from ..rtos.processor import ProcessorBase
from ..rtos.tcb import Task
from ..trace.records import MigrationRecord, TaskState

#: Dispatch disciplines a domain understands.
DOMAIN_KINDS = ("global", "partitioned", "clustered")


class SchedulingDomain:
    """Coordinates member processors through a shared ready pool."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        processors: Sequence[ProcessorBase],
        *,
        kind: str = "global",
        policy: Union[str, SchedulingPolicy, None] = None,
        migration_cost: OverheadSpec = 0,
        clusters: Optional[Sequence[Sequence[ProcessorBase]]] = None,
        **policy_kwargs: object,
    ) -> None:
        if kind not in DOMAIN_KINDS:
            raise RTOSError(
                f"unknown domain kind {kind!r}; pick one of {DOMAIN_KINDS}"
            )
        members = list(processors)
        if not members:
            raise RTOSError(f"domain {name!r} needs at least one processor")
        seen: Set[str] = set()
        for member in members:
            if member.sim is not sim:
                raise RTOSError(
                    f"processor {member.name!r} belongs to a different "
                    f"simulator than domain {name!r}"
                )
            if member.domain is not None:
                raise RTOSError(
                    f"processor {member.name!r} is already in domain "
                    f"{member.domain.name!r}"
                )
            if member.name in seen:
                raise RTOSError(
                    f"duplicate processor {member.name!r} in domain {name!r}"
                )
            seen.add(member.name)
        self.sim = sim
        self.name = name
        self.kind = kind
        self.members: Tuple[ProcessorBase, ...] = tuple(members)
        self.migration_total = 0
        if kind == "partitioned":
            if policy is not None or policy_kwargs:
                raise RTOSError(
                    "partitioned domains keep each member's own policy; "
                    "drop the policy argument"
                )
            if migration_cost:
                raise RTOSError(
                    "partitioned domains never migrate; drop migration_cost"
                )
            if clusters is not None:
                raise RTOSError("clusters only apply to clustered domains")
            self.policy = None
            self._clusters = tuple((m,) for m in self.members)
        else:
            for member in members:
                if member.engine != "procedural":
                    raise RTOSError(
                        f"{kind} domains require procedural-engine members; "
                        f"{member.name!r} uses {member.engine!r}"
                    )
            self.policy = make_policy(
                "global_edf" if policy is None else policy, **policy_kwargs
            )
            # one policy instance on every member so per-core dispatch,
            # placement and victim selection agree on a single ordering
            for member in members:
                member.policy = self.policy
                self.policy.on_attach(member)
            if kind == "clustered":
                self._clusters = self._check_clusters(clusters)
            else:
                if clusters is not None:
                    raise RTOSError("clusters only apply to clustered domains")
                self._clusters = (self.members,)
            if migration_cost:
                for member in members:
                    member.overheads = Overheads(
                        scheduling=member.overheads._scheduling,
                        context_load=member.overheads._context_load,
                        context_save=member.overheads._context_save,
                        migration=migration_cost,
                    )
        self._cluster_index: Dict[str, Tuple[ProcessorBase, ...]] = {}
        for cluster in self._clusters:
            for member in cluster:
                self._cluster_index[member.name] = cluster
        for member in members:
            member.domain = self

    def _check_clusters(
        self, clusters: Optional[Sequence[Sequence[ProcessorBase]]]
    ) -> Tuple[Tuple[ProcessorBase, ...], ...]:
        if not clusters:
            raise RTOSError(
                f"clustered domain {self.name!r} needs an explicit clusters "
                "partition of its members"
            )
        assigned: Dict[str, int] = {}
        out: List[Tuple[ProcessorBase, ...]] = []
        for index, cluster in enumerate(clusters):
            group = tuple(cluster)
            if not group:
                raise RTOSError(f"empty cluster in domain {self.name!r}")
            for member in group:
                if member not in self.members:
                    raise RTOSError(
                        f"cluster processor {member.name!r} is not a member "
                        f"of domain {self.name!r}"
                    )
                if member.name in assigned:
                    raise RTOSError(
                        f"processor {member.name!r} appears in two clusters"
                    )
                assigned[member.name] = index
            out.append(group)
        missing = [m.name for m in self.members if m.name not in assigned]
        if missing:
            raise RTOSError(
                f"clusters of domain {self.name!r} do not cover {missing}"
            )
        return tuple(out)

    # ------------------------------------------------------------------
    # Membership helpers
    # ------------------------------------------------------------------
    def add_member(self, processor: ProcessorBase) -> None:
        """Late-attach ``processor`` (before the simulation starts)."""
        if self.sim.now:
            raise RTOSError("domain membership is fixed once simulation runs")
        if processor.domain is not None:
            raise RTOSError(
                f"processor {processor.name!r} is already in a domain"
            )
        if self.kind == "clustered":
            raise RTOSError(
                "clustered domains take their full member list at "
                "construction; rebuild with explicit clusters"
            )
        if self.kind != "partitioned":
            if processor.engine != "procedural":
                raise RTOSError(
                    f"{self.kind} domains require procedural-engine members"
                )
            processor.policy = self.policy
            self.policy.on_attach(processor)
        self.members = self.members + (processor,)
        if self.kind == "partitioned":
            self._clusters = self._clusters + ((processor,),)
            self._cluster_index[processor.name] = (processor,)
        else:
            self._clusters = (self.members,)
            self._cluster_index = {m.name: self.members for m in self.members}
        processor.domain = self

    def _cluster_of(self, cpu: ProcessorBase) -> Tuple[ProcessorBase, ...]:
        return self._cluster_index[cpu.name]

    @staticmethod
    def _eligible(task: Task, cpu: ProcessorBase) -> bool:
        affinity = task.affinity
        return affinity is None or cpu.name in affinity

    # ------------------------------------------------------------------
    # The two dispatch-seam entry points (called by ProcessorBase)
    # ------------------------------------------------------------------
    def task_ready(self, task: Task, reason: str) -> None:
        """A member task entered Ready: queue it and pick a core to kick.

        The task is queued on its current (home) core -- the invariant a
        READY task lives in ``task.processor._ready`` -- and the chosen
        target core's ordinary decision logic runs against it: inline
        overhead charging when the waker runs on that core, the
        idle-dispatch callback chain or a preemption request otherwise.
        Actual migration happens lazily at the target's election.
        """
        if self.kind == "partitioned":
            task.processor._admit_ready(task, reason)
            return
        home = task.processor
        task.set_state(TaskState.READY, reason)
        home._ready.append(task)
        target = self._place(task)
        if target is not None:
            target._reschedule(task)

    def select_for(self, cpu: ProcessorBase) -> Optional[Task]:
        """Elect the next task for ``cpu`` from the cluster-wide pool.

        Equal-urgency candidates (the policy's ``tie_candidates``) are a
        ``migrate`` choice point under verification.  The elected task is
        pulled from whichever member queue holds it, migrating if that
        is not ``cpu``.
        """
        if self.kind == "partitioned":
            return cpu._select_and_remove_local()
        pool = [
            t
            for member in self._cluster_of(cpu)
            for t in member._ready
            if self._eligible(t, cpu)
        ]
        if not pool:
            return None
        chosen = self.policy.select(cpu, pool)
        controller = self.sim.choice_controller
        if controller is not None and chosen is not None:
            candidates = self.policy.tie_candidates(cpu, pool, chosen)
            if len(candidates) > 1:
                index = controller.choose(
                    "migrate", f"{self.name}:{cpu.name}", len(candidates),
                    labels=tuple(t.name for t in candidates),
                )
                chosen = candidates[index]
        if chosen is None:
            return None
        owner = chosen.processor
        owner._ready.remove(chosen)
        if owner is not cpu:
            self._migrate(chosen, cpu)
        return chosen

    def task_preempted(self, task: Task) -> None:
        """A member task was just preempted and re-queued on its core.

        Under global/clustered dispatch it need not wait for its home
        core: kick the first idle eligible sibling so its election
        (which sees the whole pool) can resume the victim immediately.
        """
        if self.kind == "partitioned":
            return
        home = task.processor
        for member in self._cluster_of(home):
            if member is home:
                continue
            if (
                member.running is None
                and not member._scheduling_in_progress
                and self._eligible(task, member)
            ):
                member._external_wake(task)
                return

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, task: Task) -> Optional[ProcessorBase]:
        """Which member core handles ``task``'s readiness, or None to park.

        Preference order: an idle eligible core (the home core first --
        no migration for free), else the running core whose task is
        least urgent among those the policy would preempt, else nobody
        (the task waits in its home queue until an election pulls it).
        Multiple equivalent targets are a ``place`` choice point.
        """
        home = task.processor
        cluster = self._cluster_of(home)
        idle = [
            m
            for m in cluster
            if m.running is None
            and not m._scheduling_in_progress
            and self._eligible(task, m)
        ]
        if idle:
            if home in idle:
                idle.remove(home)
                idle.insert(0, home)
            return self._choose_target("place", task, idle)
        victims = [
            m
            for m in cluster
            if m.running is not None
            and m.preemptive
            and self._eligible(task, m)
            and self.policy.should_preempt(m, m.running, task)
        ]
        if victims:
            least = [
                v
                for v in victims
                if not any(
                    self.policy.should_preempt(v, w.running, v.running)
                    for w in victims
                    if w is not v
                )
            ]
            return self._choose_target("place", task, least or victims)
        return None

    def _choose_target(
        self, kind: str, task: Task, candidates: List[ProcessorBase]
    ) -> ProcessorBase:
        controller = self.sim.choice_controller
        if controller is not None and len(candidates) > 1:
            index = controller.choose(
                kind, f"{self.name}:{task.name}", len(candidates),
                labels=tuple(m.name for m in candidates),
            )
            return candidates[index]
        return candidates[0]

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def _migrate(self, task: Task, target: ProcessorBase) -> None:
        source = task.processor
        task.processor = target
        task.function.context.processor = target
        task.migration_pending = True
        task.migration_count += 1
        target.migration_count += 1
        self.migration_total += 1
        self.sim.record(
            MigrationRecord(
                self.sim.now, task.name, source.name, target.name,
                domain=self.name,
            )
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def processors(self) -> Tuple[ProcessorBase, ...]:
        return self.members

    def tasks(self) -> List[Task]:
        """All tasks mapped on member cores, in member order."""
        return [task for member in self.members for task in member.tasks]

    def stats(self) -> dict:
        """Summary counters for reports, ``/metrics`` and benchmarks."""
        utilizations = [m.utilization() for m in self.members]
        return {
            "domain": self.name,
            "kind": self.kind,
            "policy": self.policy.name if self.policy is not None else "per-core",
            "processors": [m.name for m in self.members],
            "clusters": [[m.name for m in c] for c in self._clusters],
            "migrations": self.migration_total,
            "per_task_migrations": {
                t.name: t.migration_count
                for t in self.tasks()
                if t.migration_count
            },
            "mean_utilization": (
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            "per_core_utilization": {
                m.name: u for m, u in zip(self.members, utilizations)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SchedulingDomain {self.name} {self.kind} "
            f"cores={[m.name for m in self.members]}>"
        )
