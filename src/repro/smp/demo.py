"""Canned SMP specs for the CLI, CI smoke jobs and the test suite.

:func:`smp_miss_spec` is the acceptance scenario for the ``place``
choice class: a global-EDF domain over one fast and one slow core, and
a single job whose deadline holds on the fast (home) core but not on
the slow one.  The nominal run (no controller, home-first placement)
meets the deadline; the explorer's other ``place`` branch delivers the
wake to the slow core, the election migrates the job there, the speed
scaling doubles its execute window, and the watchdog fires -- a deadline
miss reachable *only* under that placement choice, minimized to a
one-entry trail and deterministically replayable.
"""

from __future__ import annotations


def smp_miss_spec() -> dict:
    """A miss reachable only under one global-EDF placement branch."""
    return {
        "name": "smp_miss",
        "processors": [
            {"name": "cpu0", "speed": 1.0},
            {"name": "cpu1", "speed": 0.5},
        ],
        "scheduling_domains": [
            {
                "name": "dom0",
                "kind": "global",
                "policy": "global_edf",
                "processors": ["cpu0", "cpu1"],
                "migration_cost": "10us",
            }
        ],
        "functions": [
            {
                "name": "job",
                "processor": "cpu0",
                "wcet": "4ms",
                "deadline": "6ms",
                "script": [["execute", "4ms"]],
            }
        ],
    }


def smp_tie_spec() -> dict:
    """A small global-EDF tie space (two equal jobs, two equal cores).

    Both jobs carry no absolute deadline, so under global EDF every
    ready task is an equal-urgency candidate: placement of the second
    job and each core's election branch, giving the dfs-vs-random
    agreement tests a few dozen schedules to cover.
    """
    return {
        "name": "smp_tie",
        "processors": [
            {"name": "cpu0"},
            {"name": "cpu1"},
        ],
        "scheduling_domains": [
            {
                "name": "dom0",
                "kind": "global",
                "policy": "global_edf",
                "processors": ["cpu0", "cpu1"],
            }
        ],
        "functions": [
            {
                "name": "job_a",
                "processor": "cpu0",
                "script": [["execute", "2ms"], ["delay", "3ms"],
                           ["execute", "1ms"]],
            },
            {
                "name": "job_b",
                "processor": "cpu0",
                "script": [["execute", "2ms"], ["delay", "3ms"],
                           ["execute", "1ms"]],
            },
        ],
    }


__all__ = ["smp_miss_spec", "smp_tie_spec"]
