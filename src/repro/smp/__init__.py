"""Multicore scheduling domains over the generic RTOS model.

The paper models a single Processor owning its ready queue; this package
generalizes to N cores coordinated by a :class:`SchedulingDomain` --
``global`` (one shared pool, work-stealing elections, migration),
``partitioned`` (static task-to-core assignment, byte-identical to
standalone processors) and ``clustered`` (global within each cluster) --
with per-task affinity masks, ``Overheads``-accounted migration costs,
and global EDF/RM policies from the shared registry.  Placement and
equal-urgency dispatch are verifier choice points (``place`` /
``migrate``), so :mod:`repro.verify` explores SMP schedules the same
way it explores single-core ties.
"""

from .demo import smp_miss_spec, smp_tie_spec
from .domain import DOMAIN_KINDS, SchedulingDomain

__all__ = [
    "DOMAIN_KINDS",
    "SchedulingDomain",
    "smp_miss_spec",
    "smp_tie_spec",
]
