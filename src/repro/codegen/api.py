"""The generated code's RTOS abstraction layer (header + POSIX port).

The paper's §6: "This approach has been selected ... also to ease
software generation for a final implementation using commercial RTOS.
This software generation is a goal of our future work."  This module
carries the two fixed source files that generated applications compile
against:

* ``rtos_api.h`` -- a small generic RTOS API (tasks, events with the
  three MCSE memorization policies, message queues, mutexes, delays)
  shaped so each call maps 1:1 onto common commercial kernels
  (VxWorks/FreeRTOS/POSIX);
* ``rtos_port_posix.c`` -- a reference implementation of that API on
  POSIX threads, so generated applications compile and run on a host.
"""

RTOS_API_H = """\
/* rtos_api.h -- generic RTOS abstraction for generated applications.
 *
 * Generated alongside application code by pyrtos-sc (a reproduction of
 * Le Moigne et al., DATE 2004).  Port this header to your commercial
 * RTOS by mapping each call onto the native primitive; a POSIX
 * reference port ships as rtos_port_posix.c.
 */
#ifndef RTOS_API_H
#define RTOS_API_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef void (*rtos_task_fn)(void *arg);
typedef struct rtos_task rtos_task_t;
typedef struct rtos_event rtos_event_t;
typedef struct rtos_queue rtos_queue_t;
typedef struct rtos_mutex rtos_mutex_t;

/* MCSE event memorization policies (paper section 2). */
typedef enum {
    RTOS_EVENT_FUGITIVE = 0,
    RTOS_EVENT_BOOLEAN = 1,
    RTOS_EVENT_COUNTER = 2
} rtos_event_policy_t;

/* -- kernel ----------------------------------------------------------- */
void rtos_init(void);
void rtos_start(void);           /* runs until every task returned */
void rtos_set_preemptive(int on);

/* -- tasks ------------------------------------------------------------ */
rtos_task_t *rtos_task_create(const char *name, rtos_task_fn fn,
                              void *arg, int priority);

/* -- time ------------------------------------------------------------- */
void rtos_delay_us(uint64_t us);      /* sleep (releases the CPU)       */
void rtos_busy_us(uint64_t us);       /* model of a computation segment */

/* -- events ------------------------------------------------------------ */
rtos_event_t *rtos_event_create(const char *name, rtos_event_policy_t p);
void rtos_event_signal(rtos_event_t *ev);
void rtos_event_wait(rtos_event_t *ev);

/* -- message queues ----------------------------------------------------- */
rtos_queue_t *rtos_queue_create(const char *name, int capacity);
void rtos_queue_send(rtos_queue_t *q, intptr_t msg);    /* blocks if full */
intptr_t rtos_queue_recv(rtos_queue_t *q);              /* blocks if empty */

/* -- mutexes ------------------------------------------------------------ */
rtos_mutex_t *rtos_mutex_create(const char *name);
void rtos_mutex_lock(rtos_mutex_t *m);
void rtos_mutex_unlock(rtos_mutex_t *m);

#ifdef __cplusplus
}
#endif
#endif /* RTOS_API_H */
"""

RTOS_PORT_POSIX_C = """\
/* rtos_port_posix.c -- POSIX reference port of rtos_api.h.
 *
 * Functional, not timing-accurate: priorities are advisory (standard
 * POSIX scheduling), rtos_busy_us spins on CLOCK_MONOTONIC.  Swap this
 * file for a port to your commercial RTOS in production.
 */
#include "rtos_api.h"

#include <pthread.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

struct rtos_event {
    pthread_mutex_t lock;
    pthread_cond_t cond;
    rtos_event_policy_t policy;
    long count; /* boolean: 0/1, counter: n, fugitive: unused */
    unsigned long generation;
};

struct rtos_queue {
    pthread_mutex_t lock;
    pthread_cond_t not_empty;
    pthread_cond_t not_full;
    intptr_t *items;
    int capacity, head, size;
};

struct rtos_mutex {
    pthread_mutex_t lock;
};

struct rtos_task {
    pthread_t thread;
    rtos_task_fn fn;
    void *arg;
    char name[32];
};

#define MAX_TASKS 64
static struct rtos_task *g_tasks[MAX_TASKS];
static int g_task_count = 0;

void rtos_init(void) {}

void rtos_set_preemptive(int on) { (void)on; /* advisory on POSIX */ }

static void *task_trampoline(void *raw) {
    struct rtos_task *task = (struct rtos_task *)raw;
    task->fn(task->arg);
    return NULL;
}

rtos_task_t *rtos_task_create(const char *name, rtos_task_fn fn,
                              void *arg, int priority) {
    struct rtos_task *task = calloc(1, sizeof(*task));
    (void)priority; /* advisory under the POSIX reference port */
    task->fn = fn;
    task->arg = arg;
    snprintf(task->name, sizeof(task->name), "%s", name);
    if (g_task_count < MAX_TASKS)
        g_tasks[g_task_count++] = task;
    return task;
}

void rtos_start(void) {
    for (int i = 0; i < g_task_count; i++)
        pthread_create(&g_tasks[i]->thread, NULL, task_trampoline,
                       g_tasks[i]);
    for (int i = 0; i < g_task_count; i++)
        pthread_join(g_tasks[i]->thread, NULL);
}

void rtos_delay_us(uint64_t us) {
    struct timespec ts = { (time_t)(us / 1000000u),
                           (long)(us % 1000000u) * 1000L };
    nanosleep(&ts, NULL);
}

void rtos_busy_us(uint64_t us) {
    struct timespec start, now;
    clock_gettime(CLOCK_MONOTONIC, &start);
    for (;;) {
        clock_gettime(CLOCK_MONOTONIC, &now);
        uint64_t elapsed = (uint64_t)(now.tv_sec - start.tv_sec) * 1000000u
                         + (uint64_t)(now.tv_nsec - start.tv_nsec) / 1000u;
        if (elapsed >= us)
            break;
    }
}

rtos_event_t *rtos_event_create(const char *name, rtos_event_policy_t p) {
    (void)name;
    struct rtos_event *ev = calloc(1, sizeof(*ev));
    pthread_mutex_init(&ev->lock, NULL);
    pthread_cond_init(&ev->cond, NULL);
    ev->policy = p;
    return ev;
}

void rtos_event_signal(rtos_event_t *ev) {
    pthread_mutex_lock(&ev->lock);
    switch (ev->policy) {
    case RTOS_EVENT_FUGITIVE:
        ev->generation++;
        pthread_cond_broadcast(&ev->cond);
        break;
    case RTOS_EVENT_BOOLEAN:
        ev->count = 1;
        ev->generation++;
        pthread_cond_broadcast(&ev->cond);
        break;
    case RTOS_EVENT_COUNTER:
        ev->count++;
        ev->generation++;
        pthread_cond_signal(&ev->cond);
        break;
    }
    pthread_mutex_unlock(&ev->lock);
}

void rtos_event_wait(rtos_event_t *ev) {
    pthread_mutex_lock(&ev->lock);
    if (ev->policy == RTOS_EVENT_FUGITIVE) {
        unsigned long seen = ev->generation;
        while (ev->generation == seen)
            pthread_cond_wait(&ev->cond, &ev->lock);
    } else {
        while (ev->count == 0)
            pthread_cond_wait(&ev->cond, &ev->lock);
        if (ev->policy == RTOS_EVENT_BOOLEAN)
            ev->count = 0;
        else
            ev->count--;
    }
    pthread_mutex_unlock(&ev->lock);
}

rtos_queue_t *rtos_queue_create(const char *name, int capacity) {
    (void)name;
    struct rtos_queue *q = calloc(1, sizeof(*q));
    pthread_mutex_init(&q->lock, NULL);
    pthread_cond_init(&q->not_empty, NULL);
    pthread_cond_init(&q->not_full, NULL);
    q->capacity = capacity > 0 ? capacity : 1024;
    q->items = calloc((size_t)q->capacity, sizeof(intptr_t));
    return q;
}

void rtos_queue_send(rtos_queue_t *q, intptr_t msg) {
    pthread_mutex_lock(&q->lock);
    while (q->size == q->capacity)
        pthread_cond_wait(&q->not_full, &q->lock);
    q->items[(q->head + q->size) % q->capacity] = msg;
    q->size++;
    pthread_cond_signal(&q->not_empty);
    pthread_mutex_unlock(&q->lock);
}

intptr_t rtos_queue_recv(rtos_queue_t *q) {
    pthread_mutex_lock(&q->lock);
    while (q->size == 0)
        pthread_cond_wait(&q->not_empty, &q->lock);
    intptr_t msg = q->items[q->head];
    q->head = (q->head + 1) % q->capacity;
    q->size--;
    pthread_cond_signal(&q->not_full);
    pthread_mutex_unlock(&q->lock);
    return msg;
}

rtos_mutex_t *rtos_mutex_create(const char *name) {
    (void)name;
    struct rtos_mutex *m = calloc(1, sizeof(*m));
    pthread_mutex_init(&m->lock, NULL);
    return m;
}

void rtos_mutex_lock(rtos_mutex_t *m) { pthread_mutex_lock(&m->lock); }
void rtos_mutex_unlock(rtos_mutex_t *m) { pthread_mutex_unlock(&m->lock); }
"""
