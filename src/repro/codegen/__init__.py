"""Software generation from validated models (the paper's §6 future work)."""

from .api import RTOS_API_H, RTOS_PORT_POSIX_C
from .c_writer import CWriter, c_identifier, generate_c

__all__ = [
    "CWriter",
    "RTOS_API_H",
    "RTOS_PORT_POSIX_C",
    "c_identifier",
    "generate_c",
]
