"""C code generation from declarative system specifications.

Implements the paper's §6 future work: generating software for a final
implementation from the validated model.  The same specification dict
that :func:`repro.mcse.builder.build_system` elaborates into a simulation
is emitted as a compilable C application against the generic RTOS API of
:mod:`repro.codegen.api` (a POSIX reference port is emitted alongside,
so the output builds and runs on a host out of the box):

    spec -> app.c + rtos_api.h + rtos_port_posix.c

Only *script* behaviors can be generated (they are the analysable
form a capture tool produces); functions defined as Python callables
yield a clearly marked stub for hand implementation.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional

from ..errors import BuildError
from ..kernel.time import US, parse_time
from ..mcse.builder import _validate_block
from ..mcse.model import System
from .api import RTOS_API_H, RTOS_PORT_POSIX_C

_IDENT_RE = re.compile(r"[^0-9a-zA-Z_]")


def c_identifier(name: str) -> str:
    """Turn a model name into a valid C identifier."""
    ident = _IDENT_RE.sub("_", name)
    if not ident or ident[0].isdigit():
        ident = "_" + ident
    return ident


def _duration_us(value) -> int:
    """Spec duration -> whole microseconds for the generated API."""
    femto = parse_time(value)
    return max(0, round(femto / US))


class CWriter:
    """Generates the C application for one specification."""

    def __init__(self, spec: Dict) -> None:
        if not isinstance(spec, dict):
            raise BuildError("spec must be a dict")
        self.spec = spec
        self.name = spec.get("name", "system")
        # collect relation kinds for declaration and call selection
        self.relations: Dict[str, Dict] = {}
        for rel in spec.get("relations", ()):
            rel = dict(rel)
            rel_name = rel.get("name")
            if not rel_name:
                raise BuildError(f"relation spec missing a name: {rel!r}")
            self.relations[rel_name] = rel

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> Dict[str, str]:
        """Return ``{filename: contents}`` for the full application."""
        return {
            "rtos_api.h": RTOS_API_H,
            "rtos_port_posix.c": RTOS_PORT_POSIX_C,
            "app.c": self._app_c(),
        }

    def write(self, directory: str) -> List[str]:
        """Write all files into ``directory``; returns the paths."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        for filename, contents in self.generate().items():
            path = os.path.join(directory, filename)
            with open(path, "w") as handle:
                handle.write(contents)
            paths.append(path)
        return paths

    # ------------------------------------------------------------------
    # app.c
    # ------------------------------------------------------------------
    def _app_c(self) -> str:
        parts: List[str] = [
            f"/* app.c -- generated from model {self.name!r} by pyrtos-sc.",
            " * Build:  cc -O2 app.c rtos_port_posix.c -lpthread -o app",
            " */",
            '#include "rtos_api.h"',
            "",
        ]
        parts.extend(self._relation_declarations())
        parts.append("")
        for fn_spec in self.spec.get("functions", ()):
            parts.extend(self._task_function(dict(fn_spec)))
            parts.append("")
        parts.extend(self._main())
        return "\n".join(parts) + "\n"

    def _relation_declarations(self) -> List[str]:
        lines = ["/* relations */"]
        for name, rel in self.relations.items():
            ident = c_identifier(name)
            kind = rel.get("kind")
            if kind == "event":
                lines.append(f"static rtos_event_t *{ident};")
            elif kind == "queue":
                lines.append(f"static rtos_queue_t *{ident};")
            elif kind == "shared":
                lines.append(f"static rtos_mutex_t *{ident}_mutex;")
                lines.append(f"static volatile intptr_t {ident}_value;")
            else:
                raise BuildError(f"unknown relation kind {kind!r} for {name!r}")
        return lines

    def _task_function(self, fn_spec: Dict) -> List[str]:
        name = fn_spec.get("name")
        if not name:
            raise BuildError(f"function spec missing a name: {fn_spec!r}")
        ident = c_identifier(name)
        lines = [f"static void task_{ident}(void *arg) {{", "    (void)arg;"]
        script = fn_spec.get("script")
        if script is None:
            lines += [
                f"    /* TODO: behavior of {name!r} was given as Python",
                "     * code; implement it here by hand. */",
            ]
        else:
            # reuse the simulator's validator so generated code and
            # simulation share one notion of a well-formed script
            ops = _validate_block(self._stub_system(), script, path=name)
            lines.extend(self._emit_block(ops, indent=1))
        lines.append("}")
        return lines

    def _stub_system(self) -> System:
        """A throwaway System holding just the relation registry, so the
        shared script validator can resolve relation names."""
        system = System.__new__(System)
        system.relations = {name: object() for name in self.relations}
        return system

    def _emit_block(self, ops: List, indent: int) -> List[str]:
        pad = "    " * indent
        lines: List[str] = []
        for op_name, args in ops:
            if op_name == "execute":
                cost = args[0]
                if isinstance(cost, tuple):
                    cost = cost[0]  # interval: generate the nominal bound
                lines.append(f"{pad}rtos_busy_us({_us(cost)});")
            elif op_name == "delay":
                lines.append(f"{pad}rtos_delay_us({_us(args[0])});")
            elif op_name == "wait":
                lines.append(f"{pad}rtos_event_wait({self._ref(args[0])});")
            elif op_name == "signal":
                lines.append(f"{pad}rtos_event_signal({self._ref(args[0])});")
            elif op_name == "read":
                lines.append(
                    f"{pad}(void)rtos_queue_recv({self._ref(args[0])});"
                )
            elif op_name == "write":
                lines.append(
                    f"{pad}rtos_queue_send({self._ref(args[0])}, "
                    f"{_message(args[1])});"
                )
            elif op_name == "lock":
                lines.append(
                    f"{pad}rtos_mutex_lock({self._ref(args[0])}_mutex);"
                )
            elif op_name == "unlock":
                lines.append(
                    f"{pad}rtos_mutex_unlock({self._ref(args[0])}_mutex);"
                )
            elif op_name == "read_shared":
                ident = self._ref(args[0])
                lines += [
                    f"{pad}rtos_mutex_lock({ident}_mutex);",
                    f"{pad}(void){ident}_value;",
                    f"{pad}rtos_mutex_unlock({ident}_mutex);",
                ]
            elif op_name == "write_shared":
                ident = self._ref(args[0])
                lines += [
                    f"{pad}rtos_mutex_lock({ident}_mutex);",
                    f"{pad}{ident}_value = {_message(args[1])};",
                    f"{pad}rtos_mutex_unlock({ident}_mutex);",
                ]
            elif op_name == "set_preemptive":
                lines.append(
                    f"{pad}rtos_set_preemptive({1 if args[0] else 0});"
                )
            elif op_name == "loop":
                count, body = args
                if count is None:
                    lines.append(f"{pad}for (;;) {{")
                else:
                    lines.append(
                        f"{pad}for (int i_{indent} = 0; "
                        f"i_{indent} < {count}; i_{indent}++) {{"
                    )
                lines.extend(self._emit_block(body, indent + 1))
                lines.append(f"{pad}}}")
            else:  # pragma: no cover - validator forbids this
                raise BuildError(f"cannot generate op {op_name!r}")
        return lines

    def _ref(self, relation_name: str) -> str:
        if relation_name not in self.relations:
            raise BuildError(f"unknown relation {relation_name!r}")
        return c_identifier(relation_name)

    # ------------------------------------------------------------------
    # main()
    # ------------------------------------------------------------------
    def _main(self) -> List[str]:
        lines = ["int main(void) {", "    rtos_init();"]
        for name, rel in self.relations.items():
            ident = c_identifier(name)
            kind = rel.get("kind")
            if kind == "event":
                policy = rel.get("policy", "fugitive").upper()
                lines.append(
                    f'    {ident} = rtos_event_create("{name}", '
                    f"RTOS_EVENT_{policy});"
                )
            elif kind == "queue":
                capacity = rel.get("capacity", 8) or 0
                lines.append(
                    f'    {ident} = rtos_queue_create("{name}", {capacity});'
                )
            elif kind == "shared":
                lines.append(
                    f'    {ident}_mutex = rtos_mutex_create("{name}");'
                )
                initial = rel.get("initial", 0)
                lines.append(f"    {ident}_value = {_message(initial)};")
        for fn_spec in self.spec.get("functions", ()):
            name = fn_spec["name"]
            ident = c_identifier(name)
            priority = fn_spec.get("priority", 0)
            lines.append(
                f'    rtos_task_create("{name}", task_{ident}, 0, '
                f"{priority});"
            )
        lines += ["    rtos_start();", "    return 0;", "}"]
        return lines


def _us(duration_fs: int) -> int:
    return max(0, round(duration_fs / US))


def _message(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value is None:
        return "0"
    return f"0 /* value: {value!r} */"


def generate_c(spec: Dict, directory: Optional[str] = None):
    """Generate the C application for ``spec``.

    With ``directory`` the files are written and their paths returned;
    otherwise the ``{filename: contents}`` dict is returned.
    """
    writer = CWriter(spec)
    if directory is not None:
        return writer.write(directory)
    return writer.generate()
