"""The unified effect IR every behavior-flow analysis runs on.

Task behaviors come in two shapes -- declarative ``script_ops`` attached
by the builder, and plain Python generator functions -- and both are
lowered here into one small structured tree:

* :class:`Effect` leaves -- one kernel-visible action each: ``execute``
  / ``delay`` (with a ``(lo, hi)`` cost interval), ``wait`` / ``signal``
  / ``read`` / ``write`` on a relation, ``lock`` / ``unlock`` /
  ``shared_read`` / ``shared_write`` on a shared variable, ``obj_write``
  (a mutation of a closure-captured Python container -- the static
  counterpart of the SAN303 watch list), and ``opaque`` (a delegation
  the analyzer cannot see through);
* :class:`Seq` / :class:`Branch` / :class:`Loop` / :class:`Exit`
  interior nodes -- the control skeleton, with loop bounds (exact
  count, proven-infinite, or unknown) preserved.

Script lowering is *exact*: the op grammar has no opaque corners.
Python lowering parses the generator source with :mod:`ast`, resolves
argument names through closure cells and globals (the same trick the
old textual lock walker used), and keeps an ``exact`` bit: any
unresolvable relation argument or unrecognized ``yield from``
delegation clears it, so downstream rules can refuse to claim
ERROR-severity findings they cannot prove.

:func:`interval` is the shared structural evaluator: it folds any
per-effect contribution (cost, signal count, wait count) into a
``(lo, hi)`` interval with ``None`` standing for *unbounded*, handling
branch min/max, loop multiplication and early exits conservatively.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .code import _pragmas

#: Leaf effect kinds (see the module docstring).
EFFECT_KINDS = frozenset((
    "execute", "delay", "wait", "signal", "read", "write",
    "lock", "unlock", "shared_read", "shared_write",
    "obj_write", "opaque",
))

#: ``Function`` methods that surface as effects, and the kinds they map
#: to.  Matches the behavior driver's surface exactly.
_METHOD_KINDS: Dict[str, str] = {
    "execute": "execute",
    "delay": "delay",
    "wait": "wait",
    "signal": "signal",
    "read": "read",
    "write": "write",
    "lock": "lock",
    "unlock": "unlock",
    "read_shared": "shared_read",
    "write_shared": "shared_write",
    "set_flag": "signal",
    "clear_flag": "signal",
    "wait_flag": "wait",
}

#: Container methods that mutate their receiver in place.  A call to one
#: of these on a closure-captured container is an ``obj_write`` effect
#: (mirrors what the runtime sanitizer's snapshot diffing would see).
_MUTATOR_METHODS = frozenset((
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "sort", "reverse", "add", "update", "discard", "setdefault",
    "difference_update", "intersection_update",
    "symmetric_difference_update",
))

#: Closure-cell contents of these types are race candidates -- kept in
#: lockstep with ``repro.analyze.sanitize._WATCHABLE``.
_WATCHABLE = (list, dict, set, bytearray)


@dataclass(frozen=True)
class Effect:
    """One kernel-visible action; ``cost`` is a ``(lo, hi)`` interval."""

    kind: str
    target: Optional[str] = None
    cost: Optional[Tuple[int, int]] = None
    line: Optional[int] = None


@dataclass(frozen=True)
class Seq:
    """Sequential composition."""

    items: Tuple["Node", ...]


@dataclass(frozen=True)
class Branch:
    """Alternative arms (an ``if``/``else``; the else arm may be empty)."""

    arms: Tuple["Node", ...]
    line: Optional[int] = None


@dataclass(frozen=True)
class Loop:
    """A loop: ``count`` iterations exactly, proven infinite, or unknown.

    ``count`` is an ``int`` only when the bound is statically exact;
    ``infinite`` is only ``True`` when the loop provably never exits
    forward (``loop(None, ...)`` scripts, ``while True`` with no
    ``break``).  ``count is None and not infinite`` means *unknown*:
    zero or more iterations.
    """

    body: "Node"
    count: Optional[int] = None
    infinite: bool = False
    line: Optional[int] = None


@dataclass(frozen=True)
class Exit:
    """A ``return`` / ``break`` / ``continue`` control transfer."""

    kind: str
    line: Optional[int] = None


Node = Union[Effect, Seq, Branch, Loop, Exit]


@dataclass
class TaskEffects:
    """The lowered effect tree of one function, plus provenance."""

    root: Seq
    #: ``"script"`` or ``"behavior"``.
    source: str
    #: Every potential effect was resolved; ERROR-severity flow rules
    #: only claim findings on exact trees.
    exact: bool = True
    #: Closure-captured watchable containers: variable name -> ``id()``.
    objects: Dict[str, int] = field(default_factory=dict)
    #: ``# pyrtos: disable=`` pragmas in the behavior source.
    pragma_file: Set[str] = field(default_factory=set)
    pragma_lines: Dict[int, Set[str]] = field(default_factory=dict)

    def suppresses(self, rule_id: str, line: Optional[int]) -> bool:
        """Whether a source pragma suppresses ``rule_id`` at ``line``."""
        if rule_id in self.pragma_file:
            return True
        if line is None:
            return False
        return rule_id in self.pragma_lines.get(line, set())


def resolve_names(behavior: Any) -> Dict[str, object]:
    """Map of variable names visible to ``behavior`` -> bound objects.

    Closure cells shadow globals, exactly like the interpreter.
    """
    resolved: Dict[str, object] = {}
    code = getattr(behavior, "__code__", None)
    closure = getattr(behavior, "__closure__", None)
    if code is not None and closure:
        for name, cell in zip(code.co_freevars, closure):
            try:
                resolved[name] = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                pass
    for name, value in (getattr(behavior, "__globals__", None) or {}).items():
        resolved.setdefault(name, value)
    return resolved


# ---------------------------------------------------------------------------
# Script lowering (exact by construction)
# ---------------------------------------------------------------------------
def lower_script(ops: Sequence[Any]) -> TaskEffects:
    """Lower a validated builder op list into an exact effect tree."""
    return TaskEffects(root=Seq(tuple(_script_nodes(ops))), source="script")


def _script_nodes(ops: Sequence[Any]) -> Iterator[Node]:
    for name, args in ops:
        if name in ("execute", "delay"):
            raw = args[0]
            cost = tuple(raw) if type(raw) is tuple else (raw, raw)
            yield Effect(name, cost=(int(cost[0]), int(cost[1])))
        elif name == "loop":
            count, body = args
            yield Loop(
                body=Seq(tuple(_script_nodes(body))),
                count=count if count is not None else None,
                infinite=count is None,
            )
        elif name == "delay_until":
            # cadence-relative delay: anywhere from 0 (already late) to
            # one full period of wall-clock suspension
            yield Effect("delay", cost=(0, int(args[0])))
        elif name == "set_preemptive":
            continue  # scheduling-mode toggle: no flow-visible effect
        elif name == "clr_flag":
            yield Effect("signal", target=args[0])
        else:
            yield Effect(_METHOD_KINDS[name], target=args[0])


# ---------------------------------------------------------------------------
# Python behavior lowering (approximate where it must be, and says so)
# ---------------------------------------------------------------------------
class _LowerContext:
    def __init__(self, names: Dict[str, object]) -> None:
        self.names = names
        self.exact = True
        self.objects: Dict[str, int] = {}


def lower_behavior(behavior: Any) -> Optional[TaskEffects]:
    """Lower a Python generator behavior, or ``None`` when unparseable."""
    try:
        source = textwrap.dedent(inspect.getsource(behavior))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    fndef = next(
        (node for node in ast.walk(tree)
         if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))),
        None,
    )
    if fndef is None:
        return None
    context = _LowerContext(resolve_names(behavior))
    nodes = _lower_stmts(fndef.body, context)
    file_wide, per_line = _pragmas(source)
    return TaskEffects(
        root=Seq(tuple(nodes)),
        source="behavior",
        exact=context.exact,
        objects=context.objects,
        pragma_file=file_wide,
        pragma_lines=per_line,
    )


def _lower_stmts(stmts: Sequence[ast.stmt],
                 context: _LowerContext) -> List[Node]:
    out: List[Node] = []
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass)):
            continue  # no effects execute here
        if isinstance(stmt, ast.If):
            out.append(Branch(
                arms=(Seq(tuple(_lower_stmts(stmt.body, context))),
                      Seq(tuple(_lower_stmts(stmt.orelse, context)))),
                line=stmt.lineno,
            ))
        elif isinstance(stmt, ast.While):
            has_break = _has_break(stmt.body)
            infinite = (
                isinstance(stmt.test, ast.Constant)
                and stmt.test.value is True
                and not has_break
            )
            out.append(Loop(
                body=Seq(tuple(_lower_stmts(stmt.body, context))),
                count=None,
                infinite=infinite,
                line=stmt.lineno,
            ))
            out.extend(_lower_stmts(stmt.orelse, context))
        elif isinstance(stmt, ast.For):
            count = _range_count(stmt.iter, context.names)
            if _has_break(stmt.body):
                count = None
            out.append(Loop(
                body=Seq(tuple(_lower_stmts(stmt.body, context))),
                count=count,
                infinite=False,
                line=stmt.lineno,
            ))
            out.extend(_lower_stmts(stmt.orelse, context))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                out.extend(_expr_effects(stmt.value, stmt, context))
            out.append(Exit("return", line=stmt.lineno))
        elif isinstance(stmt, ast.Break):
            out.append(Exit("break", line=stmt.lineno))
        elif isinstance(stmt, ast.Continue):
            out.append(Exit("continue", line=stmt.lineno))
        elif isinstance(stmt, ast.Try):
            # Exceptional control flow is approximated: the handlers may
            # run after any prefix of the body, so exactness is lost.
            context.exact = False
            out.append(Seq(tuple(_lower_stmts(stmt.body, context))))
            for handler in stmt.handlers:
                out.append(Branch(
                    arms=(Seq(tuple(_lower_stmts(handler.body, context))),
                          Seq(())),
                    line=handler.lineno,
                ))
            out.extend(_lower_stmts(stmt.orelse, context))
            out.extend(_lower_stmts(stmt.finalbody, context))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                out.extend(_expr_effects(item.context_expr, stmt, context))
            out.extend(_lower_stmts(stmt.body, context))
        else:
            out.extend(_stmt_effects(stmt, context))
    return out


def _has_break(stmts: Sequence[ast.stmt]) -> bool:
    """Whether a ``break`` at this loop's level exists in ``stmts``."""
    for stmt in stmts:
        if isinstance(stmt, ast.Break):
            return True
        if isinstance(stmt, (ast.For, ast.While, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # a break in there binds to the inner loop/def
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                continue
        if isinstance(stmt, ast.If):
            if _has_break(stmt.body) or _has_break(stmt.orelse):
                return True
        elif isinstance(stmt, ast.Try):
            if (_has_break(stmt.body) or _has_break(stmt.orelse)
                    or _has_break(stmt.finalbody)
                    or any(_has_break(h.body) for h in stmt.handlers)):
                return True
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            if _has_break(stmt.body):
                return True
    return False


def _stmt_effects(stmt: ast.stmt, context: _LowerContext) -> List[Node]:
    """Effects of one straight-line statement, in textual order."""
    out: List[Node] = []
    # Container mutations through subscript assignment.
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Subscript) and \
                isinstance(target.value, ast.Name):
            effect = _container_write(target.value.id, stmt.lineno, context)
            if effect is not None:
                out.append(effect)
    for node in _preorder(stmt):
        if isinstance(node, ast.Yield):
            out.append(Effect("opaque", line=node.lineno))
            context.exact = False
        elif isinstance(node, ast.YieldFrom):
            if not _is_effect_call(node.value):
                out.append(Effect("opaque", line=node.lineno))
                context.exact = False
        elif isinstance(node, ast.Call):
            effect = _call_effect(node, context)
            if effect is not None:
                out.append(effect)
    return out


def _expr_effects(expr: ast.expr, stmt: ast.stmt,
                  context: _LowerContext) -> List[Node]:
    wrapper = ast.Expr(value=expr)
    ast.copy_location(wrapper, stmt)
    return _stmt_effects(wrapper, context)


def _preorder(tree: ast.AST) -> Iterator[ast.AST]:
    """Depth-first pre-order walk: nodes come out in source order."""
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _is_effect_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _METHOD_KINDS
    )


def _call_effect(node: ast.Call,
                 context: _LowerContext) -> Optional[Effect]:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    if method in _METHOD_KINDS:
        kind = _METHOD_KINDS[method]
        line = node.lineno
        if kind in ("execute", "delay"):
            cost = None
            if node.args:
                value = _const_int(node.args[0], context.names)
                if value is not None and value >= 0:
                    cost = (value, value)
            return Effect(kind, cost=cost, line=line)
        target = _relation_name(node.args[0], context.names) \
            if node.args else None
        if target is None:
            context.exact = False
        return Effect(kind, target=target, line=line)
    if method in _MUTATOR_METHODS and isinstance(func.value, ast.Name):
        return _container_write(func.value.id, node.lineno, context)
    return None


def _container_write(varname: str, line: int,
                     context: _LowerContext) -> Optional[Effect]:
    obj = context.names.get(varname)
    if not isinstance(obj, _WATCHABLE):
        return None
    if type(obj).__module__.split(".")[0] == "repro":
        return None  # model objects have kernel-defined semantics
    context.objects[varname] = id(obj)
    return Effect("obj_write", target=varname, line=line)


def _relation_name(node: ast.expr,
                   names: Dict[str, object]) -> Optional[str]:
    """The model-relation name an argument refers to, if resolvable."""
    target: object = None
    if isinstance(node, ast.Name):
        target = names.get(node.id)
    elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        owner = names.get(node.value.id)
        if owner is not None:
            target = getattr(owner, node.attr, None)
    if target is None:
        return None
    if type(target).__module__.split(".")[0] != "repro":
        return None
    name = getattr(target, "name", None)
    return name if isinstance(name, str) else None


def _const_int(node: ast.expr, names: Dict[str, object]) -> Optional[int]:
    """Statically evaluate a duration expression to an int, if possible."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, bool) or not isinstance(value, int):
            return None
        return value
    if isinstance(node, ast.Name):
        value = names.get(node.id)
        if isinstance(value, bool) or not isinstance(value, int):
            return None
        return value
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        owner = names.get(node.value.id)
        if owner is None:
            return None
        value = getattr(owner, node.attr, None)
        if isinstance(value, bool) or not isinstance(value, int):
            return None
        return value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand, names)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp):
        left = _const_int(node.left, names)
        right = _const_int(node.right, names)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv) and right != 0:
            return left // right
    return None


# ---------------------------------------------------------------------------
# Unified entry point
# ---------------------------------------------------------------------------
def task_effects(fn: Any) -> Optional[TaskEffects]:
    """The effect tree of one function, or ``None`` when fully opaque.

    Declarative ``script_ops`` win (exact); otherwise the Python
    behavior is lowered from source.
    """
    ops = getattr(fn, "script_ops", None)
    if ops:
        return lower_script(ops)
    behavior = getattr(fn, "_behavior", None)
    if behavior is None:
        # class-based functions override ``behavior()`` instead
        behavior = getattr(type(fn), "behavior", None)
    if behavior is None:
        return None
    return lower_behavior(behavior)


# ---------------------------------------------------------------------------
# Structural interval evaluation
# ---------------------------------------------------------------------------
Bound = Optional[int]  # None = unbounded


def _iadd(a: Bound, b: Bound) -> Bound:
    return None if a is None or b is None else a + b


def _imul(a: Bound, k: int) -> Bound:
    if k == 0 or a == 0:
        return 0
    return None if a is None else a * k


def _imin(a: Bound, b: Bound) -> Bound:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _imax(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return max(a, b)


@dataclass(frozen=True)
class _Fold:
    lo: Bound
    hi: Bound
    may_stop: bool    # a return/break/continue may cut what follows
    must_stop: bool   # control never falls through this node
    may_return: bool  # a return may escape enclosing loops


_ZERO = _Fold(0, 0, False, False, False)


def interval(node: Node,
             value: Callable[[Effect], Tuple[int, Bound]]) -> Tuple[Bound,
                                                                    Bound]:
    """Fold per-effect contributions into a sound ``(lo, hi)`` interval.

    ``value(effect)`` returns the contribution interval of one leaf
    (``(0, 0)`` for effects the query ignores).  ``lo`` is a guaranteed
    minimum over every path, ``hi`` a maximum (``None`` = unbounded);
    early exits and unknown loop bounds collapse the affected side
    conservatively.
    """
    fold = _fold(node, value)
    return fold.lo, fold.hi


def _fold(node: Node,
          value: Callable[[Effect], Tuple[int, Bound]]) -> _Fold:
    if isinstance(node, Effect):
        lo, hi = value(node)
        return _Fold(lo, hi, False, False, False)
    if isinstance(node, Exit):
        return _Fold(0, 0, True, True, node.kind == "return")
    if isinstance(node, Seq):
        lo: Bound = 0
        hi: Bound = 0
        may_stop = must_stop = may_return = False
        for item in node.items:
            if must_stop:
                break
            fold = _fold(item, value)
            lo = _iadd(lo, 0 if may_stop else fold.lo)
            hi = _iadd(hi, fold.hi)
            may_stop = may_stop or fold.may_stop
            must_stop = must_stop or fold.must_stop
            may_return = may_return or fold.may_return
        return _Fold(lo, hi, may_stop, must_stop, may_return)
    if isinstance(node, Branch):
        folds = [_fold(arm, value) for arm in node.arms] or [_ZERO]
        return _Fold(
            lo=min((f.lo for f in folds if f.lo is not None), default=None)
            if any(f.lo is not None for f in folds) else None,
            hi=max(folds, key=lambda f: (f.hi is None, f.hi or 0)).hi,
            may_stop=any(f.may_stop for f in folds),
            must_stop=all(f.must_stop for f in folds),
            may_return=any(f.may_return for f in folds),
        )
    if isinstance(node, Loop):
        body = _fold(node.body, value)
        if node.infinite:
            diverges = body.lo != 0 and not body.may_stop
            lo: Bound = None if diverges else 0
            hi: Bound = 0 if body.hi == 0 else None
            if not body.may_return:
                # the loop provably never exits: nothing after it runs
                return _Fold(lo, hi, True, True, False)
            return _Fold(lo, hi, True, False, True)
        if node.count is not None:
            return _Fold(
                lo=0 if body.may_stop else _imul(body.lo, node.count),
                hi=_imul(body.hi, node.count),
                may_stop=body.may_return,
                must_stop=False,
                may_return=body.may_return,
            )
        return _Fold(
            lo=0,
            hi=0 if body.hi == 0 else None,
            may_stop=body.may_return,
            must_stop=False,
            may_return=body.may_return,
        )
    raise TypeError(f"not an effect node: {node!r}")


def _range_count(iterator: ast.expr,
                 names: Dict[str, object]) -> Optional[int]:
    """The exact trip count of ``for _ in range(...)``, if resolvable."""
    if not (isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Name)
            and iterator.func.id == "range"
            and not iterator.keywords):
        return None
    bounds = [_const_int(arg, names) for arg in iterator.args]
    if any(bound is None for bound in bounds):
        return None
    if len(bounds) == 1:
        return max(0, bounds[0] or 0)
    if len(bounds) == 2:
        return max(0, (bounds[1] or 0) - (bounds[0] or 0))
    if len(bounds) == 3 and bounds[2] not in (0, None):
        start, stop, step = bounds[0] or 0, bounds[1] or 0, bounds[2] or 1
        span = stop - start
        if (span > 0) != (step > 0):
            return 0
        return max(0, (abs(span) + abs(step) - 1) // abs(step))
    return None


def count_interval(node: Node, kind: str,
                   target: Optional[str] = None) -> Tuple[Bound, Bound]:
    """How often an effect of ``kind`` (on ``target``) can occur."""
    def value(effect: Effect) -> Tuple[int, Bound]:
        if effect.kind != kind:
            return 0, 0
        if target is not None and effect.target != target:
            return 0, 0
        return 1, 1

    return interval(node, value)


def cost_interval(node: Node,
                  kinds: Tuple[str, ...] = ("execute",)) -> Tuple[Bound,
                                                                  Bound]:
    """The accumulated cost interval of ``kinds`` effects (CPU demand)."""
    def value(effect: Effect) -> Tuple[int, Bound]:
        if effect.kind not in kinds:
            return 0, 0
        if effect.cost is None:
            return 0, None  # unknown duration: no lower-bound claim
        return effect.cost[0], effect.cost[1]

    return interval(node, value)


def provably_terminating(node: Node) -> bool:
    """Whether every loop in the tree has a statically exact bound."""
    if isinstance(node, Loop):
        if node.count is None:
            return False
        return provably_terminating(node.body)
    if isinstance(node, Seq):
        return all(provably_terminating(item) for item in node.items)
    if isinstance(node, Branch):
        return all(provably_terminating(arm) for arm in node.arms)
    return True


__all__ = [
    "Branch",
    "Effect",
    "Exit",
    "Loop",
    "Node",
    "Seq",
    "TaskEffects",
    "cost_interval",
    "count_interval",
    "interval",
    "lower_behavior",
    "lower_script",
    "provably_terminating",
    "resolve_names",
    "task_effects",
]
