"""Priority-assignment analysis: Audsley's OPA over blocking-aware RTA.

Audsley's optimal priority assignment (OPA) fills priority levels from
the bottom up: a task may take the lowest unfilled level iff it meets
its deadline with every still-unassigned task interfering from above.
If some task fits at every step the resulting assignment is feasible;
if at some level no candidate fits, *no* fixed-priority assignment is
feasible (the test is exact for the RTA used here).

Blocking terms are recomputed per candidate assignment through
:class:`repro.analyze.blocking.BlockingModel` -- which tasks count as
lower priority (and hence can block) changes with the ordering, so a
static blocking table would make the search unsound.

Rule:

=========  ================================================================
RTS182     priority assignment infeasible / non-optimal per Audsley's OPA
=========  ================================================================

RTS182 only fires when the *current* assignment fails the
blocking-aware RTA: WARNING with the feasible reassignment when OPA
finds one (machine-applicable via ``pyrtos-sc lint --fix``), ERROR when
no assignment exists and every blocking interval is exact (WARNING
otherwise).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.response_time import PeriodicTask, response_time_analysis
from .blocking import (
    BlockingModel,
    _analysis_domain,
    _with_blocking,
)
from .diagnostics import Report, rule
from .flow import TaskFlow
from .schedulability import periodic_profile, resolve_overhead_costs

RTS182 = rule(
    "RTS182", "priority assignment infeasible per Audsley's OPA",
    explain="The configured priorities fail the blocking-aware "
            "response-time analysis, so the assignment -- not just one "
            "task -- is in question. Audsley's optimal priority assignment "
            "(bottom-up level filling, blocking terms recomputed per "
            "candidate ordering) either finds a feasible permutation of "
            "the existing priority values (reported in the finding and "
            "applicable via `pyrtos-sc lint --fix`) or proves that no "
            "fixed-priority assignment meets the deadlines. WARNING with "
            "the reassignment when one exists; ERROR when none does and "
            "every blocking interval is exact.",
)


def _profiles(processor: Any) -> List[PeriodicTask]:
    profiles = []
    for task in processor.tasks:
        profile = periodic_profile(task)
        if profile is not None:
            profiles.append(profile)
    return profiles


def _charged(profiles: List[PeriodicTask], model: BlockingModel,
             priorities: Mapping[str, int]) -> List[PeriodicTask]:
    reassigned = [
        PeriodicTask(
            name=p.name, wcet=p.wcet, period=p.period,
            priority=priorities[p.name], deadline=p.deadline,
        )
        for p in profiles
    ]
    return [
        _with_blocking(p, model.blocking(p.name, priorities))
        for p in reassigned
    ]


def _meets_deadlines(
    profiles: List[PeriodicTask], model: BlockingModel,
    priorities: Mapping[str, int], context_switch: int, scheduling: int,
    *, only: Optional[str] = None,
) -> bool:
    charged = _charged(profiles, model, priorities)
    responses = response_time_analysis(
        charged, context_switch=context_switch, scheduling=scheduling)
    for profile in charged:
        if only is not None and profile.name != only:
            continue
        response = responses[profile.name]
        if response is None or response > profile.effective_deadline:
            return False
    return True


def _blocking_exact(profiles: List[PeriodicTask], model: BlockingModel,
                    priorities: Mapping[str, int]) -> bool:
    return all(model.blocking(p.name, priorities).exact for p in profiles)


def opa_assignment(
    profiles: List[PeriodicTask], model: BlockingModel,
    base_priorities: Mapping[str, int], context_switch: int,
    scheduling: int,
) -> Optional[Dict[str, int]]:
    """A feasible priority map per Audsley's OPA, or ``None``.

    The candidate assignment permutes the *existing* priority values of
    the profiled tasks (so the spec's value range is preserved); tasks
    without a profile keep their configured priorities throughout.
    """
    names = [p.name for p in profiles]
    values = sorted(base_priorities[name] for name in names)
    if len(set(values)) != len(values):
        # duplicated configured values cannot express a strict ordering
        values = list(range(1, len(names) + 1))
    order: List[str] = []  # lowest priority first
    unassigned = set(names)
    while unassigned:
        level = len(order)
        placed = None
        for name in sorted(unassigned):
            candidate = dict(base_priorities)
            for index, assigned in enumerate(order):
                candidate[assigned] = values[index]
            candidate[name] = values[level]
            # still-unassigned tasks all interfere from above
            ceiling_values = values[level + 1:]
            for index, other in enumerate(sorted(unassigned - {name})):
                candidate[other] = ceiling_values[index]
            if _meets_deadlines(profiles, model, candidate,
                                context_switch, scheduling, only=name):
                placed = name
                break
        if placed is None:
            return None
        order.append(placed)
        unassigned.remove(placed)
    assignment = dict(base_priorities)
    for index, name in enumerate(order):
        assignment[name] = values[index]
    return assignment


def check_assignment(report: Report, system: Any,
                     flows: Mapping[str, TaskFlow],
                     model: BlockingModel) -> None:
    """RTS182 for every partitioned-or-standalone priority processor."""
    for processor in system.processors.values():
        if not _analysis_domain(processor):
            continue
        if getattr(processor.policy, "name", "") != "priority_preemptive":
            continue
        _check_processor(report, processor, model)


def _check_processor(report: Report, processor: Any,
                     model: BlockingModel) -> None:
    profiles = _profiles(processor)
    if not profiles:
        return
    costs = resolve_overhead_costs(processor)
    if costs is None:
        return  # RTS120 already reported the broken formula
    context_switch, scheduling = costs
    current = dict(model.priorities)
    if any(p.name not in current for p in profiles):
        return  # RTS102 already reported the non-integer priority
    if _meets_deadlines(profiles, model, current, context_switch,
                        scheduling):
        return
    location = f"processor {processor.name}"
    assignment = opa_assignment(profiles, model, current, context_switch,
                                scheduling)
    if assignment is not None:
        changes = _changes(current, assignment, profiles)
        if not changes:
            # OPA reproduces the configured priorities: the set itself
            # is infeasible at this ordering too, but that contradicts
            # the failed current check only through rounding of the
            # search order -- report nothing rather than a non-fix
            return
        change_text = ", ".join(
            f"{name}: {current[name]} -> {assignment[name]}"
            for name, _ in changes
        )
        report.add(
            RTS182,
            report.WARNING,
            location,
            "the configured priorities fail the blocking-aware "
            "response-time analysis, but Audsley's OPA finds a feasible "
            f"reassignment: {change_text}",
            hint="apply the reassignment (`pyrtos-sc lint --fix`), or "
                 "rebalance the task set",
        )
        return
    severity = (
        report.ERROR
        if _blocking_exact(profiles, model, current)
        else report.WARNING
    )
    report.add(
        RTS182,
        severity,
        location,
        "no fixed-priority assignment meets the deadlines under the "
        "blocking-aware response-time analysis (Audsley's OPA exhausted "
        "every ordering)",
        hint="shorten critical sections or WCETs, relax deadlines, or "
             "move tasks to another processor",
    )


def _changes(
    current: Mapping[str, int], assignment: Mapping[str, int],
    profiles: List[PeriodicTask],
) -> List[Tuple[str, int]]:
    changes = []
    for profile in sorted(profiles, key=lambda p: p.name):
        if assignment[profile.name] != current[profile.name]:
            changes.append((profile.name, assignment[profile.name]))
    return changes


def suggest_priorities(system: Any,
                       flows: Optional[Mapping[str, TaskFlow]] = None,
                       model: Optional[BlockingModel] = None,
                       ) -> Dict[str, int]:
    """Feasible priority changes per OPA, for the fix engine.

    Returns ``{task: new_priority}`` for every task whose priority the
    reassignment changes, across all processors where the current
    assignment fails and OPA succeeds.  Empty when nothing to fix.
    """
    from .flow import analyze_flows

    if flows is None:
        flows = analyze_flows(system)
    if model is None:
        model = BlockingModel(system, flows)
    suggestions: Dict[str, int] = {}
    for processor in system.processors.values():
        if not _analysis_domain(processor):
            continue
        if getattr(processor.policy, "name", "") != "priority_preemptive":
            continue
        profiles = _profiles(processor)
        if not profiles:
            continue
        costs = resolve_overhead_costs(processor)
        if costs is None:
            continue
        context_switch, scheduling = costs
        current = dict(model.priorities)
        if any(p.name not in current for p in profiles):
            continue
        if _meets_deadlines(profiles, model, current, context_switch,
                            scheduling):
            continue
        assignment = opa_assignment(profiles, model, current,
                                    context_switch, scheduling)
        if assignment is None:
            continue
        for name, value in _changes(current, assignment, profiles):
            suggestions[name] = value
    return suggestions


__all__ = [
    "check_assignment",
    "opa_assignment",
    "suggest_priorities",
]
