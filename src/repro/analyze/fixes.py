"""Machine-applicable JSON-spec patches for blocking-analysis findings.

``pyrtos-sc lint --fix`` turns the fixable RTS18x findings into minimal
patches against the *declarative spec* (generic or personality format):

=========  =============================================================
RTS181     rewrite a declared ceiling to the computed PCP ceiling
RTS182     reassign task priorities per Audsley's OPA
RTS183     tighten a declared ``max_blocking`` to the computed bound
=========  =============================================================

Each patch is a plain dict (``kind``, ``rule``, the JSON edit, and a
``discharged`` bool): :func:`plan_fixes` applies every candidate patch
to a copy of the spec and re-lints it, so a patch only ships with
``discharged: true`` when the finding it targets provably disappears.
:func:`apply_fixes` performs the edits on a deep copy (never in place);
the CLI's ``--fix --apply`` writes the result back to the spec file.

Personality specs are patched in their own vocabulary: priorities map
back through the personality (identity for FreeRTOS, negation for
µITRON's inverted scale), and fixes without a representation in that
format (e.g. ceilings, which FreeRTOS mutexes do not declare) are
simply not planned.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..errors import ReproError
from ..kernel.simulator import Simulator
from ..kernel.time import format_time, parse_time
from ..mcse.builder import build_system
from .assign import suggest_priorities
from .blocking import BlockingModel
from .diagnostics import Report
from .flow import analyze_flows

#: Rules the fix engine can discharge.
FIXABLE_RULES = ("RTS181", "RTS182", "RTS183")


class FixError(ReproError):
    """A patch cannot be planned or applied against this spec."""


def _analyze(spec: Mapping[str, Any],
             suppress: Iterable[str]) -> tuple:
    from .model import analyze_system

    system = build_system(dict(spec), sim=Simulator("lint-fix"))
    flows = analyze_flows(system)
    report = analyze_system(system, suppress=suppress)
    return system, flows, report

def _personality(spec: Mapping[str, Any]) -> Optional[str]:
    name = spec.get("personality")
    return str(name) if name else None


def _spec_priority(personality: Optional[str], generic: int) -> Optional[int]:
    """The spec-level value encoding a generic priority, if expressible."""
    if personality is None or personality == "freertos":
        return generic
    if personality == "uitron":
        # µITRON inverts: spec priority 1 is most urgent, lowered as -1
        spec_value = -generic
        return spec_value if spec_value >= 1 else None
    return None


def plan_fixes(spec: Mapping[str, Any], *,
               suppress: Iterable[str] = ()) -> List[Dict[str, Any]]:
    """Patches for every fixable finding, each re-linted for discharge."""
    if not isinstance(spec, Mapping):
        raise FixError(
            f"fixes need a declarative spec dict, got {type(spec).__name__}")
    system, flows, report = _analyze(spec, suppress)
    rules_hit = {d.rule for d in report.diagnostics}
    fixes: List[Dict[str, Any]] = []
    personality = _personality(spec)

    if "RTS181" in rules_hit and personality is None:
        model = BlockingModel(system, flows)
        for name, resource in sorted(model.resources.items()):
            if resource.protocol != "ceiling":
                continue
            declared = resource.declared_ceiling
            computed = model.computed_ceiling(name)
            if declared is None or computed is None or declared == computed:
                continue
            fixes.append({
                "rule": "RTS181",
                "kind": "ceiling",
                "relation": name,
                "ceiling": computed,
            })

    if "RTS182" in rules_hit:
        changes = suggest_priorities(system, flows)
        mapped: Dict[str, int] = {}
        for task, generic in sorted(changes.items()):
            value = _spec_priority(personality, generic)
            if value is None:
                mapped = {}
                break  # a partial reassignment would not be feasible
            mapped[task] = value
        if mapped:
            fixes.append({
                "rule": "RTS182",
                "kind": "priorities",
                "changes": mapped,
            })

    if "RTS183" in rules_hit:
        model = BlockingModel(system, flows)
        for name in sorted(system.functions):
            fn = system.functions[name]
            declared = getattr(fn, "max_blocking", None)
            if isinstance(declared, bool) or not isinstance(declared, int):
                continue
            term = model.blocking(name)
            if term.time is None or term.time <= declared:
                continue  # unbounded cannot be declared; within budget: ok
            fixes.append({
                "rule": "RTS183",
                "kind": "max_blocking",
                "function": name,
                "max_blocking": _as_time_spec(term.time),
            })

    for fix in fixes:
        fix["discharged"] = _discharged(spec, fix, suppress)
    return fixes


def _as_time_spec(value: int) -> Any:
    """A human-readable time string when it round-trips, else the int."""
    text = format_time(value)
    try:
        if parse_time(text) == value:
            return text
    except Exception:
        pass
    return value


def _discharged(spec: Mapping[str, Any], fix: Dict[str, Any],
                suppress: Iterable[str]) -> bool:
    """Whether re-linting the patched spec clears the targeted finding."""
    patched = apply_fixes(spec, [fix])
    _, _, report = _analyze(patched, suppress)
    rule_id = fix["rule"]
    if fix["kind"] == "ceiling":
        marker = f"shared {fix['relation']}"
        return not any(d.rule == rule_id and d.location == marker
                       for d in report.diagnostics)
    if fix["kind"] == "max_blocking":
        suffix = f"/{fix['function']}"
        return not any(d.rule == rule_id and d.location.endswith(suffix)
                       for d in report.diagnostics)
    return not any(d.rule == rule_id for d in report.diagnostics)


def apply_fixes(spec: Mapping[str, Any],
                fixes: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """A deep-copied spec with every patch applied (input untouched)."""
    patched: Dict[str, Any] = copy.deepcopy(dict(spec))
    personality = _personality(spec)
    task_key = "tasks" if personality else "functions"
    for fix in fixes:
        kind = fix.get("kind")
        if kind == "priorities":
            for task, value in fix["changes"].items():
                _entry(patched, task_key, task)["priority"] = value
        elif kind == "ceiling":
            if personality:
                raise FixError(
                    "ceiling fixes have no representation in the "
                    f"{personality!r} personality format")
            _entry(patched, "relations", fix["relation"])[
                "ceiling"] = fix["ceiling"]
        elif kind == "max_blocking":
            _entry(patched, task_key, fix["function"])[
                "max_blocking"] = fix["max_blocking"]
        else:
            raise FixError(f"unknown fix kind {kind!r}")
    return patched


def _entry(spec: Dict[str, Any], section: str, name: str) -> Dict[str, Any]:
    for entry in spec.get(section, ()):
        if isinstance(entry, dict) and entry.get("name") == name:
            return entry
    raise FixError(f"spec has no {section} entry named {name!r}")


__all__ = [
    "FIXABLE_RULES",
    "FixError",
    "apply_fixes",
    "plan_fixes",
]
