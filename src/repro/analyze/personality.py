"""Personality-misuse lint: auditing the *original* kernel API calls.

A personality spec lowers to plain generic ops before elaboration
(:mod:`repro.personality`), so the structural RTS1xx rules already
cover the lowered model.  What lowering erases, though, is the API
*surface* the author actually wrote -- and two classic bug families are
only visible there:

=========  =============================================================
RTS170     a blocking kernel call inside an ISR-context task (FreeRTOS
           forbids anything but ``...FromISR`` variants in interrupt
           handlers; ITRON forbids non-``i``-prefixed service calls)
RTS171     zero-timeout polling inside a loop: a busy-wait spin on a
           queue/semaphore that burns CPU the blocking form would yield
=========  =============================================================

The builder attaches each task's validated original op list as
``Function.personality_ops`` and marks unmapped (hardware-context)
personality tasks as the ISR set; these rules scan that metadata.
"""

from __future__ import annotations

from typing import Any, List

from .diagnostics import Report, rule

RTS170 = rule("RTS170", "blocking kernel API call in an ISR-context task")
RTS171 = rule("RTS171", "zero-timeout kernel poll inside a loop (busy-wait)")

#: Poll-capable calls per personality: a trailing 0 timeout spins.
_POLLABLE = {
    "freertos": frozenset(
        ("xQueueSend", "xQueueReceive", "xSemaphoreTake",
         "ulTaskNotifyTake")
    ),
    "uitron": frozenset(
        ("tslp_tsk", "twai_sem", "tsnd_mbx", "trcv_mbx", "twai_flg")
    ),
}

#: Zero-timeout spellings (ITRON's TMO_POL constant included).
_POLL_TIMEOUTS = (0, "0", "0s", "TMO_POL")


def _blocking_ops(personality: str) -> frozenset:
    if personality == "freertos":
        from ..personality.freertos import BLOCKING_OPS
        return BLOCKING_OPS
    if personality == "uitron":
        from ..personality.uitron import BLOCKING_OPS
        return BLOCKING_OPS
    return frozenset()


def check_personality(report: Report, system: Any) -> None:
    """Run the RTS17x rules over a system built from a personality spec."""
    personality = getattr(system, "personality", None)
    if not personality:
        return
    blocking = _blocking_ops(personality)
    pollable = _POLLABLE.get(personality, frozenset())
    for name, fn in system.functions.items():
        ops = getattr(fn, "personality_ops", None)
        if not ops:
            continue
        is_isr = fn.task is None  # unmapped = hardware/interrupt context
        _scan(report, name, ops, blocking, pollable,
              is_isr=is_isr, in_loop=False)


def _scan(report: Report, task: str, ops: List, blocking: frozenset,
          pollable: frozenset, *, is_isr: bool, in_loop: bool) -> None:
    for op in ops:
        if not isinstance(op, (list, tuple)) or not op:
            continue
        name = op[0]
        if name == "loop":
            body = op[2] if len(op) > 2 else None
            if isinstance(body, list):
                _scan(report, task, body, blocking, pollable,
                      is_isr=is_isr, in_loop=True)
            continue
        if is_isr and name in blocking:
            report.add(
                RTS170, Report.ERROR, f"task {task}",
                f"ISR-context task calls the blocking API {name!r}; an "
                "interrupt handler must never block",
                hint="use the non-blocking ISR variant (FromISR / "
                     "i-prefixed) or move the call into a task",
            )
        if (in_loop and name in pollable and len(op) > 1
                and op[-1] in _POLL_TIMEOUTS):
            report.add(
                RTS171, Report.WARNING, f"task {task}",
                f"{name!r} polls with a zero timeout inside a loop: a "
                "busy-wait that burns CPU other tasks could use",
                hint="block with a real timeout (or forever) and let "
                     "the scheduler run someone else",
            )


__all__ = ["RTS170", "RTS171", "check_personality"]
