"""SARIF 2.1.0 rendering of a diagnostic :class:`Report`.

CI systems (GitHub code scanning among them) ingest the Static Analysis
Results Interchange Format to annotate findings on pull requests.  The
mapping is intentionally small: one ``run`` of one ``tool.driver``
(``pyrtos-sc``), every catalogued rule id that appears in the report
listed under ``rules``, and one ``result`` per diagnostic.  Severities
map ``ERROR -> "error"``, ``WARNING -> "warning"``, ``INFO -> "note"``.

The artifact location is the lint target (a spec path, an example file,
or a symbolic name like ``fig6``); model-level findings carry their
human-readable location in the message and only get a ``region`` when
the diagnostic has a source line.

When the lint run also attempted dynamic witnesses (``pyrtos-sc lint
--witness --sarif``), each result whose rule has a witness outcome
carries it under ``properties.witness`` -- the confirmed/justified
verdict, the target dynamic properties and the replayable choice
sequence -- so a code-scanning consumer can tell a verifier-confirmed
ERROR from a static over-approximation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from .diagnostics import RULES, Diagnostic, Report, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _result(diagnostic: Diagnostic, artifact: str,
            witness: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    message = f"{diagnostic.location}: {diagnostic.message}"
    if diagnostic.hint:
        message += f" (hint: {diagnostic.hint})"
    location: Dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": artifact},
        }
    }
    if diagnostic.line is not None:
        location["physicalLocation"]["region"] = {
            "startLine": diagnostic.line,
        }
    result = {
        "ruleId": diagnostic.rule,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": message},
        "locations": [location],
    }
    if witness is not None:
        result["properties"] = {"witness": dict(witness)}
    return result


def report_to_sarif(report: Report, *, artifact: str,
                    tool_name: str = "pyrtos-sc",
                    tool_version: str = "0",
                    witnesses: Optional[Mapping[str, Mapping[str, Any]]]
                    = None) -> Dict[str, Any]:
    """Render ``report`` as a SARIF 2.1.0 log object (a plain dict).

    ``witnesses`` maps rule ids to witness-outcome dicts (the rendered
    :class:`repro.verify.witness.WitnessOutcome` shape); matching
    results embed theirs under ``properties.witness``.
    """
    rule_ids = sorted({d.rule for d in report.diagnostics})
    rules: List[Dict[str, Any]] = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": RULES.get(rule_id, rule_id),
            },
        }
        for rule_id in rule_ids
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri":
                            "https://example.invalid/pyrtos-sc",
                        "rules": rules,
                    }
                },
                "results": [
                    _result(diagnostic, artifact,
                            (witnesses or {}).get(diagnostic.rule))
                    for diagnostic in report.diagnostics
                ],
            }
        ],
    }


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "report_to_sarif"]
