"""Source-level lint: the failure classes that silently break campaigns.

An AST pass (stdlib :mod:`ast`, no third-party dependency) over user
experiment/model files, catching the two classes of mistakes that do not
crash anything but quietly destroy campaign reproducibility and caching:

* **SRC201 / SRC202 -- hidden nondeterminism**: the process-global
  :mod:`random` generator used unseeded inside a function body, and
  wall-clock reads (``time.time``, ``datetime.now``) feeding model code.
  Both make a "deterministic" simulation differ between runs and between
  cache hits and misses.
* **SRC210 -- unpicklable experiment callables**: lambdas or nested
  (closure) functions handed to :class:`~repro.campaign.spec.
  ExperimentSpec` / ``monte_carlo`` / ``explore``, which cannot cross
  the process boundary once ``workers > 1``.

Suppression: a ``# pyrtos: disable=SRC201`` comment appended to the
offending line suppresses that rule on that line; the same comment on a
line of its own suppresses the rule for the whole file.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from .diagnostics import Report, rule

SRC000 = rule("SRC000", "source file does not parse")
SRC201 = rule("SRC201", "process-global random generator used unseeded")
SRC202 = rule("SRC202", "wall-clock read inside model/experiment code")
SRC210 = rule("SRC210", "experiment callable cannot cross process boundary")

#: ``random.<fn>`` calls that consume the process-global RNG stream.
_GLOBAL_RNG_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "triangular", "getrandbits",
    "randbytes",
}

#: Wall-clock reads (host-time sources that are *not* elapsed-time
#: measurement helpers; ``perf_counter``/``monotonic`` are fine for
#: timing a run, they never feed model state deterministically cached).
_WALL_CLOCK_TIME_FNS = {"time", "time_ns", "ctime", "localtime", "gmtime"}
_WALL_CLOCK_DATETIME_FNS = {"now", "today", "utcnow"}

#: Campaign entry points whose callable arguments must be picklable.
_SPEC_CONSTRUCTORS = {
    "ExperimentSpec", "spec_from_experiment", "spec_from_design",
    "monte_carlo", "explore",
}

_PRAGMA = re.compile(r"#\s*pyrtos:\s*disable=([A-Za-z0-9_,\s]+)")


def _pragmas(text: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """(file-wide suppressions, per-line suppressions) from comments."""
    file_wide: Set[str] = set()
    per_line: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        if line.lstrip().startswith("#"):
            file_wide.update(rules)
        else:
            per_line.setdefault(lineno, set()).update(rules)
    return file_wide, per_line


class _SourceVisitor(ast.NodeVisitor):
    def __init__(self, report: Report, location: str,
                 per_line: Dict[int, Set[str]]) -> None:
        self.report = report
        self.location = location
        self.per_line = per_line
        #: Names bound to the modules of interest by imports.
        self.module_alias: Dict[str, str] = {}
        #: Bare names imported from those modules (``from random import x``).
        self.from_imports: Dict[str, str] = {}
        #: Function-definition nesting depth (0 = module level).
        self.depth = 0
        #: Names bound to lambdas or nested function defs (unpicklable).
        self.local_callables: Set[str] = set()
        self.global_seed_called = False

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in ("random", "time", "datetime"):
                self.module_alias[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in ("random", "time", "datetime"):
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- scope tracking -------------------------------------------------
    def visit_FunctionDef(self, node: ast.AST) -> None:
        if self.depth >= 1:
            self.local_callables.add(node.name)
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.local_callables.add(target.id)
        self.generic_visit(node)

    # -- findings -------------------------------------------------------
    def _dotted(self, func: ast.AST) -> Optional[str]:
        """``module.attr`` for a call target, resolving import aliases."""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = self.module_alias.get(func.value.id)
            if base is not None:
                return f"{base}.{func.attr}"
            # from datetime import datetime; datetime.now()
            origin = self.from_imports.get(func.value.id)
            if origin == "datetime.datetime":
                return f"datetime.{func.attr}"
            # datetime.datetime.now(): one extra attribute hop
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)):
            base = self.module_alias.get(func.value.value.id)
            if base == "datetime":
                return f"datetime.{func.attr}"
        if isinstance(func, ast.Name):
            return self.from_imports.get(func.id)
        return None

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted == "random.seed":
            self.global_seed_called = True
        elif dotted is not None and self.depth > 0:
            module, _, attr = dotted.partition(".")
            if module == "random" and attr in _GLOBAL_RNG_FNS:
                self._flag_random(node, dotted)
            elif module == "time" and attr in _WALL_CLOCK_TIME_FNS:
                self._flag_wall_clock(node, dotted)
            elif module == "datetime" and attr in _WALL_CLOCK_DATETIME_FNS:
                self._flag_wall_clock(node, dotted)
        func_name = node.func.id if isinstance(node.func, ast.Name) else (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        if func_name in _SPEC_CONSTRUCTORS:
            self._check_picklable(node, func_name)
        self.generic_visit(node)

    def _flag_random(self, node: ast.Call, dotted: str) -> None:
        self.report.add(
            SRC201,
            self.report.WARNING,
            self.location,
            f"{dotted}() draws from the process-global RNG"
            + ("" if self.global_seed_called else
               " and no random.seed(...) call is visible in this file")
            + "; repeated runs (and cache replays) will diverge",
            hint="use a local random.Random(seed) instance derived from "
                 "the experiment seed",
            line=node.lineno,
        )

    def _flag_wall_clock(self, node: ast.Call, dotted: str) -> None:
        self.report.add(
            SRC202,
            self.report.WARNING,
            self.location,
            f"{dotted}() reads the wall clock inside a function body; "
            "values differ between runs, breaking determinism and cache "
            "keying",
            hint="derive times from the simulator clock (sim.now) or "
                 "pass timestamps in as parameters",
            line=node.lineno,
        )

    def _check_picklable(self, node: ast.Call, func_name: str) -> None:
        candidates: List[Tuple[ast.AST, str]] = []
        for arg in node.args:
            candidates.append((arg, "positional argument"))
        for keyword in node.keywords:
            if keyword.arg is not None:
                candidates.append((keyword.value, f"argument {keyword.arg!r}"))
        for value, describe in candidates:
            if isinstance(value, ast.Lambda):
                what = "a lambda"
            elif (isinstance(value, ast.Name)
                    and value.id in self.local_callables):
                what = f"locally-defined function {value.id!r}"
            else:
                continue
            self.report.add(
                SRC210,
                self.report.WARNING,
                self.location,
                f"{func_name}(...) receives {what} as {describe}; it "
                "cannot be pickled, so the campaign fails (or falls "
                "back) as soon as workers > 1",
                hint="move the callable to module level (or wrap it in "
                     "functools.partial over a module-level function)",
                line=value.lineno,
            )


def analyze_source(path: str, text: Optional[str] = None) -> Report:
    """Lint one Python source file; returns a :class:`Report`."""
    if text is None:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    file_wide, per_line = _pragmas(text)
    report = Report(suppress=file_wide)
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        report.add(
            SRC000,
            report.ERROR,
            path,
            f"source does not parse: {exc.msg}",
            line=exc.lineno,
        )
        return report
    visitor = _SourceVisitor(report, path, per_line)
    visitor.visit(tree)
    if per_line:
        kept = []
        for diagnostic in report.diagnostics:
            if diagnostic.rule in per_line.get(diagnostic.line or -1, ()):
                report.suppressed.append(diagnostic)
            else:
                kept.append(diagnostic)
        report.diagnostics = kept
    return report
