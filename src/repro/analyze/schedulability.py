"""Schedulability checks over a constructed system (no simulation).

The model linter needs a *periodic profile* -- (WCET, period, optional
deadline) -- per task to run the classical feasibility tests.  Profiles
come from two sources, in priority order:

1. explicit annotations on the function: ``fn.wcet``/``fn.period``
   (optional ``fn.deadline``), set directly in Python models, through
   the ``"wcet"``/``"period"``/``"deadline"`` keys of a declarative
   spec, or automatically by
   :func:`repro.workloads.synthetic.build_periodic_system`;
2. the function's declarative script: an infinite top-level loop whose
   body mixes ``execute`` and ``delay`` ops and never blocks on a
   relation is read as a periodic task with WCET = sum of executes and
   period = sum of executes + delays.

Tasks without a profile are simply skipped -- the utilization and
response-time rules only ever claim what they can prove.

The checks themselves reuse :mod:`repro.analysis.response_time` (the
same overhead-aware RTA the simulator is validated against), with the
processor's :class:`~repro.rtos.overheads.Overheads` resolved against
the live pre-simulation processor state.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..analysis.response_time import (
    PeriodicTask,
    liu_layland_bound,
    response_time_analysis,
    total_utilization,
)
from ..kernel.time import format_time
from .diagnostics import Report


def script_profile(fn: Any) -> Optional[Tuple[int, int]]:
    """(wcet, period) read from a declarative script, or ``None``.

    Recognizes the canonical periodic shape: the function body is a
    single infinite ``loop`` whose body contains only ``execute`` and
    ``delay`` ops (any blocking op makes the period data-dependent, so
    the profile is refused).
    """
    ops = getattr(fn, "script_ops", None)
    if not ops or len(ops) != 1:
        return None
    name, args = ops[0]
    if name != "loop" or args[0] is not None:
        return None
    wcet = 0
    period = 0
    for op_name, op_args in args[1]:
        if op_name == "execute":
            cost = op_args[0]
            if isinstance(cost, tuple):
                cost = cost[1]  # interval: the upper bound is the WCET
            wcet += cost
            period += cost
        elif op_name == "delay":
            period += op_args[0]
        else:
            return None  # blocking/nested op: not a plain periodic task
    if wcet <= 0 or period <= 0:
        return None
    return wcet, period


def periodic_profile(task: Any) -> Optional[PeriodicTask]:
    """The analytical profile of one mapped RTOS task, or ``None``."""
    fn = task.function
    wcet = getattr(fn, "wcet", None)
    period = getattr(fn, "period", None)
    if wcet is None or period is None:
        derived = script_profile(fn)
        if derived is None:
            return None
        wcet, period = derived
    if not isinstance(wcet, int) or not isinstance(period, int):
        return None
    if wcet <= 0 or period <= 0:
        return None
    # One scaling helper shared with the simulator (ProcessorBase
    # .scale_duration), so heterogeneous-speed analysis can never drift
    # from what the execute path actually charges.
    scale = getattr(task.processor, "scale_duration", None)
    if scale is not None:
        wcet = scale(wcet)
    return PeriodicTask(
        name=task.name,
        wcet=wcet,
        period=period,
        priority=task.base_priority,
        deadline=getattr(fn, "deadline", None),
    )


def resolve_overhead_costs(processor: Any) -> Optional[Tuple[int, int]]:
    """(context_switch, scheduling) costs probed pre-simulation.

    Formula overheads are evaluated against the live processor (ready
    queue empty, t=0).  Returns ``None`` when a formula fails -- the
    overhead rule (RTS120) reports that separately.
    """
    overheads = processor.overheads
    try:
        scheduling = overheads.scheduling(processor)
        load = overheads.context_load(processor)
        save = overheads.context_save(processor)
    except Exception:
        return None
    return load + save, scheduling


def check_schedulability(report: Report, processor: Any, *,
                         location: str) -> None:
    """Run utilization and RTA rules for one processor's periodic tasks."""
    from .model import RTS103, RTS104, RTS105  # circular-import guard

    profiles: List[PeriodicTask] = []
    for task in processor.tasks:
        profile = periodic_profile(task)
        if profile is not None:
            profiles.append(profile)
    if not profiles:
        return

    costs = resolve_overhead_costs(processor)
    if costs is None:
        return  # RTS120 already reported the broken formula
    context_switch, scheduling = costs

    # Utilization including the per-job RTOS cost (one release = one
    # scheduling pass, each job suffers up to one preemption = two
    # switches; matches the overhead-aware RTA's interference model).
    loaded = sum(
        (t.wcet + 2 * context_switch + scheduling) / t.period
        for t in profiles
    )
    plain = total_utilization(profiles)
    if loaded > 1.0:
        report.add(
            RTS103,
            report.ERROR,
            location,
            f"periodic load {loaded:.3f} exceeds the processor capacity "
            f"(task utilization {plain:.3f} + RTOS overheads); the set is "
            "unschedulable under any policy",
            hint="reduce WCETs, lengthen periods, or move tasks to "
                 "another processor",
        )
        return  # RTA would only restate the same impossibility

    policy_name = getattr(processor.policy, "name", "")
    if policy_name in ("priority_preemptive", "priority_round_robin"):
        bound = liu_layland_bound(len(profiles))
        if loaded > bound:
            report.add(
                RTS104,
                report.WARNING,
                location,
                f"periodic load {loaded:.3f} exceeds the Liu & Layland "
                f"bound {bound:.3f} for {len(profiles)} task(s); "
                "rate-monotonic feasibility is not guaranteed "
                "(exact response-time analysis follows)",
                hint="check the RTA results below; a load <= "
                     f"{bound:.3f} is sufficient (not necessary)",
            )
        responses = response_time_analysis(
            profiles, context_switch=context_switch, scheduling=scheduling
        )
        for profile in profiles:
            response = responses[profile.name]
            deadline = profile.effective_deadline
            if response is None:
                report.add(
                    RTS105,
                    report.ERROR,
                    f"{location}/{profile.name}",
                    "response-time analysis diverges: the task can be "
                    "delayed without bound by higher-priority work",
                    hint="raise the task's priority or shed "
                         "higher-priority load",
                )
            elif response > deadline:
                report.add(
                    RTS105,
                    report.ERROR,
                    f"{location}/{profile.name}",
                    f"worst-case response time {format_time(response)} "
                    f"exceeds the deadline {format_time(deadline)}",
                    hint="raise the task's priority, shorten its WCET, "
                         "or relax the deadline",
                )
