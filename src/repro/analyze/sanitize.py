"""Runtime nondeterminism sanitizer (opt-in kernel hook).

``Simulator(sanitize=True)`` attaches a :class:`Sanitizer` that the
kernel consults at the two spots where a model can silently depend on
scheduling order:

* **SAN301 -- same-delta conflicting writes**: two processes write
  different values to one :class:`~repro.kernel.channels.Signal` in the
  same evaluate phase.  Only one value is committed at the update phase;
  *which* one depends on process execution order -- the canonical
  SystemC nondeterminism bug.
* **SAN302 -- ambiguous same-timestamp wake order**: one event trigger
  resumes two or more waiting processes at the same instant.  The
  kernel wakes them in deterministic insertion order, but that order is
  an implementation detail the model implicitly depends on (reported
  once per event).

The hooks cost nothing when the sanitizer is off: the kernel checks a
single attribute that is ``None`` by default, and the multi-waiter check
sits on an already-rare branch.  Golden-trace tests assert byte-identical
traces with ``sanitize=False``.

Findings flow through the same :class:`~repro.analyze.diagnostics.
Diagnostic` pipeline as the static linters::

    sim = Simulator("demo", sanitize=True)
    ... run ...
    print(sim.sanitizer.report.format_text())
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..kernel.time import format_time
from .diagnostics import Report, rule

SAN301 = rule("SAN301", "conflicting same-delta writes to one signal")
SAN302 = rule("SAN302", "ambiguous same-timestamp multi-process wake")


class Sanitizer:
    """Collects runtime nondeterminism findings for one simulator."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.report = Report()
        #: Last uncommitted write per signal name: (writer, value).
        self._writes: Dict[str, Tuple[str, object]] = {}
        self._wake_reported: Set[str] = set()

    @property
    def diagnostics(self):
        return self.report.diagnostics

    def _writer_name(self) -> str:
        process = self.sim.current_process
        return process.name if process is not None else "<kernel>"

    # ------------------------------------------------------------------
    # Kernel hooks
    # ------------------------------------------------------------------
    def observe_signal_write(self, signal, value) -> None:
        """Called by :meth:`Signal.write` before the value is staged."""
        writer = self._writer_name()
        if signal._update_requested:
            previous_writer, previous = self._writes.get(
                signal.name, ("<unknown>", signal._new_value)
            )
            if value != previous:
                self.report.add(
                    SAN301,
                    Report.ERROR,
                    f"signal {signal.name}",
                    f"conflicting writes in one delta cycle at "
                    f"t={format_time(self.sim.now)}: {previous_writer} "
                    f"wrote {previous!r}, then {writer} wrote {value!r}; "
                    "the committed value depends on process order",
                    hint="funnel writers through one process, or replace "
                         "the signal with a queue/shared variable",
                )
        self._writes[signal.name] = (writer, value)

    def observe_signal_update(self, signal) -> None:
        """Called at the update phase: the staged write was committed."""
        self._writes.pop(signal.name, None)

    def observe_multi_wake(self, event, count: int) -> None:
        """Called when one event trigger resumes ``count`` >= 2 waiters."""
        if event.name in self._wake_reported:
            return
        self._wake_reported.add(event.name)
        self.report.add(
            SAN302,
            Report.WARNING,
            f"event {event.name}",
            f"one trigger at t={format_time(self.sim.now)} wakes {count} "
            "processes at the same instant; their relative execution "
            "order is a kernel implementation detail",
            hint="if the model's result depends on who runs first, "
                 "serialize the waiters explicitly (priorities, a queue, "
                 "or separate events)",
        )


__all__ = ["SAN301", "SAN302", "Sanitizer"]
