"""Runtime nondeterminism sanitizer (opt-in kernel hook).

``Simulator(sanitize=True)`` attaches a :class:`Sanitizer` that the
kernel consults at the two spots where a model can silently depend on
scheduling order:

* **SAN301 -- same-delta conflicting writes**: two processes write
  different values to one :class:`~repro.kernel.channels.Signal` in the
  same evaluate phase.  Only one value is committed at the update phase;
  *which* one depends on process execution order -- the canonical
  SystemC nondeterminism bug.
* **SAN302 -- ambiguous same-timestamp wake order**: one event trigger
  resumes two or more waiting processes at the same instant.  The
  kernel wakes them in deterministic insertion order, but that order is
  an implementation detail the model implicitly depends on (reported
  once per event).
* **SAN303 -- unsynchronized cross-task write**: two functions mutate
  one shared Python object (a container both behaviors close over)
  without a happens-before edge between the writes.  Edges are derived
  from the model's own synchronization -- signal/wait, lock/unlock,
  queue write/read -- with per-function vector clocks; a second write
  that is concurrent with the previous one means the object's final
  contents depend on the schedule, exactly what the verifier's
  exploration will then exhibit.

The hooks cost nothing when the sanitizer is off: the kernel checks a
single attribute that is ``None`` by default, and the multi-waiter check
sits on an already-rare branch.  Golden-trace tests assert byte-identical
traces with ``sanitize=False``.

Findings flow through the same :class:`~repro.analyze.diagnostics.
Diagnostic` pipeline as the static linters::

    sim = Simulator("demo", sanitize=True)
    ... run ...
    print(sim.sanitizer.report.format_text())
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..kernel.time import format_time
from ..trace.records import AccessKind, AccessRecord
from .diagnostics import Diagnostic, Report, rule

SAN301 = rule("SAN301", "conflicting same-delta writes to one signal")
SAN302 = rule("SAN302", "ambiguous same-timestamp multi-process wake")
SAN303 = rule("SAN303", "unsynchronized cross-task write to shared state")

#: Closure-cell contents of these types are watched for cross-task
#: writes.  Containers only: their ``repr`` is a faithful, cheap content
#: snapshot, and they are how hand-written behaviors share state.
_WATCHABLE = (list, dict, set, bytearray)

#: Relation accesses that publish the writer's clock to the relation.
_RELEASES = frozenset(
    (AccessKind.SIGNAL, AccessKind.UNLOCK, AccessKind.WRITE)
)
#: Relation accesses that acquire the relation's clock.
_ACQUIRES = frozenset((AccessKind.WAIT, AccessKind.LOCK, AccessKind.READ))


def _join(into: Dict[str, int], other: Dict[str, int]) -> None:
    for name, tick in other.items():
        if tick > into.get(name, 0):
            into[name] = tick


def _happens_before(earlier: Dict[str, int], writer: str,
                    later: Dict[str, int]) -> bool:
    """Did the write stamped ``earlier`` (by ``writer``) reach ``later``?"""
    return earlier.get(writer, 0) <= later.get(writer, 0)


def _safe_repr(obj: object) -> Optional[str]:
    try:
        return repr(obj)
    except Exception:  # user-defined repr may be arbitrary
        return None


class Sanitizer:
    """Collects runtime nondeterminism findings for one simulator."""

    def __init__(self, sim: Any) -> None:
        self.sim = sim
        self.report = Report()
        #: Last uncommitted write per signal name: (writer, value).
        self._writes: Dict[str, Tuple[str, object]] = {}
        self._wake_reported: Set[str] = set()
        # --- SAN303 happens-before machinery ---------------------------
        #: Kernel process name -> registered function name.
        self._fn_of_process: Dict[str, str] = {}
        #: Per-function vector clock.
        self._clocks: Dict[str, Dict[str, int]] = {}
        #: Per-relation clock, joined on release, acquired on wake.
        self._relation_clocks: Dict[str, Dict[str, int]] = {}
        #: Relations whose clock a blocked function must acquire on its
        #: next step (the release that wakes it has happened by then).
        self._pending_acquires: Dict[str, List[str]] = {}
        #: id(obj) -> (obj, variable name, owning function names).
        self._watched: Dict[int, Tuple[object, str, Set[str]]] = {}
        #: id(obj) -> last write: (writer function, clock snapshot).
        self._last_write: Dict[int, Tuple[str, Dict[str, int]]] = {}
        self._race_reported: Set[int] = set()
        #: Content snapshots taken in before_step: id(obj) -> repr.
        self._snapshots: Dict[int, Optional[str]] = {}
        self._stepping: Optional[str] = None
        sim.add_observer(self._observe_record)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return self.report.diagnostics

    def _writer_name(self) -> str:
        process = self.sim.current_process
        return process.name if process is not None else "<kernel>"

    # ------------------------------------------------------------------
    # Kernel hooks
    # ------------------------------------------------------------------
    def observe_signal_write(self, signal: Any, value: object) -> None:
        """Called by :meth:`Signal.write` before the value is staged."""
        writer = self._writer_name()
        if signal._update_requested:
            previous_writer, previous = self._writes.get(
                signal.name, ("<unknown>", signal._new_value)
            )
            if value != previous:
                self.report.add(
                    SAN301,
                    Report.ERROR,
                    f"signal {signal.name}",
                    f"conflicting writes in one delta cycle at "
                    f"t={format_time(self.sim.now)}: {previous_writer} "
                    f"wrote {previous!r}, then {writer} wrote {value!r}; "
                    "the committed value depends on process order",
                    hint="funnel writers through one process, or replace "
                         "the signal with a queue/shared variable",
                )
        self._writes[signal.name] = (writer, value)

    def observe_signal_update(self, signal: Any) -> None:
        """Called at the update phase: the staged write was committed."""
        self._writes.pop(signal.name, None)

    def observe_multi_wake(self, event: Any, count: int) -> None:
        """Called when one event trigger resumes ``count`` >= 2 waiters."""
        if event.name in self._wake_reported:
            return
        self._wake_reported.add(event.name)
        self.report.add(
            SAN302,
            Report.WARNING,
            f"event {event.name}",
            f"one trigger at t={format_time(self.sim.now)} wakes {count} "
            "processes at the same instant; their relative execution "
            "order is a kernel implementation detail",
            hint="if the model's result depends on who runs first, "
                 "serialize the waiters explicitly (priorities, a queue, "
                 "or separate events)",
        )

    # ------------------------------------------------------------------
    # SAN303: happens-before race detection on shared Python state
    # ------------------------------------------------------------------
    def register_function(self, fn: Any) -> None:
        """Track ``fn`` (called by :meth:`Function.start`).

        Watches the mutable containers its behavior closes over; any such
        container shared with another registered behavior becomes a race
        candidate.  Model objects (``repro.*`` types) are exempt -- their
        cross-task semantics are already defined by the kernel.
        """
        name = fn.name
        self._fn_of_process[fn.process.name] = name
        self._clocks.setdefault(name, {name: 0})
        behavior = getattr(fn, "_behavior", None)
        closure = getattr(behavior, "__closure__", None)
        if not closure:
            return
        freevars = behavior.__code__.co_freevars
        for varname, cell in zip(freevars, closure):
            try:
                obj = cell.cell_contents
            except ValueError:  # empty cell
                continue
            if not isinstance(obj, _WATCHABLE):
                continue
            if type(obj).__module__.split(".")[0] == "repro":
                continue
            key = id(obj)
            entry = self._watched.get(key)
            if entry is None:
                self._watched[key] = (obj, varname, {name})
            else:
                entry[2].add(name)

    def before_step(self, process: Any) -> None:
        """Kernel hook: ``process`` is about to run one evaluate step."""
        name = self._fn_of_process.get(process.name)
        if name is None:
            return
        self._stepping = name
        clock = self._clocks[name]
        clock[name] = clock.get(name, 0) + 1
        pending = self._pending_acquires.pop(name, None)
        if pending:
            for relation_name in pending:
                _join(clock, self._relation_clocks.get(relation_name, {}))
        self._snapshots.clear()
        for key, (obj, _varname, owners) in self._watched.items():
            if name in owners and len(owners) > 1:
                self._snapshots[key] = _safe_repr(obj)

    def after_step(self, process: Any) -> None:
        """Kernel hook: the step finished; detect shared-state writes."""
        name = self._stepping
        self._stepping = None
        if name is None or not self._snapshots:
            return
        clock = self._clocks[name]
        for key, before in self._snapshots.items():
            obj, varname, _owners = self._watched[key]
            if _safe_repr(obj) == before:
                continue
            previous = self._last_write.get(key)
            self._last_write[key] = (name, dict(clock))
            if previous is None:
                continue
            writer, write_clock = previous
            if writer == name or key in self._race_reported:
                continue
            if _happens_before(write_clock, writer, clock):
                continue
            self._race_reported.add(key)
            self.report.add(
                SAN303,
                Report.ERROR,
                f"shared object {varname!r}",
                f"write-write race at t={format_time(self.sim.now)}: "
                f"{name} mutated {varname!r} ({type(obj).__name__}) with "
                f"no happens-before edge from {writer}'s earlier write; "
                "the final contents depend on the schedule",
                hint="guard the object with a shared variable "
                     "(lock/unlock) or pass the data through a queue",
            )
        self._snapshots.clear()

    def _observe_record(self, record: object) -> None:
        """Sim observer: derive happens-before edges from relation use."""
        if type(record) is not AccessRecord:
            return
        name = record.task
        clock = self._clocks.get(name)
        if clock is None:
            return
        if record.kind in _RELEASES:
            relation_clock = self._relation_clocks.setdefault(
                record.relation, {}
            )
            _join(relation_clock, clock)
        elif record.kind in _ACQUIRES:
            if record.blocked:
                # The waking release has not happened yet; acquire the
                # relation clock when this function next steps.
                self._pending_acquires.setdefault(name, []).append(
                    record.relation
                )
            else:
                _join(clock, self._relation_clocks.get(record.relation, {}))


__all__ = ["SAN301", "SAN302", "SAN303", "Sanitizer"]
