"""Static visibility of relation *signals* across a system.

Support module for the RTS130 never-ready rule: which event relations
does each function signal, and is the whole system statically visible?
A function is *visible* when it has declarative script ops or a
behavior whose source parses and whose ``.signal(x)`` arguments all
resolve to concrete relations.  One opaque function (or one
unresolvable signal target) makes the system invisible, and the rule
stays silent -- the linter only claims what it can prove.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Optional, Sequence, Set

from ..mcse.events import EventRelation
from .lockgraph import _preorder, _resolve_names


def _script_signals(ops: Sequence[Any], out: Set[str]) -> None:
    for name, args in ops:
        if name == "signal":
            out.add(args[0])
        elif name == "loop":
            _script_signals(args[1], out)


def _behavior_signals(behavior: Any, out: Set[str]) -> bool:
    """Collect signaled relation names; False when anything is opaque."""
    try:
        source = textwrap.dedent(inspect.getsource(behavior))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return False
    names = _resolve_names(behavior)
    for node in _preorder(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "signal":
            continue
        if not node.args:
            continue
        arg = node.args[0]
        target = None
        if isinstance(arg, ast.Name):
            target = names.get(arg.id)
        elif isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            owner = names.get(arg.value.id)
            if owner is not None:
                target = getattr(owner, arg.attr, None)
        if isinstance(target, EventRelation):
            out.add(target.name)
        else:
            return False  # signal to an unresolvable target: opaque
    return True


def signaled_relations(fn: Any) -> Optional[Set[str]]:
    """Relation names ``fn`` signals, or ``None`` when ``fn`` is opaque."""
    out: Set[str] = set()
    ops = getattr(fn, "script_ops", None)
    if ops:
        _script_signals(ops, out)
        return out
    behavior = getattr(fn, "_behavior", None)
    if behavior is None:
        behavior = getattr(type(fn), "behavior", None)
    if behavior is None:
        return None
    if not _behavior_signals(behavior, out):
        return None
    return out


def visible_signals(system: Any) -> Optional[Set[str]]:
    """Every relation name signaled anywhere, or ``None`` if any
    function in the system is opaque to static analysis."""
    signaled: Set[str] = set()
    for fn in system.functions.values():
        out = signaled_relations(fn)
        if out is None:
            return None
        signaled.update(out)
    return signaled
