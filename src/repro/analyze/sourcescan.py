"""Static visibility of relation *signals* across a system.

Support module for the RTS130 never-ready rule: which event relations
does each function signal, and is the whole system statically visible?
Signal facts are read off the unified effect IR
(:mod:`repro.analyze.effects`).  A function is *visible* when its
lowered tree is exact -- script ops, or a behavior whose source parses
with every effect target resolved and no opaque delegation.  One opaque
function makes the system invisible and the rule stays silent: the
linter only claims what it can prove.
"""

from __future__ import annotations

from typing import Any, List, Optional, Set

from .effects import Branch, Effect, Loop, Node, Seq, task_effects


def _collect_signals(root: Node, out: Set[str]) -> None:
    stack: List[Node] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, Effect):
            if node.kind == "signal" and node.target is not None:
                out.add(node.target)
        elif isinstance(node, Seq):
            stack.extend(node.items)
        elif isinstance(node, Branch):
            stack.extend(node.arms)
        elif isinstance(node, Loop):
            stack.append(node.body)


def signaled_relations(fn: Any) -> Optional[Set[str]]:
    """Relation names ``fn`` signals, or ``None`` when ``fn`` is opaque."""
    effects = task_effects(fn)
    if effects is None or not effects.exact:
        return None
    out: Set[str] = set()
    _collect_signals(effects.root, out)
    return out


def visible_signals(system: Any) -> Optional[Set[str]]:
    """Every relation name signaled anywhere, or ``None`` if any
    function in the system is opaque to static analysis."""
    signaled: Set[str] = set()
    for fn in system.functions.values():
        out = signaled_relations(fn)
        if out is None:
            return None
        signaled.update(out)
    return signaled
