"""Shared-variable acquisition facts: the lock graph and its cycles.

Historically this module walked behavior ASTs *in textual order* to
approximate lock nesting.  That walker is gone: nesting facts now come
from the path-sensitive lock-set interpreter in
:mod:`repro.analyze.flow`, which runs over the unified effect IR
(:mod:`repro.analyze.effects`) and tracks branches, loops and early
exits instead of smearing them into one linear order.  What remains
here is the data shape (:class:`TaskLockUsage`), the declared
``fn.lock_order`` override, and the cycle finder the RTS110 deadlock
rule runs over the held->acquired graph.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple


class TaskLockUsage:
    """What one function does with shared variables."""

    def __init__(self, fn: Any) -> None:
        self.function = fn
        #: Names of shared variables the function ever acquires.
        self.acquires: Set[str] = set()
        #: (held, acquired) nesting pairs observed on some path.
        self.nested: List[Tuple[str, str]] = []


def lock_usage(fn: Any) -> TaskLockUsage:
    """Extract the shared-variable usage of one function.

    A declared ``fn.lock_order = ["A", "B"]`` chain wins; otherwise the
    behavior (script ops or generator source) is lowered to the effect
    IR and interpreted path-sensitively.
    """
    from .flow import analyze_task

    return analyze_task(fn).usage


def find_cycles(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles in the held->acquired graph (DFS, deduplicated)."""
    cycles: List[List[str]] = []
    seen: Set[Tuple[str, ...]] = set()

    def visit(node: str, path: List[str], on_path: Set[str]) -> None:
        for nxt in sorted(edges.get(node, ())):
            if nxt in on_path:
                cycle = path[path.index(nxt):]
                key = tuple(sorted(cycle))
                if key not in seen:
                    seen.add(key)
                    cycles.append(cycle + [nxt])
                continue
            visit(nxt, path + [nxt], on_path | {nxt})

    for start in sorted(edges):
        visit(start, [start], {start})
    return cycles
