"""Shared-variable acquisition analysis: deadlock cycles and inversion.

Builds, per system, the *acquisition graph*: which tasks lock which
shared variables, and which variables they already hold while doing so.
Two extraction paths feed it:

* **declarative scripts** (``fn.script_ops``, attached by the builder):
  ``lock``/``unlock``/``read_shared``/``write_shared`` ops are walked
  in program order, so nesting is exact;
* **Python behaviors**: the generator's source is parsed with
  :mod:`ast` and ``fn.lock(x)`` / ``fn.unlock(x)`` /
  ``fn.read_shared(x)`` / ``fn.write_shared(x)`` calls are matched;
  the argument names resolve to actual relation objects through the
  behavior's closure cells and globals.  Control flow is approximated
  by walking statements in textual order -- good enough to expose
  nesting hazards, and documented as such.

Functions may also *declare* their nesting explicitly via
``fn.lock_order = ["A", "B"]`` (hold A while acquiring B), which wins
over both extraction paths.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..mcse.shared import SharedVariable

#: Function methods that acquire the shared variable passed first.
_ACQUIRE_METHODS = {"lock", "read_shared", "write_shared"}
_RELEASE_METHODS = {"unlock"}


class TaskLockUsage:
    """What one function does with shared variables."""

    def __init__(self, fn: Any) -> None:
        self.function = fn
        #: Names of shared variables the function ever acquires.
        self.acquires: Set[str] = set()
        #: (held, acquired) nesting pairs observed.
        self.nested: List[Tuple[str, str]] = []


def _resolve_names(behavior: Any) -> Dict[str, object]:
    """Map of variable names visible to ``behavior`` -> bound objects."""
    resolved: Dict[str, object] = {}
    code = getattr(behavior, "__code__", None)
    closure = getattr(behavior, "__closure__", None)
    if code is not None and closure:
        for name, cell in zip(code.co_freevars, closure):
            try:
                resolved[name] = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                pass
    for name, value in (getattr(behavior, "__globals__", None) or {}).items():
        resolved.setdefault(name, value)
    return resolved


def _shared_name(node: ast.AST, names: Dict[str, object]) -> Optional[str]:
    """The relation name an AST call argument refers to, if a shared var."""
    target = None
    if isinstance(node, ast.Name):
        target = names.get(node.id)
    elif isinstance(node, ast.Attribute):
        # ``self.shared`` / ``module.shared``: resolve the base object
        base = node.value
        if isinstance(base, ast.Name):
            owner = names.get(base.id)
            if owner is not None:
                target = getattr(owner, node.attr, None)
    if isinstance(target, SharedVariable):
        return target.name
    return None


def _preorder(tree: ast.AST) -> Iterator[ast.AST]:
    """Depth-first pre-order walk: nodes come out in source order.

    (``ast.walk`` is breadth-first, which would interleave statements
    from different nesting levels and corrupt the held-lock tracking.)
    """
    stack = [tree]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _walk_behavior_ast(usage: TaskLockUsage, behavior: Any) -> None:
    try:
        source = textwrap.dedent(inspect.getsource(behavior))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return
    names = _resolve_names(behavior)
    held: List[str] = []
    for node in _preorder(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        method = func.attr
        if method in _ACQUIRE_METHODS and node.args:
            shared = _shared_name(node.args[0], names)
            if shared is None:
                continue
            usage.acquires.add(shared)
            for holding in held:
                if holding != shared:
                    usage.nested.append((holding, shared))
            if method == "lock":
                held.append(shared)
            # read_shared/write_shared release before returning
        elif method in _RELEASE_METHODS and node.args:
            shared = _shared_name(node.args[0], names)
            if shared is not None and shared in held:
                held.remove(shared)


def _walk_script_ops(usage: TaskLockUsage, ops: Sequence[Any],
                     held: List[str]) -> None:
    for name, args in ops:
        if name in _ACQUIRE_METHODS:
            shared = args[0]
            usage.acquires.add(shared)
            for holding in held:
                if holding != shared:
                    usage.nested.append((holding, shared))
            if name == "lock":
                held.append(shared)
        elif name in _RELEASE_METHODS:
            if args[0] in held:
                held.remove(args[0])
        elif name == "loop":
            _walk_script_ops(usage, args[1], held)


def lock_usage(fn: Any) -> TaskLockUsage:
    """Extract the shared-variable usage of one function."""
    usage = TaskLockUsage(fn)
    declared = getattr(fn, "lock_order", None)
    if declared:
        chain = list(declared)
        usage.acquires.update(chain)
        for index, acquired in enumerate(chain[1:], start=1):
            for holding in chain[:index]:
                usage.nested.append((holding, acquired))
        return usage
    ops = getattr(fn, "script_ops", None)
    if ops:
        _walk_script_ops(usage, ops, [])
        return usage
    behavior = getattr(fn, "_behavior", None)
    if behavior is None:
        # class-based functions override ``behavior()`` instead
        behavior = getattr(type(fn), "behavior", None)
    if behavior is not None:
        _walk_behavior_ast(usage, behavior)
    return usage


def find_cycles(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles in the held->acquired graph (DFS, deduplicated)."""
    cycles: List[List[str]] = []
    seen: Set[Tuple[str, ...]] = set()

    def visit(node: str, path: List[str], on_path: Set[str]) -> None:
        for nxt in sorted(edges.get(node, ())):
            if nxt in on_path:
                cycle = path[path.index(nxt):]
                key = tuple(sorted(cycle))
                if key not in seen:
                    seen.add(key)
                    cycles.append(cycle + [nxt])
                continue
            visit(nxt, path + [nxt], on_path | {nxt})

    for start in sorted(edges):
        visit(start, [start], {start})
    return cycles
