"""Multicore schedulability rules over scheduling domains (RTS15x).

Static feasibility checks for :class:`repro.smp.SchedulingDomain`
models, mirroring what :mod:`.schedulability` does per processor:

=========  ================================================================
RTS150     domain load exceeds the total capacity of its member cores
RTS151     load above the global-EDF (GFB) / global-RM (RM-US) bound
RTS152     a task's affinity mask excludes every core of its cluster
RTS153     first-fit-decreasing finds no partitioned assignment
=========  ================================================================

Utilizations are computed from the same periodic profiles (explicit
``wcet``/``period`` annotations or derived script profiles) and the same
``ProcessorBase.scale_duration`` speed scaling the per-core rules use,
so heterogeneous-speed analysis cannot drift from the simulator.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .diagnostics import Report
from .schedulability import periodic_profile


def _nominal_utilization(task: Any) -> Optional[float]:
    """WCET/period in *nominal* (speed-1) units, or ``None``."""
    profile = periodic_profile(task)
    if profile is None:
        return None
    # periodic_profile scales the WCET onto the task's home core; undo
    # that so domain-level math can apply per-core speeds itself
    speed = getattr(task.processor, "speed", 1.0)
    wcet = profile.wcet if speed == 1.0 else profile.wcet * speed
    return wcet / profile.period


def _domain_loc(domain: Any) -> str:
    return f"domain {domain.name}"


def check_domain(report: Report, domain: Any) -> None:
    """Run every RTS15x rule for one scheduling domain."""
    from .model import RTS150, RTS151, RTS152, RTS153  # circular-import guard

    _check_affinity(report, domain, RTS152)
    utilizations: List[Tuple[Any, float]] = []
    for task in domain.tasks():
        utilization = _nominal_utilization(task)
        if utilization is not None:
            utilizations.append((task, utilization))
    if not utilizations:
        return
    capacity = sum(m.speed for m in domain.members)
    total = sum(u for _, u in utilizations)
    if total > capacity:
        report.add(
            RTS150,
            report.ERROR,
            _domain_loc(domain),
            f"periodic load {total:.3f} exceeds the domain capacity "
            f"{capacity:.3f} ({len(domain.members)} core(s)); the set is "
            "unschedulable under any dispatch",
            hint="reduce WCETs, lengthen periods, or add cores to the "
                 "domain",
        )
        return  # the finer bounds would only restate the impossibility
    if domain.kind in ("global", "clustered"):
        _check_global_bound(report, domain, utilizations, RTS151)
    if domain.kind == "partitioned":
        _check_first_fit(report, domain, utilizations, RTS153)


def _check_affinity(report: Report, domain: Any, RTS152) -> None:
    if domain.kind == "partitioned":
        return  # static assignment; affinity masks are not consulted
    for task in domain.tasks():
        cluster = domain._cluster_of(task.processor)
        if any(domain._eligible(task, member) for member in cluster):
            continue
        names = ", ".join(m.name for m in cluster)
        report.add(
            RTS152,
            report.ERROR,
            f"{_domain_loc(domain)}/{task.name}",
            f"affinity mask {list(task.affinity)} excludes every core of "
            f"its cluster ({names}); the task can never be dispatched",
            hint="include at least one cluster core in the mask, or move "
                 "the task's home processor",
        )


def _check_global_bound(report: Report, domain: Any,
                        utilizations: List[Tuple[Any, float]],
                        RTS151) -> None:
    """GFB for global EDF, RM-US for global RM (identical-speed cores)."""
    policy = getattr(domain.policy, "name", "")
    if policy not in ("global_edf", "global_rm"):
        return
    speeds = {m.speed for m in domain.members}
    if len(speeds) != 1:
        return  # the closed-form bounds assume identical cores
    speed = speeds.pop()
    m = len(domain.members)
    scaled = [u / speed for _, u in utilizations]
    total = sum(scaled)
    u_max = max(scaled)
    if policy == "global_edf":
        # Goossens-Funk-Baruah: U <= M - (M-1) * u_max is sufficient
        bound = m - (m - 1) * u_max
        label = f"global-EDF GFB bound {bound:.3f} (M={m}, umax={u_max:.3f})"
    else:
        # Andersson-Baruah-Jonsson RM-US: U <= M^2 / (3M - 2)
        bound = (m * m) / (3 * m - 2)
        label = f"global-RM RM-US bound {bound:.3f} (M={m})"
    if total > bound:
        report.add(
            RTS151,
            report.WARNING,
            _domain_loc(domain),
            f"periodic load {total:.3f} exceeds the {label}; global "
            "feasibility is not guaranteed (Dhall-effect schedules may "
            "miss deadlines)",
            hint="lower per-task utilization, add cores, or switch to a "
                 "partitioned assignment",
        )


def _check_first_fit(report: Report, domain: Any,
                     utilizations: List[Tuple[Any, float]],
                     RTS153) -> None:
    """First-fit-decreasing over member capacities (speed = bin size)."""
    bins = [(member, member.speed) for member in domain.members]
    remaining = {member.name: capacity for member, capacity in bins}
    unplaced = []
    for task, utilization in sorted(
        utilizations, key=lambda item: -item[1]
    ):
        for member, _ in bins:
            if domain._eligible(task, member) and \
                    utilization <= remaining[member.name] + 1e-12:
                remaining[member.name] -= utilization
                break
        else:
            unplaced.append((task, utilization))
    for task, utilization in unplaced:
        report.add(
            RTS153,
            report.WARNING,
            f"{_domain_loc(domain)}/{task.name}",
            f"first-fit-decreasing cannot place the task (utilization "
            f"{utilization:.3f}) on any member core; no static "
            "partitioned assignment is likely to exist",
            hint="reduce the task's WCET, lengthen its period, or use a "
                 "global domain so slack can be pooled",
        )


def domain_capacity_summary(domain: Any) -> str:
    """One-line capacity digest used by reports and the CLI."""
    capacity = sum(m.speed for m in domain.members)
    total = 0.0
    for task in domain.tasks():
        utilization = _nominal_utilization(task)
        if utilization is not None:
            total += utilization
    return (
        f"{_domain_loc(domain)}: load {total:.3f} of capacity "
        f"{capacity:.3f} over {len(domain.members)} core(s)"
    )


__all__ = ["check_domain", "domain_capacity_summary"]
