"""Pre-simulation static analysis and runtime nondeterminism sanitizing.

The paper's whole point is catching RTOS-level design mistakes *before*
target code exists; this package catches them before the *simulation*
runs, in milliseconds:

* :func:`analyze_system` -- the **model linter**: walks the
  processor/task/shared-variable graph of a built system and reports
  duplicate priorities, utilization and response-time schedulability
  violations (Liu & Layland bound + overhead-aware RTA), deadlock
  cycles and priority-inversion hazards in the lock acquisition graph,
  broken overhead formulas, never-ready tasks, and time-partition
  windows that cannot fit their tasks (rules ``RTS...``).
* :func:`analyze_source` -- the **source linter**: an AST pass over
  experiment/model files for unseeded global randomness, wall-clock
  reads and unpicklable campaign callables (rules ``SRC...``).
* :class:`Sanitizer` -- the **runtime sanitizer** behind
  ``Simulator(sanitize=True)``: same-delta conflicting channel writes
  and ambiguous same-timestamp wake orders (rules ``SAN...``).
* :func:`analyze_flows` / :func:`task_effects` -- the **behavior-flow
  analyzer**: lowers every task behavior (script ops and generator
  ASTs alike) into one effect IR, then runs path-sensitive lock-set
  abstract interpretation and static demand/supply interval inference
  over it (rules ``RTS16x``); its findings ride along in
  :func:`analyze_system` reports.
* :class:`BlockingModel` / :func:`plan_fixes` -- the **blocking-aware
  schedulability layer**: extracts worst-case critical-section holds
  from the effect IR, charges protocol-aware blocking terms into the
  RTA, checks ceilings and Audsley-optimal priority assignments (rules
  ``RTS18x``), and synthesizes machine-applicable JSON-spec patches
  (``pyrtos-sc lint --fix``).

All of them report through one :class:`Diagnostic` pipeline; the
``pyrtos-sc lint`` CLI command renders it as text or JSON.  The full
rule catalogue lives in ``docs/analysis.md``.
"""

from .assign import check_assignment, suggest_priorities
from .blocking import (
    BlockingModel,
    BlockingTerm,
    CriticalSection,
    check_blocking,
    critical_sections,
)
from .code import analyze_source
from .diagnostics import RULES, Diagnostic, Report, Severity, explain_rule
from .effects import TaskEffects, task_effects
from .fixes import apply_fixes, plan_fixes
from .flow import TaskFlow, analyze_flows, analyze_task, check_flow
from .model import analyze_processors, analyze_system
from .personality import check_personality
from .sanitize import Sanitizer
from .sarif import report_to_sarif
from .schedulability import periodic_profile

__all__ = [
    "RULES",
    "BlockingModel",
    "BlockingTerm",
    "CriticalSection",
    "Diagnostic",
    "Report",
    "Sanitizer",
    "Severity",
    "TaskEffects",
    "TaskFlow",
    "analyze_flows",
    "analyze_processors",
    "analyze_source",
    "analyze_system",
    "analyze_task",
    "apply_fixes",
    "check_assignment",
    "check_blocking",
    "check_flow",
    "check_personality",
    "critical_sections",
    "explain_rule",
    "periodic_profile",
    "plan_fixes",
    "report_to_sarif",
    "suggest_priorities",
    "task_effects",
]
