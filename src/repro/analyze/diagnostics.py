"""The diagnostic pipeline shared by every analyzer layer.

All three layers of :mod:`repro.analyze` -- the model linter, the source
linter and the runtime nondeterminism sanitizer -- report their findings
as :class:`Diagnostic` records collected into a :class:`Report`.  A
diagnostic carries a stable *rule id* (``RTS...`` for model rules,
``SRC...`` for source rules, ``SAN...`` for sanitizer rules; see
``docs/analysis.md`` for the catalogue), a :class:`Severity`, a
human-readable location, the finding itself, and -- whenever the rule
knows one -- a concrete fix hint.

Suppression happens at report level: a rule id in the suppression set
(assembled from ``analyze_system(suppress=...)``, per-object
``lint_suppress`` attributes and ``# pyrtos: disable=RULE`` source
comments) drops matching diagnostics before they are rendered.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set


class Severity(enum.Enum):
    """How bad a finding is.

    * ``ERROR`` -- the model/run is wrong (unschedulable, deadlock, a
      formula that cannot evaluate); simulation results cannot be
      trusted.
    * ``WARNING`` -- a hazard that usually indicates a design mistake
      (priority inversion exposure, unseeded randomness) but may be
      intentional; suppressible per rule.
    * ``INFO`` -- an observation worth surfacing, never a failure.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


#: Registry of every documented rule id -> one-line description.
#: Populated by the analyzer modules at import time via :func:`rule`;
#: ``docs/analysis.md`` is the human-facing version of this table.
RULES: Dict[str, str] = {}

#: Optional long-form explanations (rendered by ``pyrtos-sc lint
#: --explain RULE``): what the rule detects, why it matters, how to fix.
EXPLANATIONS: Dict[str, str] = {}


def rule(rule_id: str, summary: str, *,
         explain: Optional[str] = None) -> str:
    """Register ``rule_id`` in the catalogue and return it."""
    RULES[rule_id] = summary
    if explain is not None:
        EXPLANATIONS[rule_id] = explain
    return rule_id


def explain_rule(rule_id: str) -> str:
    """Human-readable explanation of one rule (summary + long form)."""
    if rule_id not in RULES:
        known = ", ".join(sorted(RULES))
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
    text = f"{rule_id}: {RULES[rule_id]}"
    long_form = EXPLANATIONS.get(rule_id)
    if long_form:
        text += "\n\n" + long_form
    return text


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one location."""

    rule: str
    severity: Severity
    location: str
    message: str
    hint: Optional[str] = None
    #: Source line for file-based findings, ``None`` for model findings.
    line: Optional[int] = None

    def format(self) -> str:
        """Render as a one-per-line, grep-friendly text diagnostic."""
        where = self.location
        if self.line is not None:
            where = f"{where}:{self.line}"
        text = f"{where}: {self.severity.value} [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["severity"] = self.severity.value
        return payload


@dataclass
class Report:
    """An ordered collection of diagnostics with filtering and rendering."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Rule ids dropped from the report (suppressed findings are kept in
    #: :attr:`suppressed` so tooling can still count them).
    suppress: Set[str] = field(default_factory=set)
    suppressed: List[Diagnostic] = field(default_factory=list)

    # Severity shorthands so rule code reads ``report.add(ID, report.ERROR, ...)``.
    ERROR = Severity.ERROR
    WARNING = Severity.WARNING
    INFO = Severity.INFO

    def add(
        self,
        rule_id: str,
        severity: Severity,
        location: str,
        message: str,
        hint: Optional[str] = None,
        line: Optional[int] = None,
    ) -> Optional[Diagnostic]:
        """Record one finding (or stash it when suppressed)."""
        diagnostic = Diagnostic(rule_id, severity, location, message, hint, line)
        if rule_id in self.suppress:
            self.suppressed.append(diagnostic)
            return None
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "Report") -> "Report":
        """Merge ``other``'s findings (and suppressed findings) into this."""
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    @property
    def rule_ids(self) -> Set[str]:
        return {d.rule for d in self.diagnostics}

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    def ok(self, *, strict: bool = False) -> bool:
        """Whether the report passes: no errors (strict: no warnings)."""
        if self.errors:
            return False
        if strict and self.warnings:
            return False
        return True

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.by_severity(Severity.INFO)),
            "suppressed": len(self.suppressed),
        }

    def format_text(self) -> str:
        """All findings, most severe first, plus a one-line summary."""
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.rule, d.location, d.line or 0),
        )
        lines = [d.format() for d in ordered]
        counts = self.summary()
        lines.append(
            f"{counts['errors']} error(s), {counts['warnings']} warning(s), "
            f"{counts['infos']} info(s)"
            + (f", {counts['suppressed']} suppressed" if counts["suppressed"]
               else "")
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "summary": self.summary(),
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def merge_suppressions(*sources: Iterable[str]) -> Set[str]:
    """Union of suppression sets from any mix of iterables (None-safe)."""
    merged: Set[str] = set()
    for source in sources:
        if source:
            merged.update(source)
    return merged


def object_suppressions(obj: object) -> Set[str]:
    """The ``lint_suppress`` rule-id set declared on a model object."""
    declared = getattr(obj, "lint_suppress", None)
    if not declared:
        return set()
    if isinstance(declared, str):
        return {declared}
    return set(declared)
