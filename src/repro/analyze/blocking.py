"""Blocking-aware schedulability: critical sections, blocking terms, RTA.

The RTS103/104/105 rules run the classical feasibility math with zero
blocking terms, yet the effect IR (:mod:`repro.analyze.effects`) already
knows every lock's worst-case hold time.  This module closes that gap:

1. **Critical-section extraction** -- a structural walk over each task's
   effect tree pairs ``lock``/``unlock`` per shared variable and folds
   the execute/delay cost accrued in between into a worst-case *hold*
   per (task, resource), exactness-tracked (loop bounds, branches and
   blocking-while-holding all degrade the claim honestly).
2. **Blocking terms** -- per task, the classical worst-case blocking
   bound under the resource-access protocol actually configured:
   priority inheritance (PIP min-of-two-sums), immediate priority
   ceiling (single longest lower-priority section at or above the
   ceiling), plain mutexes (PIP-shaped bound, never exact: inversion is
   unbounded without a protocol) and cross-processor sharing (sum of
   remote holds, never exact).
3. **Blocking-aware RTA** -- the overhead-aware response-time recurrence
   of :mod:`repro.analysis.response_time` re-run with the blocking term
   charged, refining the zero-blocking verdicts.

Rules (catalogued in ``docs/analysis.md``):

=========  ================================================================
RTS180     task unschedulable once worst-case blocking is charged
RTS181     declared ceiling differs from the computed PCP ceiling
RTS183     worst-case blocking exceeds the declared ``max_blocking``
=========  ================================================================

Severity discipline: RTS180/RTS183 claim ERROR only when every
contributing critical-section interval is exact (script-lowered or
exactly-lowered behavior, bounded, no blocking op inside the section),
otherwise they degrade to WARNING.  RTS181 is a declared-metadata
mismatch and stays WARNING.  RTS180 ERRORs are witnessable as RTS-V002
deadline misses and RTS183 ERRORs as RTS-V004 inversion-bound
violations (see :mod:`repro.verify.witness`).

The companion :mod:`repro.analyze.assign` reuses :class:`BlockingModel`
to run Audsley's optimal priority assignment (RTS182) and the fix
engine (:mod:`repro.analyze.fixes`) reuses both to synthesize patches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..analysis.response_time import PeriodicTask, response_time_analysis
from ..kernel.time import Time, format_time
from ..mcse.shared import SharedVariable
from ..rtos.services import CeilingSharedVariable, InheritanceSharedVariable
from .diagnostics import Report, rule
from .effects import Branch, Effect, Exit, Loop, Node, Seq
from .flow import TaskFlow, _emit
from .schedulability import periodic_profile, resolve_overhead_costs

RTS180 = rule(
    "RTS180", "task unschedulable once blocking is charged",
    explain="The zero-blocking response-time analysis (RTS105) accepts the "
            "task, but charging the worst-case blocking term implied by its "
            "shared-variable usage pushes the response time past the "
            "deadline. The blocking bound follows the configured protocol "
            "(priority inheritance, immediate ceiling, or a plain mutex) "
            "over the critical-section holds extracted from the effect IR. "
            "ERROR when every contributing hold interval is exact, WARNING "
            "otherwise. Shorten the critical sections, reassign priorities "
            "(see RTS182 / `pyrtos-sc lint --fix`), or relax the deadline.",
)
RTS181 = rule(
    "RTS181", "declared ceiling differs from the computed PCP ceiling",
    explain="A ceiling-protocol shared variable declares a ceiling that is "
            "not the priority-ceiling-protocol value computed from its "
            "actual users (the highest priority among tasks that lock it). "
            "A ceiling set too low cannot prevent inversion for the "
            "higher-priority users (RTS112 reports the unsound direction "
            "as an error); one set too high needlessly blocks unrelated "
            "tasks and inflates their blocking terms. Machine-fixable: "
            "`pyrtos-sc lint --fix` rewrites the declaration.",
)
RTS183 = rule(
    "RTS183", "worst-case blocking exceeds the declared max_blocking",
    explain="The function declares a `max_blocking` budget, but the "
            "worst-case blocking term computed from the system's critical "
            "sections exceeds it. ERROR when every contributing hold is "
            "exact (the budget is provably broken), WARNING otherwise. "
            "Dynamically cross-checked: `pyrtos-sc lint --witness` asks the "
            "verifier for an RTS-V004 schedule in which a task really is "
            "blocked behind a lower-priority owner for longer than the "
            "declared bound. Machine-fixable: `--fix` tightens the "
            "declaration to the computed bound.",
)

Bound = Optional[int]  # None = unbounded

#: Effect kinds that can suspend the caller for a data-dependent time;
#: one of these inside a critical section makes the hold unbounded.
_BLOCKING_KINDS = frozenset((
    "wait", "read", "write", "shared_read", "shared_write", "opaque",
))


def _badd(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return a + b


def _bmax(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return max(a, b)


def _bgt(a: Bound, b: int) -> bool:
    """``a > b`` with ``None`` as +infinity."""
    return a is None or a > b


def _longer(candidate: Bound, best: Bound) -> bool:
    """Whether ``candidate`` is a strictly longer hold than ``best``."""
    if best is None:
        return False
    return candidate is None or candidate > best


# ---------------------------------------------------------------------------
# Critical-section extraction
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CriticalSection:
    """Worst-case single hold of one resource by one task."""

    task: str
    resource: str
    #: Worst-case hold duration (``None`` = statically unbounded).
    hold: Bound
    #: The hold is a proof: exact lowering, bounded loops, no blocking
    #: op inside the section, lock/unlock balanced on every path.
    exact: bool


class _HoldWalk:
    """Fold one effect tree into the worst-case hold of one resource.

    The state is ``(depth, open)``: the lock nesting depth on the
    resource under analysis and the cost accrued since the outermost
    acquisition.  Execute cost is scaled by the task's processor speed
    (the same ``scale_duration`` the simulator charges); delays count at
    wall-clock value.  Anything the walk cannot bound -- blocking ops
    while holding, unbalanced paths, unbounded loops inside a section --
    collapses to an unbounded, inexact hold.
    """

    def __init__(self, resource: str, scale: Any) -> None:
        self.resource = resource
        self.scale = scale
        self.max_hold: Bound = 0
        self.exact = True

    def run(self, root: Node) -> Tuple[Bound, bool]:
        depth, open_cost = self._node(root, 0, 0)
        if depth != 0:
            # a leak/underflow path (RTS161/RTS162 territory): the
            # still-open section never provably closes
            self.exact = False
            self.max_hold = _bmax(self.max_hold, None)
        if self.max_hold is None:
            self.exact = False
        return self.max_hold, self.exact

    # ------------------------------------------------------------------
    def _node(self, node: Node, depth: int,
              open_cost: Bound) -> Tuple[int, Bound]:
        if isinstance(node, Effect):
            return self._effect(node, depth, open_cost)
        if isinstance(node, Seq):
            for item in node.items:
                depth, open_cost = self._node(item, depth, open_cost)
            return depth, open_cost
        if isinstance(node, Branch):
            results = [self._node(arm, depth, open_cost)
                       for arm in node.arms]
            depths = {d for d, _ in results}
            if len(depths) > 1:
                # arms disagree on the lock state (RTS160): no exact
                # hold claim survives the join
                self.exact = False
                self.max_hold = _bmax(self.max_hold, None)
                return max(depths), None
            out_depth = depths.pop()
            if out_depth == 0:
                return 0, 0
            merged: Bound = results[0][1]
            for _, cost in results[1:]:
                merged = _bmax(merged, cost)
            return out_depth, merged
        if isinstance(node, Loop):
            return self._loop(node, depth, open_cost)
        if isinstance(node, Exit):
            if depth > 0:
                # control leaves the structured region while holding
                self.exact = False
                self.max_hold = _bmax(self.max_hold, None)
            return depth, open_cost
        raise TypeError(f"not an effect node: {node!r}")

    def _loop(self, node: Loop, depth: int,
              open_cost: Bound) -> Tuple[int, Bound]:
        if depth > 0 and _touches(node.body, self.resource):
            # unlock/re-lock of the open section from inside the loop:
            # per-iteration pairing would need a relational analysis
            self.exact = False
            self.max_hold = _bmax(self.max_hold, None)
            return depth, None
        body_depth, body_open = self._node(node.body, depth, 0)
        if body_depth != depth:
            # per-iteration lock drift (lock inside / unlock outside)
            self.exact = False
            self.max_hold = _bmax(self.max_hold, None)
            return body_depth, None
        if depth == 0:
            # sections opened and closed inside one iteration already
            # contributed to max_hold; repetition cannot increase a max
            return 0, 0
        # the whole loop body accrues inside the open section
        if node.infinite or node.count is None:
            self.exact = False
            return depth, None
        if body_open is None:
            return depth, None
        return depth, _badd(open_cost, body_open * node.count)

    def _effect(self, effect: Effect, depth: int,
                open_cost: Bound) -> Tuple[int, Bound]:
        kind = effect.kind
        mine = effect.target == self.resource
        if kind == "lock":
            if mine:
                if depth > 0:
                    # double acquire: self-deadlock (RTS162); the hold
                    # duration is not a meaningful quantity any more
                    self.exact = False
                    return depth + 1, None
                return 1, 0
            if depth > 0:
                # blocking on another resource while holding this one:
                # the hold extends by that (statically unknown) wait
                self.exact = False
                return depth, None
            return depth, open_cost
        if kind == "unlock":
            if mine:
                if depth == 0:
                    self.exact = False  # underflow: unlock without lock
                    return 0, open_cost
                if depth == 1:
                    self.max_hold = _bmax(self.max_hold, open_cost)
                    return 0, 0
                return depth - 1, open_cost
            return depth, open_cost
        if kind in ("execute", "delay"):
            if depth == 0:
                return depth, open_cost
            if effect.cost is None:
                self.exact = False
                return depth, None
            hi: Bound = effect.cost[1]
            if kind == "execute" and hi is not None:
                hi = self.scale(hi)
            return depth, _badd(open_cost, hi)
        if kind in ("shared_read", "shared_write") and mine and depth == 0:
            # convenience op: acquire + copy + release, zero-length hold
            self.max_hold = _bmax(self.max_hold, 0)
            return depth, open_cost
        if kind in _BLOCKING_KINDS and depth > 0:
            self.exact = False
            return depth, None
        return depth, open_cost


def _touches(node: Node, resource: str) -> bool:
    """Whether the subtree locks or unlocks ``resource``."""
    stack: List[Node] = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, Effect):
            if item.kind in ("lock", "unlock") and item.target == resource:
                return True
        elif isinstance(item, Seq):
            stack.extend(item.items)
        elif isinstance(item, Branch):
            stack.extend(item.arms)
        elif isinstance(item, Loop):
            stack.append(item.body)
    return False


def _scale_of(fn: Any) -> Any:
    task = getattr(fn, "task", None)
    scale = getattr(getattr(task, "processor", None), "scale_duration", None)
    return scale if scale is not None else (lambda duration: duration)


def critical_sections(
    system: Any, flows: Mapping[str, TaskFlow],
) -> Dict[Tuple[str, str], CriticalSection]:
    """Worst-case holds per (task, shared variable) across the system."""
    shared = {
        name for name, relation in system.relations.items()
        if isinstance(relation, SharedVariable)
    }
    sections: Dict[Tuple[str, str], CriticalSection] = {}
    for name in sorted(flows):
        flow = flows[name]
        resources = sorted(set(flow.usage.acquires) & shared)
        if not resources:
            continue
        effects = flow.effects
        scale = _scale_of(flow.function)
        for resource in resources:
            if effects is None or not flow.exact:
                sections[(name, resource)] = CriticalSection(
                    task=name, resource=resource, hold=None, exact=False)
                continue
            hold, exact = _HoldWalk(resource, scale).run(effects.root)
            sections[(name, resource)] = CriticalSection(
                task=name, resource=resource, hold=hold, exact=exact)
    return sections


# ---------------------------------------------------------------------------
# Blocking terms
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BlockingTerm:
    """Worst-case blocking charged to one task."""

    task: str
    #: Blocking duration (``None`` = statically unbounded).
    time: Bound
    #: All contributing holds exact and protocol-bounded.
    exact: bool
    #: (blocker task, resource, hold) triples behind the bound.
    contributors: Tuple[Tuple[str, str, Bound], ...] = ()

    @property
    def charge(self) -> Optional[Time]:
        """The term as an RTA-chargeable duration (``None``: unbounded)."""
        return self.time


@dataclass(frozen=True)
class _Resource:
    name: str
    protocol: str  # "ceiling" | "inheritance" | "none"
    declared_ceiling: Optional[int]
    users: Tuple[str, ...]  # mapped task/function names that acquire it


class BlockingModel:
    """Everything blocking analysis knows about one built system.

    Priorities are passed per query (as ``{task: priority}``) so
    Audsley's assignment search (:mod:`repro.analyze.assign`) can probe
    hypothetical orderings against the same critical-section table.
    """

    def __init__(self, system: Any, flows: Mapping[str, TaskFlow]) -> None:
        self.system = system
        self.flows = flows
        self.sections = critical_sections(system, flows)
        self.cpu_of: Dict[str, str] = {}
        self.priorities: Dict[str, int] = {}
        for name, fn in system.functions.items():
            task = getattr(fn, "task", None)
            if task is None:
                continue
            self.cpu_of[name] = task.processor.name
            priority = task.base_priority
            if isinstance(priority, int) and not isinstance(priority, bool):
                self.priorities[name] = priority
        self.resources: Dict[str, _Resource] = {}
        for name, relation in sorted(system.relations.items()):
            if not isinstance(relation, SharedVariable):
                continue
            users = tuple(sorted(
                task for (task, resource) in self.sections
                if resource == name and task in self.priorities
            ))
            if isinstance(relation, CeilingSharedVariable):
                protocol = "ceiling"
                declared = getattr(relation, "ceiling", None)
            elif isinstance(relation, InheritanceSharedVariable):
                protocol = "inheritance"
                declared = None
            else:
                protocol = "none"
                declared = None
            self.resources[name] = _Resource(
                name=name, protocol=protocol, declared_ceiling=declared,
                users=users)

    # ------------------------------------------------------------------
    def hold(self, task: str, resource: str) -> Optional[CriticalSection]:
        return self.sections.get((task, resource))

    def computed_ceiling(
        self, resource: str,
        priorities: Optional[Mapping[str, int]] = None,
    ) -> Optional[int]:
        """The PCP ceiling: highest priority among the users, if any."""
        info = self.resources.get(resource)
        if info is None or not info.users:
            return None
        table = self.priorities if priorities is None else priorities
        values = [table[user] for user in info.users if user in table]
        return max(values) if values else None

    def effective_ceiling(self, resource: str) -> Optional[int]:
        """The ceiling the runtime actually enforces (declared wins)."""
        info = self.resources.get(resource)
        if info is None:
            return None
        if info.declared_ceiling is not None:
            return info.declared_ceiling
        return self.computed_ceiling(resource)

    # ------------------------------------------------------------------
    def blocking(
        self, task: str,
        priorities: Optional[Mapping[str, int]] = None,
    ) -> BlockingTerm:
        """Worst-case blocking of ``task`` under a priority assignment."""
        table = dict(self.priorities if priorities is None else priorities)
        mine = table.get(task)
        cpu = self.cpu_of.get(task)
        if mine is None or cpu is None:
            return BlockingTerm(task=task, time=0, exact=True)
        total: Bound = 0
        exact = True
        contributors: List[Tuple[str, str, Bound]] = []

        ceiling_part, c_exact, c_contrib = self._ceiling_part(
            task, mine, cpu, table)
        pip_part, p_exact, p_contrib = self._pip_part(
            task, mine, cpu, table, protocol="inheritance", exact_ok=True)
        plain_part, _, n_contrib = self._pip_part(
            task, mine, cpu, table, protocol="none", exact_ok=False)
        remote_part, r_contrib = self._remote_part(task, cpu)

        total = _badd(_badd(ceiling_part, pip_part),
                      _badd(plain_part, remote_part))
        exact = c_exact and p_exact
        if plain_part != 0:
            exact = False  # no protocol: inversion is unbounded
        if remote_part != 0:
            exact = False  # remote interleavings are not modelled exactly
        contributors = c_contrib + p_contrib + n_contrib + r_contrib
        if total is None:
            exact = False
        return BlockingTerm(task=task, time=total, exact=exact,
                            contributors=tuple(contributors))

    # ------------------------------------------------------------------
    def _local_users(self, resource: _Resource, cpu: str,
                     table: Mapping[str, int]) -> List[str]:
        return [user for user in resource.users
                if self.cpu_of.get(user) == cpu and user in table]

    def _ceiling_part(
        self, task: str, mine: int, cpu: str, table: Mapping[str, int],
    ) -> Tuple[Bound, bool, List[Tuple[str, str, Bound]]]:
        """ICPP: blocked at most once, by the longest lower-priority
        section of a resource whose runtime ceiling reaches ``mine``."""
        best: Bound = 0
        exact = True
        contributor: List[Tuple[str, str, Bound]] = []
        for name, resource in self.resources.items():
            if resource.protocol != "ceiling":
                continue
            ceiling = self.effective_ceiling(name)
            if ceiling is None or ceiling < mine:
                continue
            for user in self._local_users(resource, cpu, table):
                if user == task or table[user] >= mine:
                    continue
                section = self.sections[(user, name)]
                if not section.exact:
                    exact = False
                if _longer(section.hold, best):
                    best = section.hold
                    contributor = [(user, name, section.hold)]
        if best is None:
            exact = False
        if best == 0:
            contributor = []
        return best, exact, contributor

    def _pip_part(
        self, task: str, mine: int, cpu: str, table: Mapping[str, int],
        *, protocol: str, exact_ok: bool,
    ) -> Tuple[Bound, bool, List[Tuple[str, str, Bound]]]:
        """The classical PIP bound: min of the per-task and per-resource
        sums of maximal lower-priority sections that can block ``task``.

        For ``protocol="none"`` the same shape bounds the direct
        blocking, but the claim is never exact (a middle-priority task
        can extend the inversion without bound).
        """
        usable: List[_Resource] = []
        for name, resource in self.resources.items():
            if resource.protocol != protocol:
                continue
            local = self._local_users(resource, cpu, table)
            lower = [u for u in local if u != task and table[u] < mine]
            if not lower:
                continue
            if protocol == "none":
                # no inheritance: a lower-priority owner only delays a
                # task that itself wants the resource
                if task not in resource.users:
                    continue
            else:
                # inheritance: the owner is boosted only when a task at
                # or above ``mine`` (possibly ``task`` itself) wants it
                elevated = [u for u in local
                            if u == task or table[u] >= mine]
                if not elevated:
                    continue
            usable.append(resource)
        if not usable:
            return 0, True, []

        exact = exact_ok
        lower_tasks: Set[str] = set()
        for resource in usable:
            for user in self._local_users(resource, cpu, table):
                if user != task and table[user] < mine:
                    lower_tasks.add(user)

        # sum over lower-priority tasks of their longest usable section
        per_task: Bound = 0
        per_task_contrib: List[Tuple[str, str, Bound]] = []
        for user in sorted(lower_tasks):
            best: Bound = 0
            best_resource = None
            for resource in usable:
                section = self.sections.get((user, resource.name))
                if section is None:
                    continue
                if not section.exact:
                    exact = False
                if _longer(section.hold, best):
                    best = section.hold
                    best_resource = resource.name
            if best_resource is not None:
                per_task_contrib.append((user, best_resource, best))
            per_task = _badd(per_task, best)

        # sum over usable resources of their longest lower-priority section
        per_resource: Bound = 0
        per_resource_contrib: List[Tuple[str, str, Bound]] = []
        for resource in usable:
            best = 0
            best_user = None
            for user in sorted(lower_tasks):
                section = self.sections.get((user, resource.name))
                if section is None:
                    continue
                if _longer(section.hold, best):
                    best = section.hold
                    best_user = user
            if best_user is not None:
                per_resource_contrib.append((best_user, resource.name, best))
            per_resource = _badd(per_resource, best)

        if per_resource is None or (per_task is not None
                                    and per_task <= per_resource):
            bound, contrib = per_task, per_task_contrib
        else:
            bound, contrib = per_resource, per_resource_contrib
        if bound is None:
            exact = False
        if bound == 0:
            contrib = []
        return bound, exact, contrib

    def _remote_part(
        self, task: str, cpu: str,
    ) -> Tuple[Bound, List[Tuple[str, str, Bound]]]:
        """Cross-processor sharing: every remote user may hold once."""
        total: Bound = 0
        contrib: List[Tuple[str, str, Bound]] = []
        for name, resource in self.resources.items():
            if task not in resource.users:
                continue
            for user in resource.users:
                if user == task or self.cpu_of.get(user) == cpu:
                    continue
                section = self.sections[(user, name)]
                contrib.append((user, name, section.hold))
                total = _badd(total, section.hold)
        if total == 0:
            contrib = []
        return total, contrib


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------
_PRIORITY_POLICIES = ("priority_preemptive", "priority_round_robin")


def _analysis_domain(processor: Any) -> bool:
    domain = getattr(processor, "domain", None)
    return domain is None or domain.kind == "partitioned"


def _contributor_text(contributors: Sequence[Tuple[str, str, Bound]]) -> str:
    parts = []
    for user, resource, hold in contributors:
        hold_text = "unbounded" if hold is None else format_time(hold)
        parts.append(f"{user} via {resource} ({hold_text})")
    return ", ".join(parts)


def check_blocking(report: Report, system: Any,
                   flows: Mapping[str, TaskFlow]) -> BlockingModel:
    """Run the RTS180/181/183 rules; returns the model for reuse."""
    model = BlockingModel(system, flows)
    _check_ceilings(report, model)
    for processor in system.processors.values():
        if not _analysis_domain(processor):
            continue
        _check_processor_blocking(report, model, processor)
    return model


def _check_ceilings(report: Report, model: BlockingModel) -> None:
    """RTS181: declared vs computed PCP ceiling."""
    for name, resource in model.resources.items():
        if resource.protocol != "ceiling":
            continue
        declared = resource.declared_ceiling
        computed = model.computed_ceiling(name)
        if declared is None or computed is None or declared == computed:
            continue
        direction = ("below it: the protocol cannot protect the "
                     "higher-priority users (see RTS112)"
                     if declared < computed else
                     "above it: unrelated tasks at priorities "
                     f"{computed + 1}..{declared} are blocked needlessly")
        report.add(
            RTS181,
            report.WARNING,
            f"shared {name}",
            f"declared ceiling {declared} differs from the computed PCP "
            f"ceiling {computed} (highest priority among users "
            f"{', '.join(resource.users)}) -- it is {direction}",
            hint="set the ceiling to the computed value, or run "
                 "`pyrtos-sc lint --fix` to rewrite it",
        )


def _check_processor_blocking(report: Report, model: BlockingModel,
                              processor: Any) -> None:
    location = f"processor {processor.name}"
    policy_name = getattr(processor.policy, "name", "")
    if policy_name not in _PRIORITY_POLICIES:
        return
    profiles: List[PeriodicTask] = []
    for task in processor.tasks:
        profile = periodic_profile(task)
        if profile is not None:
            profiles.append(profile)
    if not profiles:
        return
    costs = resolve_overhead_costs(processor)
    if costs is None:
        return  # RTS120 already reported the broken formula
    context_switch, scheduling = costs

    terms = {profile.name: model.blocking(profile.name)
             for profile in profiles}
    baseline = response_time_analysis(
        profiles, context_switch=context_switch, scheduling=scheduling)
    charged_profiles = [
        _with_blocking(profile, terms[profile.name]) for profile in profiles
    ]
    charged = response_time_analysis(
        charged_profiles, context_switch=context_switch,
        scheduling=scheduling)

    for profile in profiles:
        term = terms[profile.name]
        flow = model.flows.get(profile.name)
        _check_budget(report, model, profile, term, flow, location)
        if term.time == 0:
            continue
        base_response = baseline[profile.name]
        deadline = profile.effective_deadline
        if base_response is None or base_response > deadline:
            continue  # RTS105 already owns the zero-blocking miss
        blocked_response = charged[profile.name]
        if blocked_response is not None and blocked_response <= deadline:
            continue
        severity = (report.ERROR
                    if term.exact and blocked_response is not None
                    else report.WARNING)
        blocked_text = ("diverges" if blocked_response is None
                        else format_time(blocked_response))
        term_text = ("unbounded" if term.time is None
                     else format_time(term.time))
        message = (
            f"schedulable with zero blocking (response "
            f"{format_time(base_response)}), but charging the worst-case "
            f"blocking term {term_text} pushes the response to "
            f"{blocked_text}, past the deadline {format_time(deadline)}"
        )
        if term.contributors:
            message += f"; blocked by {_contributor_text(term.contributors)}"
        _emit_for(report, flow, RTS180, severity,
                  f"{location}/{profile.name}", message,
                  "shorten the critical sections, reassign priorities "
                  "(RTS182 / `pyrtos-sc lint --fix`), or relax the "
                  "deadline")


def _with_blocking(profile: PeriodicTask, term: BlockingTerm) -> PeriodicTask:
    charge = term.time
    if charge is None:
        # unbounded: saturate far past any deadline so the RTA verdict
        # is "miss"; the severity discipline already downgraded to
        # WARNING via ``term.exact``
        charge = profile.effective_deadline * 1000
    return PeriodicTask(
        name=profile.name, wcet=profile.wcet, period=profile.period,
        priority=profile.priority, deadline=profile.deadline,
        blocking=charge,
    )


def _check_budget(report: Report, model: BlockingModel,
                  profile: PeriodicTask, term: BlockingTerm,
                  flow: Optional[TaskFlow], location: str) -> None:
    """RTS183: computed blocking vs the declared ``max_blocking``."""
    fn = model.system.functions.get(profile.name)
    declared = getattr(fn, "max_blocking", None)
    if (fn is None or isinstance(declared, bool)
            or not isinstance(declared, int)):
        return
    if not _bgt(term.time, declared):
        return
    severity = report.ERROR if term.exact else report.WARNING
    term_text = ("unbounded" if term.time is None
                 else format_time(term.time))
    message = (
        f"worst-case blocking {term_text} exceeds the declared "
        f"max_blocking {format_time(declared)}"
    )
    if term.contributors:
        message += f"; blocked by {_contributor_text(term.contributors)}"
    _emit_for(report, flow, RTS183, severity,
              f"{location}/{profile.name}", message,
              "shorten the blocking critical sections, or tighten the "
              "declaration to the computed bound (`pyrtos-sc lint --fix`)")


def _emit_for(report: Report, flow: Optional[TaskFlow], rule_id: str,
              severity: Any, location: str, message: str,
              hint: str) -> None:
    if flow is not None:
        _emit(report, flow, rule_id, severity, location, message, hint, None)
    else:
        report.add(rule_id, severity, location, message, hint)


__all__ = [
    "BlockingModel",
    "BlockingTerm",
    "CriticalSection",
    "check_blocking",
    "critical_sections",
]
