"""Path-sensitive behavior-flow analysis over the effect IR.

This replaces the old textual-order lock walker: every task behavior is
lowered (:mod:`repro.analyze.effects`) into a control-flow tree whose
leaves are kernel-visible effects, and an abstract interpreter runs a
*lock-set* domain over it -- the analysis state is the set of lock-set
valuations reachable at a program point, so branches, loops (to a
fixpoint) and early exits are tracked exactly instead of being smeared
into one linear order.

Rules (catalogued in ``docs/analysis.md``):

=========  ================================================================
RTS160     branch arms join with different lock states
RTS161     lock still held on an exit path (leak)
RTS162     lock acquired while already held (self-deadlock)
RTS163     blocking wait/read while holding a lock
RTS164     declared wcet below the statically inferred execute demand
RTS165     static cross-task write-write race on a shared container
RTS166     unbounded waiter on a statically bounded signal supply
=========  ================================================================

Severity discipline: a rule only claims ERROR when the extraction is
*exact* (see :class:`~repro.analyze.effects.TaskEffects`) and the claim
is a proof, otherwise it degrades to WARNING.  Every ERROR here is
expected to be witnessable by :mod:`repro.verify` (see
``repro.verify.witness``); the corpus pipeline keeps per-rule accounting
of how often that succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from ..mcse.events import EventRelation
from ..mcse.shared import SharedVariable
from .diagnostics import Report, Severity, rule
from .effects import (
    Branch,
    Effect,
    Exit,
    Loop,
    Node,
    Seq,
    TaskEffects,
    cost_interval,
    count_interval,
    provably_terminating,
    task_effects,
)
from .lockgraph import TaskLockUsage

RTS160 = rule(
    "RTS160", "branch arms join with different lock states",
    explain="An if/else (or a conditionally-skipped statement) leaves a "
            "different set of shared variables held depending on which arm "
            "ran. Code after the join then runs with an unpredictable lock "
            "state: one path may double-acquire or leak where the other is "
            "fine. Restructure so every arm releases what it acquires, or "
            "hoist the acquisition above the branch.",
)
RTS161 = rule(
    "RTS161", "lock still held on an exit path",
    explain="Some path through the behavior reaches the end of the job (or "
            "an explicit return) with a shared variable still locked. The "
            "owner never releases it, so any other task that locks the same "
            "variable blocks forever once that path runs -- ERROR when such "
            "a victim exists, WARNING otherwise. Release on every path "
            "(including early returns).",
)
RTS162 = rule(
    "RTS162", "lock acquired while already held (self-deadlock)",
    explain="A path re-locks a shared variable the task already holds. The "
            "kernel's try_lock blocks while an owner exists, including the "
            "caller itself, so the task deadlocks against itself the first "
            "time the path executes. Typical cause: a lock inside a loop "
            "with the unlock outside, or a branch that skips the unlock.",
)
RTS163 = rule(
    "RTS163", "blocking wait/read while holding a lock",
    explain="The task blocks on an event wait (or an empty-queue read) while "
            "holding a shared variable. The lock stays held for the whole "
            "(unbounded) blocking time, inflating every other user's "
            "blocking term and inviting deadlock if the signaler needs the "
            "same lock. Release before blocking, or signal first.",
)
RTS164 = rule(
    "RTS164", "declared wcet below statically inferred execute demand",
    explain="The function declares a wcet smaller than the guaranteed "
            "lower bound of compute its own body requests per job (the sum "
            "of execute durations on the cheapest path). Schedulability "
            "analysis (RTS103/RTS105, RTA) then reasons from an impossible "
            "budget and may certify an unschedulable system. Raise the "
            "declared wcet to at least the static demand, or cut the body.",
)
RTS165 = rule(
    "RTS165", "static write-write race on a closure-shared container",
    explain="Two tasks that can run concurrently (different cores of a "
            "global/clustered domain, or distinct partitioned cores -- "
            "affinity and domain topology are taken into account) both "
            "mutate the same closure-captured Python container with no "
            "common lock held around the writes. This is the compile-time "
            "counterpart of the SAN303 runtime race sanitizer. Guard the "
            "container with one SharedVariable locked at every write, or "
            "pin both tasks to one core.",
)
RTS166 = rule(
    "RTS166", "unbounded waiter on a statically bounded signal supply",
    explain="A task provably waits on an event infinitely often, but the "
            "total number of signals of that event across the whole system "
            "is statically finite. After the supply is exhausted the waiter "
            "blocks forever -- a starvation deadlock. ERROR when every "
            "other task provably terminates (so nothing can unblock it), "
            "WARNING when some non-terminating task might still signal "
            "through a path the analysis cannot bound.",
)


@dataclass
class TaskFlow:
    """Everything flow analysis learned about one function."""

    function: Any
    effects: Optional[TaskEffects]
    usage: TaskLockUsage
    #: ``fn.lock_order`` was declared: nesting facts come from it, and
    #: path findings are not claimed against the (overridden) body.
    declared: bool = False
    #: (variable, line) pairs where a held lock is re-acquired.
    double_acquires: List[Tuple[str, Optional[int]]] = field(
        default_factory=list)
    #: (held variables, exit kind, line) for paths ending while holding.
    exit_held: List[Tuple[Tuple[str, ...], str, Optional[int]]] = field(
        default_factory=list)
    #: (relation, kind, held variables, line) blocking-while-holding.
    wait_holding: List[Tuple[str, str, Tuple[str, ...], Optional[int]]] = \
        field(default_factory=list)
    #: (line, lock-state summaries) at branch joins that disagree.
    divergences: List[Tuple[Optional[int], Tuple[str, ...]]] = field(
        default_factory=list)
    #: container variable -> locks held at *every* write to it.
    writes: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    @property
    def exact(self) -> bool:
        return (self.effects is not None and self.effects.exact
                and not self.declared)


LockState = FrozenSet[str]
_EMPTY: LockState = frozenset()

#: Cap on tracked lock-set valuations per point; beyond it the analysis
#: collapses to the union state (sound for leak/holding queries).
_MAX_STATES = 64


class _Outcome:
    """Lock states flowing out of a node, split by how control left it."""

    __slots__ = ("normal", "brk", "cont", "ret")

    def __init__(self,
                 normal: Set[LockState],
                 brk: Optional[Set[LockState]] = None,
                 cont: Optional[Set[LockState]] = None,
                 ret: Optional[Set[LockState]] = None) -> None:
        self.normal = normal
        self.brk = brk or set()
        self.cont = cont or set()
        self.ret = ret or set()


class _LockInterpreter:
    """Abstract interpretation of one effect tree in the lock-set domain."""

    def __init__(self, flow: TaskFlow, shared_vars: Set[str]) -> None:
        self.flow = flow
        self.shared = shared_vars
        self._nested_seen: Set[Tuple[str, str]] = set()
        self._double_seen: Set[Tuple[str, Optional[int]]] = set()
        self._wait_seen: Set[Tuple[str, str, Tuple[str, ...]]] = set()
        self._exit_seen: Set[Tuple[Tuple[str, ...], str]] = set()
        self._diverge_seen: Set[Optional[int]] = set()

    def run(self, root: Node) -> None:
        outcome = self._node(root, {_EMPTY})
        for states, kind in ((outcome.normal, "end of behavior"),
                             (outcome.ret, "return")):
            for state in states:
                if state:
                    self._record_exit(state, kind, None)

    # ------------------------------------------------------------------
    def _node(self, node: Node, states: Set[LockState]) -> _Outcome:
        if isinstance(node, Effect):
            return _Outcome(self._effect(node, states))
        if isinstance(node, Seq):
            return self._seq(node, states)
        if isinstance(node, Branch):
            return self._branch(node, states)
        if isinstance(node, Loop):
            return self._loop(node, states)
        if isinstance(node, Exit):
            if node.kind == "return":
                for state in states:
                    if state:
                        self._record_exit(state, "return", node.line)
                return _Outcome(set(), ret=set(states))
            if node.kind == "break":
                return _Outcome(set(), brk=set(states))
            return _Outcome(set(), cont=set(states))
        raise TypeError(f"not an effect node: {node!r}")

    def _seq(self, node: Seq, states: Set[LockState]) -> _Outcome:
        normal = set(states)
        brk: Set[LockState] = set()
        cont: Set[LockState] = set()
        ret: Set[LockState] = set()
        for item in node.items:
            if not normal:
                break
            out = self._node(item, normal)
            normal = out.normal
            brk |= out.brk
            cont |= out.cont
            ret |= out.ret
        return _Outcome(normal, brk, cont, ret)

    def _branch(self, node: Branch, states: Set[LockState]) -> _Outcome:
        arm_outs: List[Set[LockState]] = []
        brk: Set[LockState] = set()
        cont: Set[LockState] = set()
        ret: Set[LockState] = set()
        for arm in node.arms:
            out = self._node(arm, states)
            arm_outs.append(out.normal)
            brk |= out.brk
            cont |= out.cont
            ret |= out.ret
        live = [out for out in arm_outs if out]
        if len(live) > 1 and any(out != live[0] for out in live[1:]):
            self._record_divergence(node.line, live)
        merged: Set[LockState] = set()
        for out in arm_outs:
            merged |= out
        return _Outcome(self._widen(merged), brk, cont, ret)

    def _loop(self, node: Loop, states: Set[LockState]) -> _Outcome:
        current = set(states)
        brk: Set[LockState] = set()
        ret: Set[LockState] = set()
        # Fixpoint over iteration entry states: per-iteration lock drift
        # (the classic lock-inside/unlock-outside bug) shows up as a
        # growing state set and is reported by the effect handlers.
        for _ in range(_MAX_STATES):
            out = self._node(node.body, current)
            ret |= out.ret
            brk |= out.brk
            grown = current | out.normal | out.cont
            grown = self._widen(grown)
            if grown == current:
                break
            current = grown
        if node.infinite:
            normal = brk  # only a break leaves an infinite loop forward
        else:
            normal = current | brk
        return _Outcome(self._widen(normal), set(), set(), ret)

    def _widen(self, states: Set[LockState]) -> Set[LockState]:
        if len(states) <= _MAX_STATES:
            return states
        union: Set[str] = set()
        for state in states:
            union |= state
        return {frozenset(union)}

    # ------------------------------------------------------------------
    def _effect(self, effect: Effect,
                states: Set[LockState]) -> Set[LockState]:
        kind = effect.kind
        target = effect.target
        usage = self.flow.usage
        if kind == "lock" and target is not None:
            out: Set[LockState] = set()
            usage.acquires.add(target)
            for state in states:
                if target in state:
                    self._record_double(target, effect.line)
                    out.add(state)
                    continue
                for held in state:
                    self._record_nested(held, target)
                out.add(state | {target})
            return out
        if kind == "unlock" and target is not None:
            return {state - {target} for state in states}
        if kind in ("shared_read", "shared_write") and target is not None:
            # convenience ops: acquire + act + release, never held across
            usage.acquires.add(target)
            for state in states:
                if target in state:
                    self._record_double(target, effect.line)
                for held in state:
                    self._record_nested(held, target)
            return states
        if kind in ("wait", "read"):
            for state in states:
                if state:
                    self._record_wait(target or "?", kind, state,
                                      effect.line)
            return states
        if kind == "obj_write" and target is not None:
            must_hold: FrozenSet[str] = (
                frozenset.intersection(*states) if states else _EMPTY
            )
            previous = self.flow.writes.get(target)
            self.flow.writes[target] = (
                must_hold if previous is None else previous & must_hold
            )
            return states
        return states

    # ------------------------------------------------------------------
    def _record_nested(self, held: str, acquired: str) -> None:
        if held == acquired:
            return
        if held not in self.shared or acquired not in self.shared:
            return
        key = (held, acquired)
        if key not in self._nested_seen:
            self._nested_seen.add(key)
            self.flow.usage.nested.append(key)

    def _record_double(self, target: str, line: Optional[int]) -> None:
        key = (target, line)
        if key not in self._double_seen:
            self._double_seen.add(key)
            self.flow.double_acquires.append(key)

    def _record_wait(self, target: str, kind: str, state: LockState,
                     line: Optional[int]) -> None:
        held = tuple(sorted(state))
        key = (target, kind, held)
        if key not in self._wait_seen:
            self._wait_seen.add(key)
            self.flow.wait_holding.append((target, kind, held, line))

    def _record_exit(self, state: LockState, kind: str,
                     line: Optional[int]) -> None:
        held = tuple(sorted(state))
        key = (held, kind)
        if key not in self._exit_seen:
            self._exit_seen.add(key)
            self.flow.exit_held.append((held, kind, line))

    def _record_divergence(self, line: Optional[int],
                           arm_outs: List[Set[LockState]]) -> None:
        if line in self._diverge_seen:
            return
        self._diverge_seen.add(line)
        summaries = sorted(
            "{" + ", ".join(sorted(
                frozenset.union(*out) if out else _EMPTY)) + "}"
            for out in arm_outs
        )
        self.flow.divergences.append((line, tuple(summaries)))


# ---------------------------------------------------------------------------
# Per-function analysis
# ---------------------------------------------------------------------------
def analyze_task(fn: Any, shared_vars: Optional[Set[str]] = None) -> TaskFlow:
    """Run flow analysis over one function's behavior."""
    usage = TaskLockUsage(fn)
    declared = getattr(fn, "lock_order", None)
    if declared:
        chain = list(declared)
        usage.acquires.update(chain)
        for index, acquired in enumerate(chain[1:], start=1):
            for holding in chain[:index]:
                usage.nested.append((holding, acquired))
        return TaskFlow(function=fn, effects=task_effects(fn),
                        usage=usage, declared=True)
    effects = task_effects(fn)
    flow = TaskFlow(function=fn, effects=effects, usage=usage)
    if effects is not None:
        shared = shared_vars if shared_vars is not None else \
            _behavior_shared_names(effects)
        _LockInterpreter(flow, shared).run(effects.root)
    return flow


def _behavior_shared_names(effects: TaskEffects) -> Set[str]:
    """Lock targets named in the tree (fallback when no system given)."""
    names: Set[str] = set()
    stack: List[Node] = [effects.root]
    while stack:
        node = stack.pop()
        if isinstance(node, Effect):
            if node.kind in ("lock", "unlock", "shared_read",
                            "shared_write") and node.target:
                names.add(node.target)
        elif isinstance(node, Seq):
            stack.extend(node.items)
        elif isinstance(node, Branch):
            stack.extend(node.arms)
        elif isinstance(node, Loop):
            stack.append(node.body)
    return names


def analyze_flows(system: Any) -> Dict[str, TaskFlow]:
    """Flow-analyze every function of a built system."""
    shared = {
        name for name, relation in system.relations.items()
        if isinstance(relation, SharedVariable)
    }
    return {
        name: analyze_task(fn, shared)
        for name, fn in system.functions.items()
    }


# ---------------------------------------------------------------------------
# System-level rules
# ---------------------------------------------------------------------------
def check_flow(report: Report, system: Any,
               flows: Dict[str, TaskFlow]) -> None:
    """Report every RTS16x finding of ``flows`` into ``report``."""
    acquirers: Dict[str, Set[str]] = {}
    for name, flow in flows.items():
        for shared in flow.usage.acquires:
            acquirers.setdefault(shared, set()).add(name)
    for name in sorted(flows):
        flow = flows[name]
        _check_paths(report, name, flow, acquirers)
        _check_wcet(report, name, flow)
    _check_races(report, system, flows)
    _check_starvation(report, system, flows)


def _emit(report: Report, flow: TaskFlow, rule_id: str, severity: Severity,
          location: str, message: str, hint: Optional[str],
          line: Optional[int]) -> None:
    """``report.add`` honouring ``# pyrtos: disable=`` behavior pragmas."""
    effects = flow.effects
    if effects is not None and effects.suppresses(rule_id, line):
        diagnostic = report.add(rule_id, severity, location, message, hint,
                                line)
        if diagnostic is not None:
            report.diagnostics.remove(diagnostic)
            report.suppressed.append(diagnostic)
        return
    report.add(rule_id, severity, location, message, hint, line)


def _check_paths(report: Report, name: str, flow: TaskFlow,
                 acquirers: Dict[str, Set[str]]) -> None:
    location = f"function {name}"
    for line, summaries in flow.divergences:
        _emit(
            report, flow, RTS160, report.WARNING, location,
            "branch arms join with different lock states: "
            + " vs ".join(summaries),
            "release in every arm, or acquire before the branch",
            line,
        )
    for target, line in flow.double_acquires:
        severity = report.ERROR if flow.exact else report.WARNING
        _emit(
            report, flow, RTS162, severity, location,
            f"acquires shared {target!r} on a path where it is already "
            "held; lock() blocks while owned, so the task deadlocks "
            "against itself",
            "release before re-acquiring, or restructure the loop so "
            "lock/unlock pair up on every iteration",
            line,
        )
    for held, kind, line in flow.exit_held:
        victims = sorted(
            other
            for shared in held
            for other in acquirers.get(shared, ())
            if other != name
        )
        severity = (
            report.ERROR if flow.exact and victims else report.WARNING
        )
        held_text = ", ".join(repr(h) for h in held)
        message = (
            f"path reaches {kind} still holding shared {held_text}; "
            "the lock is never released"
        )
        if victims:
            message += (
                f" and task(s) {', '.join(dict.fromkeys(victims))} "
                "block forever on the next acquire"
            )
        _emit(
            report, flow, RTS161, severity, location, message,
            "unlock on every exit path (including early returns)",
            line,
        )
    for target, kind, held, line in flow.wait_holding:
        held_text = ", ".join(repr(h) for h in held)
        verb = "waits on event" if kind == "wait" else "reads relation"
        _emit(
            report, flow, RTS163, report.WARNING, location,
            f"{verb} {target!r} while holding shared {held_text}; the "
            "lock stays held for the whole blocking time",
            "release the lock before blocking",
            line,
        )


def _job_body(root: Seq) -> Optional[Node]:
    """The per-job effect subtree for demand inference.

    Periodic shapes are ``Seq([setup..., Loop(infinite, body)])`` -- the
    loop body is one job.  A body with no unbounded loops is one job
    itself.  Anything else (unknown-bound loops) is not claimable.
    """
    loops = [item for item in root.items if isinstance(item, Loop)]
    if (len(loops) == 1 and loops[0].infinite
            and loops[0] is root.items[-1]
            and provably_terminating(Seq(root.items[:-1]))):
        return loops[0].body
    if provably_terminating(root):
        return root
    return None


def _check_wcet(report: Report, name: str, flow: TaskFlow) -> None:
    """RTS164: declared wcet below the static per-job demand floor."""
    fn = flow.function
    declared = getattr(fn, "wcet", None)
    if (isinstance(declared, bool) or not isinstance(declared, int)
            or flow.effects is None or flow.declared):
        return
    job = _job_body(flow.effects.root)
    if job is None:
        return
    demand_lo, demand_hi = cost_interval(job)
    if demand_lo is None or demand_lo <= 0 or declared >= demand_lo:
        return
    hi_text = "unbounded" if demand_hi is None else str(demand_hi)
    _emit(
        report, flow, RTS164, report.WARNING, f"function {name}",
        f"declared wcet {declared} is below the statically inferred "
        f"execute demand interval [{demand_lo}, {hi_text}] per job; "
        "schedulability analysis would reason from an impossible budget",
        f"declare wcet >= {demand_lo}, or reduce the job's execute time",
        None,
    )


# ---------------------------------------------------------------------------
# RTS165: static cross-task container races (SMP/affinity-aware)
# ---------------------------------------------------------------------------
def _cores(fn: Any) -> Optional[FrozenSet[str]]:
    """Core names ``fn`` may execute on, or ``None`` when unmapped."""
    task = getattr(fn, "task", None)
    if task is None:
        return None
    processor = task.processor
    domain = getattr(processor, "domain", None)
    if domain is None or domain.kind == "partitioned":
        cores = {processor.name}
    elif domain.kind == "clustered":
        cluster = getattr(domain, "_cluster_index", {}).get(
            processor.name, domain.members)
        cores = {member.name for member in cluster}
    else:
        cores = {member.name for member in domain.members}
    affinity = getattr(fn, "affinity", None)
    if affinity:
        cores &= set(affinity)
    return frozenset(cores)


def _can_overlap(cores_a: FrozenSet[str],
                 cores_b: FrozenSet[str]) -> bool:
    """Whether two placements admit truly parallel execution."""
    if not cores_a or not cores_b:
        return False  # nowhere to run at all (RTS152 reports that)
    if cores_a == cores_b and len(cores_a) == 1:
        return False  # serialized on one core: interleaved, not parallel
    return True


def _check_races(report: Report, system: Any,
                 flows: Dict[str, TaskFlow]) -> None:
    by_object: Dict[int, List[Tuple[str, str, FrozenSet[str]]]] = {}
    for name in sorted(flows):
        flow = flows[name]
        effects = flow.effects
        if effects is None or not flow.exact:
            continue
        for varname, must_hold in flow.writes.items():
            obj_id = effects.objects.get(varname)
            if obj_id is None:
                continue
            by_object.setdefault(obj_id, []).append(
                (name, varname, must_hold))
    for writers in by_object.values():
        names = sorted({name for name, _, _ in writers})
        if len(names) < 2:
            continue
        varname = writers[0][1]
        placements = {name: _cores(flows[name].function) for name in names}
        parallel_pairs = [
            (a, b)
            for index, a in enumerate(names)
            for b in names[index + 1:]
            if placements[a] is not None and placements[b] is not None
            and _can_overlap(placements[a], placements[b])
        ]
        if not parallel_pairs:
            continue
        common = frozenset.intersection(
            *(must_hold for _, _, must_hold in writers))
        if common:
            continue  # every write site holds a shared lock in common
        pair_text = ", ".join(f"{a}/{b}" for a, b in parallel_pairs)
        flow = flows[names[0]]
        _emit(
            report, flow, RTS165, report.ERROR,
            f"object {varname!r}",
            f"tasks {', '.join(names)} all mutate the closure-shared "
            f"container {varname!r} with no common lock held, and the "
            f"pair(s) {pair_text} can run on different cores "
            "concurrently: a write-write race is reachable (runtime "
            "counterpart: SAN303)",
            "hold one SharedVariable around every mutation, or pin the "
            "tasks to a single core",
            None,
        )


# ---------------------------------------------------------------------------
# RTS166: starvation deadlock on a bounded signal supply
# ---------------------------------------------------------------------------
def _check_starvation(report: Report, system: Any,
                      flows: Dict[str, TaskFlow]) -> None:
    effect_roots: Dict[str, Node] = {}
    for name, flow in flows.items():
        effects = flow.effects
        if effects is None or not effects.exact:
            return  # one opaque function may signal anything: stay silent
        effect_roots[name] = effects.root

    events = {
        name: relation
        for name, relation in system.relations.items()
        if isinstance(relation, EventRelation)
    }
    starved: Dict[str, Tuple[List[str], int]] = {}
    starved_waiters: Set[str] = set()
    for event_name in sorted(events):
        supply_hi: Optional[int] = events[event_name].pending()
        for root in effect_roots.values():
            _, signals_hi = count_interval(root, "signal", event_name)
            if signals_hi is None:
                supply_hi = None
                break
            assert supply_hi is not None
            supply_hi += signals_hi
        if supply_hi is None:
            continue
        waiters = [
            name for name, root in sorted(effect_roots.items())
            if count_interval(root, "wait", event_name)[0] is None
        ]
        if not waiters:
            continue
        starved[event_name] = (waiters, supply_hi)
        starved_waiters.update(waiters)

    if not starved:
        return
    # ERROR only when nothing can run forever except the starved waiters
    # themselves: then the system provably quiesces with them blocked.
    quiesces = all(
        name in starved_waiters or provably_terminating(root)
        for name, root in effect_roots.items()
    )
    for event_name in sorted(starved):
        waiters, supply_hi = starved[event_name]
        severity = Severity.ERROR if quiesces else Severity.WARNING
        for waiter in waiters:
            _emit(
                report, flows[waiter], RTS166, severity,
                f"function {waiter}",
                f"waits on event {event_name!r} unboundedly often, but "
                f"the whole system signals it at most {supply_hi} "
                "time(s): the task blocks forever once the supply is "
                "exhausted",
                "signal the event from a recurring task, or bound the "
                "waiter's loop",
                None,
            )


__all__ = [
    "TaskFlow",
    "analyze_flows",
    "analyze_task",
    "check_flow",
]
