"""The model linter: static rules over a constructed system.

``analyze_system(system)`` walks the processor/task/relation graph of a
built (but not yet run) model and reports structured diagnostics in
milliseconds -- the point is to catch RTOS-level design mistakes before
a possibly long simulation, or before a million-run campaign amplifies
them.

Rule catalogue (see ``docs/analysis.md`` for the full reference):

=========  ================================================================
RTS101     duplicate priorities under a strict priority policy
RTS102     invalid (non-integer) task priority
RTS103     periodic load exceeds processor capacity (unschedulable)
RTS104     load above the Liu & Layland RM bound (feasibility not implied)
RTS105     RTA worst-case response time exceeds a deadline
RTS110     potential deadlock cycle in the lock acquisition graph
RTS111     priority-inversion hazard on a plain shared variable
RTS112     priority-ceiling below the priority of a user task
RTS120     overhead formula fails or returns an invalid duration
RTS130     task can never become ready (waits on a never-signaled event)
RTS140     partition window cannot fit its tasks' periodic demand
RTS141     task's partition label matches no window (never eligible)
=========  ================================================================

The RTS15x multicore-domain rules live in :mod:`repro.analyze.multicore`,
the RTS16x behavior-flow rules (path-sensitive lock-set analysis,
static WCET cross-checks, static races, starvation) in
:mod:`repro.analyze.flow`, and the RTS18x blocking-aware schedulability
rules (critical-section blocking terms, PCP ceilings, Audsley priority
assignment) in :mod:`repro.analyze.blocking` /
:mod:`repro.analyze.assign`; all report through the same pipeline here.

Suppression: pass ``suppress={"RTS111", ...}`` or set a
``lint_suppress`` iterable of rule ids on the system, a function, a
relation or a processor (object-level suppressions apply to the whole
report).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..mcse.shared import SharedVariable
from ..rtos.overheads import formula_arity_error
from ..rtos.partitions import TimePartitionPolicy
from ..rtos.policies import PriorityPreemptivePolicy, PriorityRoundRobinPolicy
from ..rtos.services import CeilingSharedVariable, InheritanceSharedVariable
from .diagnostics import (
    Report,
    merge_suppressions,
    object_suppressions,
    rule,
)
from .assign import check_assignment
from .blocking import check_blocking
from .flow import analyze_flows, check_flow
from .lockgraph import find_cycles
from .personality import check_personality
from .multicore import check_domain
from .schedulability import check_schedulability, periodic_profile

RTS101 = rule("RTS101", "duplicate priorities under a strict priority policy")
RTS102 = rule("RTS102", "invalid (non-integer) task priority")
RTS103 = rule("RTS103", "periodic load exceeds processor capacity")
RTS104 = rule("RTS104", "load above the Liu & Layland bound")
RTS105 = rule("RTS105", "RTA response time exceeds a deadline")
RTS110 = rule("RTS110", "potential deadlock cycle among shared variables")
RTS111 = rule("RTS111", "priority-inversion hazard on a plain shared variable")
RTS112 = rule("RTS112", "priority ceiling below a user task's priority")
RTS120 = rule("RTS120", "overhead formula fails or returns invalid duration")
RTS130 = rule("RTS130", "task can never become ready")
RTS140 = rule("RTS140", "partition window cannot fit its tasks' demand")
RTS141 = rule("RTS141", "partition label matches no window")
RTS150 = rule("RTS150", "domain load exceeds total multicore capacity")
RTS151 = rule("RTS151", "load above the global EDF/RM multicore bound")
RTS152 = rule("RTS152", "affinity mask excludes every cluster core")
RTS153 = rule("RTS153", "no partitioned assignment found by first-fit")


def analyze_system(system: Any, *, suppress: Iterable[str] = ()) -> Report:
    """Lint a built :class:`~repro.mcse.model.System`; returns a Report."""
    suppressions = merge_suppressions(
        suppress,
        object_suppressions(system),
        *(object_suppressions(obj) for obj in system.functions.values()),
        *(object_suppressions(obj) for obj in system.relations.values()),
        *(object_suppressions(obj) for obj in system.processors.values()),
        *(object_suppressions(obj)
          for obj in getattr(system, "domains", {}).values()),
    )
    report = Report(suppress=suppressions)
    flows = analyze_flows(system)
    usages = {name: flow.usage for name, flow in flows.items()}
    for processor in system.processors.values():
        _check_priorities(report, processor)
        _check_overheads(report, processor)
        # members of a global/clustered domain pool their capacity, so
        # the per-core rules (which assume tasks are pinned to their
        # home core) would mis-report there; the RTS15x rules take over
        domain = getattr(processor, "domain", None)
        if domain is None or domain.kind == "partitioned":
            check_schedulability(
                report, processor, location=_cpu_loc(processor)
            )
        _check_partitions(report, processor)
    for domain in getattr(system, "domains", {}).values():
        check_domain(report, domain)
    _check_locks(report, system, usages)
    _check_reachability(report, system, usages)
    check_flow(report, system, flows)
    blocking_model = check_blocking(report, system, flows)
    check_assignment(report, system, flows, blocking_model)
    check_personality(report, system)
    return report


def analyze_processors(processors: Iterable[Any], *,
                       suppress: Iterable[str] = ()) -> Report:
    """Lint bare processors (no :class:`System` facade around them)."""
    suppressions = merge_suppressions(
        suppress, *(object_suppressions(cpu) for cpu in processors)
    )
    report = Report(suppress=suppressions)
    for processor in processors:
        _check_priorities(report, processor)
        _check_overheads(report, processor)
        check_schedulability(report, processor, location=_cpu_loc(processor))
        _check_partitions(report, processor)
    return report


def _cpu_loc(processor: Any) -> str:
    return f"processor {processor.name}"


# ---------------------------------------------------------------------------
# Priorities (RTS101 / RTS102)
# ---------------------------------------------------------------------------
def _check_priorities(report: Report, processor: Any) -> None:
    policy = processor.policy
    strict_priority = (
        isinstance(policy, PriorityPreemptivePolicy)
        and not isinstance(policy, PriorityRoundRobinPolicy)
    ) or isinstance(policy, TimePartitionPolicy)
    groups: Dict[object, List[str]] = {}
    for task in processor.tasks:
        priority = task.base_priority
        if isinstance(priority, bool) or not isinstance(priority, int):
            report.add(
                RTS102,
                report.ERROR,
                f"{_cpu_loc(processor)}/{task.name}",
                f"priority {priority!r} is not an integer",
                hint="priorities are plain ints; larger = more urgent",
            )
            continue
        if strict_priority:
            if isinstance(policy, TimePartitionPolicy):
                key = (getattr(task.function, "partition", None), priority)
            else:
                key = priority
            groups.setdefault(key, []).append(task.name)
    for key, names in sorted(groups.items(), key=lambda kv: str(kv[0])):
        if len(names) < 2:
            continue
        priority = key[1] if isinstance(key, tuple) else key
        report.add(
            RTS101,
            report.WARNING,
            f"{_cpu_loc(processor)}",
            f"tasks {', '.join(sorted(names))} share priority {priority} "
            f"under the strict-priority policy {policy.name!r}; ties fall "
            "back to FIFO arrival order",
            hint="assign distinct priorities, or use the "
                 "'priority_round_robin' policy if sharing is intended",
        )


# ---------------------------------------------------------------------------
# Overheads (RTS120)
# ---------------------------------------------------------------------------
def _check_overheads(report: Report, processor: Any) -> None:
    overheads = processor.overheads
    for component in ("scheduling", "context_load", "context_save"):
        spec = getattr(overheads, f"_{component}", None)
        if callable(spec):
            # Same arity contract the Overheads constructor and the
            # verifier's invariants enforce -- one shared helper so the
            # probe can never disagree with the runtime.
            arity_error = formula_arity_error(spec, "processor")
            if arity_error is not None:
                report.add(
                    RTS120,
                    report.ERROR,
                    f"{_cpu_loc(processor)}/overheads.{component}",
                    f"overhead formula {arity_error}",
                    hint="formulas must accept the processor and return a "
                         "non-negative int duration for every reachable "
                         "state",
                )
                continue
        try:
            getattr(overheads, component)(processor)
        except Exception as exc:
            report.add(
                RTS120,
                report.ERROR,
                f"{_cpu_loc(processor)}/overheads.{component}",
                f"overhead formula failed pre-simulation probe: {exc}",
                hint="formulas must accept the processor and return a "
                     "non-negative int duration for every reachable state",
            )


# ---------------------------------------------------------------------------
# Lock graph (RTS110 / RTS111 / RTS112)
# ---------------------------------------------------------------------------
def _check_locks(report: Report, system: Any,
                 usages: Sequence[Any]) -> None:
    shared_vars = {
        name: relation
        for name, relation in system.relations.items()
        if isinstance(relation, SharedVariable)
    }
    if not shared_vars:
        return

    # held -> acquired edges, with the tasks inducing each edge
    edges: Dict[str, Set[str]] = {}
    edge_tasks: Dict[tuple, Set[str]] = {}
    users: Dict[str, List] = {name: [] for name in shared_vars}
    for fn_name, usage in usages.items():
        fn = usage.function
        for shared in usage.acquires:
            if shared in users:
                users[shared].append(fn)
        for held, acquired in usage.nested:
            if held in shared_vars and acquired in shared_vars:
                edges.setdefault(held, set()).add(acquired)
                edge_tasks.setdefault((held, acquired), set()).add(fn_name)

    for cycle in find_cycles(edges):
        participants = sorted(
            itertools.chain.from_iterable(
                edge_tasks.get(pair, ())
                for pair in zip(cycle, cycle[1:])
            )
        )
        if len(set(participants)) < 2:
            continue  # one task re-locking its own chain blocks, but
            # cannot deadlock another party; the runtime catches it
        if all(
            isinstance(shared_vars[name], CeilingSharedVariable)
            for name in cycle[:-1]
        ):
            continue  # the immediate ceiling protocol prevents deadlock
        report.add(
            RTS110,
            report.ERROR,
            "shared " + " -> ".join(cycle),
            f"tasks {', '.join(sorted(set(participants)))} acquire these "
            "variables in conflicting nested orders; a deadlock is "
            "reachable",
            hint="impose a global lock order, or protect the cycle with "
                 "CeilingSharedVariable",
        )

    for name, relation in sorted(shared_vars.items()):
        if isinstance(relation, (InheritanceSharedVariable,
                                 CeilingSharedVariable)):
            _check_ceiling(report, relation, users.get(name, ()))
            continue
        _check_inversion(report, relation, users.get(name, ()))


def _mapped_priority(fn: Any) -> Optional[int]:
    task = getattr(fn, "task", None)
    if task is None:
        return None
    priority = task.base_priority
    if isinstance(priority, bool) or not isinstance(priority, int):
        return None
    return priority


def _check_inversion(report: Report, relation: Any,
                     users: Sequence[Any]) -> None:
    """RTS111: plain mutex shared across priorities with middle tasks."""
    by_cpu: Dict[object, List] = {}
    for fn in users:
        task = getattr(fn, "task", None)
        if task is not None:
            by_cpu.setdefault(task.processor, []).append(fn)
    for processor, fns in by_cpu.items():
        priorities = sorted(
            p for p in (_mapped_priority(fn) for fn in fns) if p is not None
        )
        if len(priorities) < 2:
            continue
        low, high = priorities[0], priorities[-1]
        if low == high:
            continue
        middle = [
            task.name
            for task in processor.tasks
            if task.function not in fns
            and isinstance(task.base_priority, int)
            and not isinstance(task.base_priority, bool)
            and low < task.base_priority < high
        ]
        if not middle:
            continue
        report.add(
            RTS111,
            report.WARNING,
            f"shared {relation.name}",
            f"locked by tasks at priorities {low}..{high} on "
            f"{processor.name} while {', '.join(sorted(middle))} run(s) "
            "in between: unbounded priority inversion is possible",
            hint="use InheritanceSharedVariable or CeilingSharedVariable, "
                 "or mask preemption around the critical section",
        )


def _check_ceiling(report: Report, relation: Any,
                   users: Sequence[Any]) -> None:
    """RTS112: a declared ceiling below the priority of a user task."""
    ceiling = getattr(relation, "ceiling", None)
    if ceiling is None:
        return
    for fn in users:
        priority = _mapped_priority(fn)
        if priority is not None and priority > ceiling:
            report.add(
                RTS112,
                report.ERROR,
                f"shared {relation.name}",
                f"ceiling {ceiling} is below the priority {priority} of "
                f"user task {fn.name!r}; the protocol cannot prevent "
                "inversion for that task",
                hint="set the ceiling to at least the highest user "
                     "priority",
            )


# ---------------------------------------------------------------------------
# Reachability (RTS130) and partitions (RTS140 / RTS141)
# ---------------------------------------------------------------------------
def _check_reachability(report: Report, system: Any,
                        usages: Sequence[Any]) -> None:
    """RTS130: a task whose first action waits on a dead event.

    Only claimed when the whole system is statically visible: every
    function either has script ops or a parseable behavior source.  Any
    opaque function may signal anything, so the rule stays silent then.
    """
    from ..mcse.events import EventRelation
    from .sourcescan import visible_signals

    signalers = visible_signals(system)
    if signalers is None:
        return
    for name, fn in system.functions.items():
        ops = getattr(fn, "script_ops", None)
        if not ops:
            continue
        first = _first_op(ops)
        if first is None or first[0] != "wait":
            continue
        event_name = first[1][0]
        relation = system.relations.get(event_name)
        if not isinstance(relation, EventRelation):
            continue
        if relation.pending() > 0:
            continue  # a memorized occurrence satisfies the first wait
        if event_name not in signalers:
            report.add(
                RTS130,
                report.ERROR,
                f"function {name}",
                f"first waits on event {event_name!r}, which no function "
                "ever signals: the task can never become ready",
                hint="signal the event from some function, or drop the "
                     "dead wait",
            )


def _first_op(ops: Sequence[Any]) -> Optional[Tuple[str, List[Any]]]:
    for op_name, args in ops:
        if op_name == "loop":
            inner = _first_op(args[1])
            if inner is not None:
                return inner
            continue
        return op_name, args
    return None


def _check_partitions(report: Report, processor: Any) -> None:
    policy = processor.policy
    if not isinstance(policy, TimePartitionPolicy):
        return
    windows = dict(policy.windows)
    demand: Dict[str, int] = {name: 0 for name in windows}
    for task in processor.tasks:
        partition = getattr(task.function, "partition", None)
        if partition is None:
            continue  # background tasks are eligible everywhere
        if partition not in windows:
            report.add(
                RTS141,
                report.ERROR,
                f"{_cpu_loc(processor)}/{task.name}",
                f"partition label {partition!r} matches no window of the "
                f"time-partition policy (windows: "
                f"{', '.join(sorted(windows))}); the task is never "
                "eligible to run",
                hint="add a window for the partition or fix the label",
            )
            continue
        profile = periodic_profile(task)
        if profile is None:
            continue
        # demand inside one major frame, charged to the partition window
        jobs = policy.major_frame / profile.period
        demand[partition] += round(profile.wcet * jobs)
    for partition, window in windows.items():
        if demand[partition] > window:
            from ..kernel.time import format_time

            report.add(
                RTS140,
                report.ERROR,
                f"{_cpu_loc(processor)}/partition {partition}",
                f"periodic demand {format_time(demand[partition])} per "
                f"major frame exceeds the partition's window "
                f"{format_time(window)}; its tasks cannot meet their "
                "periods",
                hint="widen the window, lengthen task periods, or move "
                     "tasks to another partition",
            )
