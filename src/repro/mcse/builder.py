"""Declarative system specifications -> executable models.

The paper's tool chain captures a model graphically and "automatically
provides an executable model including functions and processors in a few
seconds" through a SystemC code generator [8].  This module is that code
generator's role in Python: a plain-data *specification* (dict, possibly
loaded from JSON) is elaborated into a ready-to-run :class:`System`.

Specification format::

    spec = {
        "name": "demo",
        "relations": [
            {"kind": "event", "name": "Clk", "policy": "boolean"},
            {"kind": "queue", "name": "Q1", "capacity": 4},
            {"kind": "shared", "name": "SharedVar_1", "initial": 0},
        ],
        "processors": [
            {"name": "Processor", "engine": "procedural",
             "policy": "priority_preemptive",
             "scheduling_duration": "5us",
             "context_load_duration": "5us",
             "context_save_duration": "5us"},
        ],
        "functions": [
            {"name": "Function_1", "priority": 5, "processor": "Processor",
             "script": [
                 ["loop", None, [
                     ["wait", "Clk"],
                     ["execute", "10us"],
                     ["signal", "Event_1"],
                 ]],
             ]},
        ],
    }
    system = build_system(spec)

Behaviors are either a Python callable (``"behavior": fn``) or a
``"script"``: a small interpreted op list (the shape a graphical capture
tool would emit).  Supported ops:

=============================  =============================================
``["execute", dur]``           consume CPU time; ``dur`` may be an
                               interval ``"lo..hi"`` (or ``[lo, hi]``)
                               whose lower bound is the nominal time and
                               whose span the model checker explores
``["delay", dur]``             wall-clock delay (no CPU)
``["delay_until", period]``    fixed-cadence release: delay to the next
                               multiple of ``period`` from the first call
``["wait", event, tmo?]``      wait on an event relation
``["signal", event]``          signal an event relation
``["read", queue, tmo?]``      read a message (value discarded)
``["write", queue, value, tmo?]`` write a message
``["lock", shared]``           lock a shared variable
``["unlock", shared]``         unlock it
``["read_shared", shared]``    lock+read+unlock convenience
``["write_shared", shared, v]`` lock+write+unlock convenience
``["set_flag", flags, bits]``  OR bits into an eventflag relation
``["clr_flag", flags, mask]``  AND an eventflag pattern with a mask
``["wait_flag", flags, bits, mode, tmo?]`` wait for a flag pattern
                               (``mode``: "and"/"or")
``["loop", n, body]``          repeat ``body`` n times (``None`` = forever)
``["set_preemptive", bool]``   toggle the mapped processor's mode
=============================  =============================================

Durations accept anything :func:`repro.kernel.time.parse_time` does;
the optional ``tmo?`` timeouts additionally accept ``None`` /
``"forever"`` (block indefinitely) and ``0`` (non-blocking poll).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List

from ..errors import BuildError
from ..kernel.time import format_time, parse_time
from .function import Function
from .model import System


#: The only keys a top-level spec may carry.  Unknown keys are a hard
#: error: a silently dropped key means the built model is *not* the
#: model the spec author described (a typo'd ``"functoins"`` list would
#: simulate an empty system and "pass").
_TOP_LEVEL_KEYS = frozenset(
    ("name", "relations", "processors", "scheduling_domains", "functions",
     "lint_suppress", "personality", "config")
)


def build_system(spec: Dict, sim=None) -> System:
    """Elaborate ``spec`` into a ready-to-run :class:`System`.

    A spec carrying a ``"personality"`` key is first lowered by that
    kernel personality (:mod:`repro.personality`) into the generic
    format, then elaborated exactly like a hand-written generic spec.
    """
    if not isinstance(spec, dict):
        raise BuildError(f"spec must be a dict, got {type(spec).__name__}")
    if spec.get("personality"):
        from ..personality import lower_spec  # local import avoids a cycle

        lowering = lower_spec(spec)
        system = build_system(lowering.spec, sim=sim)
        system.personality = lowering.personality
        for fn_name, ops in lowering.api_ops.items():
            if fn_name in system.functions:
                system.functions[fn_name].personality_ops = ops
        return system
    if "config" in spec:
        raise BuildError(
            "spec key 'config' is only meaningful together with "
            "'personality'"
        )
    unknown = set(spec) - _TOP_LEVEL_KEYS
    if unknown:
        raise BuildError(
            f"unknown spec keys {sorted(unknown)}; "
            f"expected a subset of {sorted(_TOP_LEVEL_KEYS)}"
        )
    system = System(spec.get("name", "system"), sim=sim)
    if "lint_suppress" in spec:
        system.lint_suppress = _parse_lint_suppress(
            "spec", spec["lint_suppress"]
        )

    for rel_spec in spec.get("relations", ()):
        _build_relation(system, dict(rel_spec))

    for cpu_spec in spec.get("processors", ()):
        _build_processor(system, dict(cpu_spec))

    for dom_spec in spec.get("scheduling_domains", ()):
        _build_domain(system, dict(dom_spec))

    for fn_spec in spec.get("functions", ()):
        _build_function(system, dict(fn_spec))

    return system


def _elaborate(where: str, call, *args, accepted=None, **kwargs):
    """Invoke a model factory, turning bad kwargs into a BuildError.

    Specs are plain data, so an unexpected key surfaces as the factory's
    ``TypeError``; re-raise it as a :class:`BuildError` naming the spec
    entry instead of leaking a Python signature mismatch.  ``accepted``
    lists the keys this spec level takes, so a typo'd key fails with the
    valid vocabulary in hand, not just the rejected word.
    """
    try:
        return call(*args, **kwargs)
    except TypeError as exc:
        hint = f"; accepted keys: {sorted(accepted)}" if accepted else ""
        raise BuildError(f"{where}: {exc}{hint}") from None


#: Accepted spec keys per relation kind (satellite of the unknown-key
#: hard-reject: the rejection message teaches the valid vocabulary).
_RELATION_KEYS = {
    "event": ("kind", "name", "policy", "wake_order", "max_count",
              "initial"),
    "queue": ("kind", "name", "capacity", "wake_order"),
    "shared": ("kind", "name", "initial", "wake_order", "protocol",
               "ceiling"),
    "flags": ("kind", "name", "initial", "wake_order", "clear_on_wake"),
}


def _build_relation(system: System, spec: Dict) -> None:
    kind = spec.pop("kind", None)
    name = spec.pop("name", None)
    if not name:
        raise BuildError(f"relation spec missing a name: {spec!r}")
    where = f"relation {name!r}"
    accepted = _RELATION_KEYS.get(kind)
    if kind == "event":
        _elaborate(where, system.event, name,
                   policy=spec.pop("policy", "fugitive"),
                   accepted=accepted, **spec)
    elif kind == "queue":
        _elaborate(where, system.queue, name,
                   capacity=spec.pop("capacity", 8),
                   accepted=accepted, **spec)
    elif kind == "shared":
        _elaborate(where, system.shared, name,
                   initial=spec.pop("initial", None),
                   accepted=accepted, **spec)
    elif kind == "flags":
        _elaborate(where, system.flags, name,
                   initial=spec.pop("initial", 0),
                   accepted=accepted, **spec)
    else:
        raise BuildError(
            f"unknown relation kind {kind!r} for {name!r}; pick one of "
            f"{sorted(_RELATION_KEYS)}"
        )


_DURATION_KEYS = (
    "scheduling_duration",
    "context_load_duration",
    "context_save_duration",
    "time_slice",
)


#: The declarative processor surface.  The factory additionally
#: forwards policy-specific keywords (e.g. ``windows`` for
#: time_partition), so this is a hint list for error messages, not a
#: hard whitelist.
_PROCESSOR_KEYS = (
    "name", "engine", "policy", "speed", "preemptive",
    "scheduling_duration", "context_load_duration",
    "context_save_duration", "time_slice", "windows",
)


def _build_processor(system: System, spec: Dict) -> None:
    name = spec.pop("name", None)
    if not name:
        raise BuildError(f"processor spec missing a name: {spec!r}")
    for key in _DURATION_KEYS:
        if key in spec:
            spec[key] = parse_time(spec[key])
    if "windows" in spec:
        spec["windows"] = _parse_windows(name, spec["windows"])
    _elaborate(f"processor {name!r}", system.processor, name,
               accepted=_PROCESSOR_KEYS, **spec)


#: The declarative surface of a scheduling-domain entry.  Kept strict --
#: a typo'd key must fail naming the key, not surface as a policy
#: constructor signature mismatch.
_DOMAIN_KEYS = frozenset(
    ("kind", "policy", "processors", "migration_cost", "clusters")
)


def _build_domain(system: System, spec: Dict) -> None:
    """Elaborate one ``scheduling_domains`` entry (see :mod:`repro.smp`).

    Shape::

        {"name": "dom0", "kind": "global", "policy": "global_edf",
         "processors": ["cpu0", "cpu1"], "migration_cost": "10us",
         "clusters": [["cpu0"], ["cpu1"]]}   # clustered kind only

    Unknown keys hard-reject through the domain factory, like every
    other spec entry.
    """
    name = spec.pop("name", None)
    if not name:
        raise BuildError(f"scheduling domain spec missing a name: {spec!r}")
    where = f"scheduling domain {name!r}"
    unknown = set(spec) - _DOMAIN_KEYS
    if unknown:
        raise BuildError(
            f"{where}: unknown keys {sorted(unknown)}; expected a subset "
            f"of {sorted(_DOMAIN_KEYS | {'name'})}"
        )
    processors = spec.pop("processors", None)
    if not isinstance(processors, (list, tuple)) or not processors:
        raise BuildError(f"{where} needs a non-empty processors list")
    members = [_domain_processor(system, where, entry) for entry in processors]
    if "migration_cost" in spec:
        spec["migration_cost"] = parse_time(spec["migration_cost"])
    if "clusters" in spec:
        clusters = spec["clusters"]
        if not isinstance(clusters, (list, tuple)):
            raise BuildError(
                f"{where}: clusters must be a list of processor-name lists"
            )
        spec["clusters"] = [
            [_domain_processor(system, where, entry) for entry in group]
            for group in clusters
        ]
    _elaborate(where, system.scheduling_domain, name, members, **spec)


def _domain_processor(system: System, where: str, entry):
    if not isinstance(entry, str):
        raise BuildError(
            f"{where}: processors are referenced by name, got {entry!r}"
        )
    try:
        return system.processors[entry]
    except KeyError:
        raise BuildError(
            f"{where} references unknown processor {entry!r}"
        ) from None


def _parse_windows(name: str, windows) -> List:
    """Parse ``time_partition`` windows: ``[[partition, duration], ...]``."""
    if not isinstance(windows, (list, tuple)):
        raise BuildError(
            f"processor {name!r}: windows must be a list of "
            f"[partition, duration] pairs, got {windows!r}"
        )
    parsed = []
    for entry in windows:
        if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                or not isinstance(entry[0], str)):
            raise BuildError(
                f"processor {name!r}: each window is a "
                f"[partition, duration] pair, got {entry!r}"
            )
        parsed.append((entry[0], parse_time(entry[1])))
    return parsed


#: Optional per-function metadata keys: parsed (as times where noted)
#: and attached as plain attributes for the analyzers and policies.
_FUNCTION_META_KEYS = {
    "wcet": True,       # periodic profile (repro.analyze) -- a time,
                        # or a "lo..hi" interval (sets bcet and wcet)
    "period": True,     # periodic profile -- a time
    "deadline": True,   # relative deadline -- a time
    "jitter": True,     # release jitter bound (repro.verify) -- a time
    "max_blocking": True,  # declared blocking budget (RTS183) -- a time
    "partition": False,  # TimePartitionPolicy label -- a string
    "affinity": False,   # processor names the task may run on -- a list
    "lint_suppress": False,  # rule ids muted for the whole report -- a list
}


def _parse_lint_suppress(where: str, value) -> tuple:
    """Validate a ``lint_suppress`` entry: a list of rule-id strings."""
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, (list, tuple)) or not all(
            isinstance(item, str) and item for item in value):
        raise BuildError(
            f"{where}: lint_suppress must be a rule id or a list of rule "
            f"ids, got {value!r}"
        )
    return tuple(value)


#: Every key a function spec entry accepts (structure + factory kwargs
#: + the analyzer metadata of :data:`_FUNCTION_META_KEYS`).
_FUNCTION_KEYS = frozenset(
    ("name", "processor", "behavior", "script", "priority", "start_time",
     "auto_start")
) | frozenset(_FUNCTION_META_KEYS)


def _build_function(system: System, spec: Dict) -> None:
    name = spec.pop("name", None)
    if not name:
        raise BuildError(f"function spec missing a name: {spec!r}")
    unknown = set(spec) - _FUNCTION_KEYS
    if unknown:
        raise BuildError(
            f"function {name!r}: unknown keys {sorted(unknown)}; "
            f"accepted keys: {sorted(_FUNCTION_KEYS)}"
        )
    processor = spec.pop("processor", None)
    behavior = spec.pop("behavior", None)
    script = spec.pop("script", None)
    if behavior is not None and script is not None:
        raise BuildError(f"function {name!r}: pass behavior or script, not both")
    if behavior is None:
        if script is None:
            raise BuildError(f"function {name!r} needs a behavior or a script")
        behavior = compile_script(system, script)
    if "start_time" in spec:
        spec["start_time"] = parse_time(spec["start_time"])
    meta = {}
    for key, is_time in _FUNCTION_META_KEYS.items():
        if key in spec:
            value = spec.pop(key)
            if key == "wcet":
                parsed = parse_duration_range(
                    value, f"function {name!r}: wcet"
                )
                if type(parsed) is tuple:
                    meta["bcet"], meta["wcet"] = parsed
                else:
                    meta["wcet"] = parsed
            elif key == "affinity":
                meta[key] = _parse_affinity(system, name, value)
            elif key == "lint_suppress":
                meta[key] = _parse_lint_suppress(
                    f"function {name!r}", value
                )
            else:
                meta[key] = parse_time(value) if is_time else value
    fn = _elaborate(f"function {name!r}", system.function, name,
                    behavior, **spec)
    for key, value in meta.items():
        setattr(fn, key, value)
    ops = getattr(behavior, "script_ops", None)
    if ops is not None:
        #: The validated op list, kept for static analysis
        #: (:mod:`repro.analyze` reads periodic profiles and lock
        #: nesting straight from it).
        fn.script_ops = ops
    if processor is not None:
        try:
            cpu = system.processors[processor]
        except KeyError:
            raise BuildError(
                f"function {name!r} mapped on unknown processor {processor!r}"
            ) from None
        cpu.map(fn)


def _parse_affinity(system: System, name: str, value) -> tuple:
    """Validate an affinity mask: a non-empty list of known processors."""
    if not isinstance(value, (list, tuple)) or not value:
        raise BuildError(
            f"function {name!r}: affinity must be a non-empty list of "
            f"processor names, got {value!r}"
        )
    for cpu_name in value:
        if cpu_name not in system.processors:
            raise BuildError(
                f"function {name!r}: affinity names unknown processor "
                f"{cpu_name!r}"
            )
    # canonical order: a mask is a set, and sorted tuples keep generated
    # spec digests stable however the list was written
    return tuple(sorted(value))


# ---------------------------------------------------------------------------
# Script interpreter
# ---------------------------------------------------------------------------
def compile_script(system: System, script: List) -> Callable[[Function], Generator]:
    """Turn a script op-list into a behavior callable."""
    ops = _validate_block(system, script, path="script")

    def behavior(fn: Function) -> Generator:
        yield from _run_block(system, fn, ops)

    behavior.script_ops = ops
    return behavior


def _validate_block(system: System, block: List, path: str) -> List:
    if not isinstance(block, (list, tuple)):
        raise BuildError(f"{path}: expected an op list, got {block!r}")
    ops = []
    for index, op in enumerate(block):
        where = f"{path}[{index}]"
        if not isinstance(op, (list, tuple)) or not op:
            raise BuildError(f"{where}: malformed op {op!r}")
        name, args = op[0], list(op[1:])
        if name == "execute":
            if len(args) != 1:
                raise BuildError(f"{where}: {name} takes one duration")
            args[0] = parse_duration_range(args[0], where)
        elif name in ("delay", "delay_until"):
            if len(args) != 1:
                raise BuildError(f"{where}: {name} takes one duration")
            args[0] = parse_time(args[0])
            if name == "delay_until" and args[0] <= 0:
                raise BuildError(f"{where}: delay_until period must be > 0")
        elif name in ("wait", "read"):
            if len(args) not in (1, 2):
                raise BuildError(
                    f"{where}: {name} takes a relation name and an "
                    "optional timeout"
                )
            _relation(system, args[0], where)
            if len(args) == 2:
                args[1] = _parse_timeout(args[1], where)
        elif name in ("signal", "lock", "unlock", "read_shared"):
            if len(args) != 1:
                raise BuildError(f"{where}: {name} takes one relation name")
            _relation(system, args[0], where)
        elif name == "write":
            if len(args) not in (2, 3):
                raise BuildError(
                    f"{where}: {name} takes relation, value and an "
                    "optional timeout"
                )
            _relation(system, args[0], where)
            if len(args) == 3:
                args[2] = _parse_timeout(args[2], where)
        elif name == "write_shared":
            if len(args) != 2:
                raise BuildError(f"{where}: {name} takes relation and value")
            _relation(system, args[0], where)
        elif name in ("set_flag", "clr_flag"):
            if len(args) != 2 or not isinstance(args[1], int):
                raise BuildError(
                    f"{where}: {name} takes a relation name and a bit "
                    "pattern"
                )
            _flags_relation(system, args[0], where)
        elif name == "wait_flag":
            if len(args) not in (3, 4) or not isinstance(args[1], int):
                raise BuildError(
                    f"{where}: wait_flag takes relation, pattern, "
                    "mode ('and'/'or') and an optional timeout"
                )
            _flags_relation(system, args[0], where)
            if args[2] not in ("and", "or"):
                raise BuildError(
                    f"{where}: wait_flag mode must be 'and' or 'or', "
                    f"got {args[2]!r}"
                )
            if len(args) == 4:
                args[3] = _parse_timeout(args[3], where)
        elif name == "loop":
            if len(args) != 2:
                raise BuildError(f"{where}: loop takes a count and a body")
            count = args[0]
            if count is not None and (not isinstance(count, int) or count < 0):
                raise BuildError(f"{where}: loop count must be None or int >= 0")
            args[1] = _validate_block(system, args[1], where)
        elif name == "set_preemptive":
            if len(args) != 1 or not isinstance(args[0], bool):
                raise BuildError(f"{where}: set_preemptive takes a bool")
        else:
            raise BuildError(f"{where}: unknown op {name!r}")
        ops.append((name, args))
    return ops


def parse_duration_range(value, where: str):
    """Parse a duration, or a ``"lo..hi"`` / ``[lo, hi]`` interval.

    A single duration parses to an ``int``; an interval with distinct
    bounds parses to a ``(lo, hi)`` tuple.  The lower bound is the
    *nominal* time -- what a plain simulation uses -- and the interval is
    only exercised when a choice controller (:mod:`repro.verify`) drives
    the run, so adding a range never changes existing traces.
    """
    if isinstance(value, str) and ".." in value:
        lo_text, _, hi_text = value.partition("..")
        lo, hi = parse_time(lo_text), parse_time(hi_text)
    elif isinstance(value, (list, tuple)):
        if len(value) != 2:
            raise BuildError(
                f"{where}: a duration interval takes two bounds, "
                f"got {value!r}"
            )
        lo, hi = parse_time(value[0]), parse_time(value[1])
    else:
        return parse_time(value)
    if lo > hi:
        raise BuildError(f"{where}: empty duration range {value!r} (lo > hi)")
    return lo if lo == hi else (lo, hi)


def resolve_duration(fn: Function, duration):
    """Collapse an execution-time interval to a concrete duration.

    Plain runs take the nominal lower bound; a run driven by a choice
    controller branches over both endpoints (interval-boundary
    abstraction: extremal schedules expose the extremal behaviors).
    """
    if type(duration) is not tuple:
        return duration
    lo, hi = duration
    controller = fn.sim.choice_controller
    if controller is None:
        return lo
    index = controller.choose(
        "exec", fn.name, 2, labels=(format_time(lo), format_time(hi))
    )
    return hi if index else lo


def _parse_timeout(value, where: str):
    """Parse a bounded-wait timeout: a duration, or None/"forever"."""
    if value is None or value == "forever":
        return None
    try:
        timeout = parse_time(value)
    except (TypeError, ValueError) as exc:
        raise BuildError(f"{where}: bad timeout {value!r}: {exc}") from None
    if timeout < 0:
        raise BuildError(f"{where}: negative timeout {value!r}")
    return timeout


def _relation(system: System, name: str, where: str):
    try:
        return system.relations[name]
    except KeyError:
        raise BuildError(f"{where}: unknown relation {name!r}") from None


def _flags_relation(system: System, name: str, where: str):
    from .events import EventFlags

    relation = _relation(system, name, where)
    if not isinstance(relation, EventFlags):
        raise BuildError(
            f"{where}: {name!r} is not an eventflag relation"
        )
    return relation


def _run_block(system: System, fn: Function, ops: List) -> Generator:
    for name, args in ops:
        if name == "execute":
            yield from fn.execute(resolve_duration(fn, args[0]))
        elif name == "delay":
            yield from fn.delay(args[0])
        elif name == "delay_until":
            # vTaskDelayUntil-style fixed-cadence release: the anchor is
            # this call's first activation, each call advances it by one
            # period, and the delay absorbs whatever the body consumed.
            period = args[0]
            anchor = getattr(fn, "_release_anchor", None)
            if anchor is None:
                anchor = fn.sim.now
            target = anchor + period
            fn._release_anchor = target
            remaining = target - fn.sim.now
            if remaining > 0:
                yield from fn.delay(remaining)
        elif name == "wait":
            yield from fn.wait(
                system.relations[args[0]],
                timeout=args[1] if len(args) > 1 else None,
            )
        elif name == "signal":
            yield from fn.signal(system.relations[args[0]])
        elif name == "read":
            yield from fn.read(
                system.relations[args[0]],
                timeout=args[1] if len(args) > 1 else None,
            )
        elif name == "write":
            yield from fn.write(
                system.relations[args[0]], args[1],
                timeout=args[2] if len(args) > 2 else None,
            )
        elif name == "set_flag":
            yield from fn.set_flag(system.relations[args[0]], args[1])
        elif name == "clr_flag":
            yield from fn.clear_flag(system.relations[args[0]], args[1])
        elif name == "wait_flag":
            yield from fn.wait_flag(
                system.relations[args[0]], args[1], args[2],
                timeout=args[3] if len(args) > 3 else None,
            )
        elif name == "lock":
            yield from fn.lock(system.relations[args[0]])
        elif name == "unlock":
            yield from fn.unlock(system.relations[args[0]])
        elif name == "read_shared":
            yield from fn.read_shared(system.relations[args[0]])
        elif name == "write_shared":
            yield from fn.write_shared(system.relations[args[0]], args[1])
        elif name == "set_preemptive":
            if fn.task is None:
                raise BuildError(
                    f"function {fn.name!r}: set_preemptive needs an RTOS mapping"
                )
            fn.task.processor.set_preemptive(args[0])
        elif name == "loop":
            count, body = args
            if count is None:
                while True:
                    yield from _run_block(system, fn, body)
            else:
                for _ in range(count):
                    yield from _run_block(system, fn, body)
