"""MCSE event relations: fugitive, boolean and counter memorization.

The paper (§2) models synchronization between functions with events that
differ only in how they *memorize* a signal that arrives while nobody is
waiting:

* :class:`FugitiveEvent` -- no memorization, like SystemC's ``sc_event``:
  a signal with no waiter is lost.
* :class:`BooleanEvent` -- one level of memorization: a single flag
  remembers that at least one signal occurred; the next wait consumes it.
* :class:`CounterEvent` -- every signal is counted; each wait consumes
  one count.

Delivery semantics with waiters present (documented model decisions,
enforced by tests):

* fugitive and boolean events are *broadcast*: one signal wakes every
  current waiter (they synchronize a set of functions);
* a counter event is *token-like*: one signal wakes exactly one waiter,
  chosen by the relation's wake order.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ModelError
from ..kernel.simulator import Simulator
from .relations import Relation


class EventRelation(Relation):
    """Base class for the three MCSE event policies."""

    def signal(self) -> None:
        """Notify the event (never blocks)."""
        raise NotImplementedError

    def try_wait(self) -> bool:
        """Consume a memorized occurrence; True if one was available."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of memorized occurrences a wait could consume now."""
        raise NotImplementedError


class FugitiveEvent(EventRelation):
    """An event with no memory (``sc_event`` behaviour).

    A signal wakes every waiter present at that instant; with no waiter
    it is simply lost (the ``lost_count`` counter records how many).
    """

    def __init__(self, sim: Simulator, name: str = "event",
                 wake_order: str = "fifo") -> None:
        super().__init__(sim, name, wake_order)
        self.lost_count = 0

    def signal(self) -> None:
        self.access_count += 1
        if not self._waiters:
            self.lost_count += 1
            return
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self._deliver(waiter)

    def try_wait(self) -> bool:
        return False

    def pending(self) -> int:
        return 0


class BooleanEvent(EventRelation):
    """An event with a single memorization level."""

    def __init__(self, sim: Simulator, name: str = "event",
                 wake_order: str = "fifo") -> None:
        super().__init__(sim, name, wake_order)
        self._flag = False

    @property
    def flag(self) -> bool:
        """Whether an unconsumed signal is memorized."""
        return self._flag

    def signal(self) -> None:
        self.access_count += 1
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                self._deliver(waiter)
            return
        if not self._flag:
            self._flag = True
            self._occ_set(1)

    def try_wait(self) -> bool:
        if self._flag:
            self._flag = False
            self._occ_set(0)
            return True
        return False

    def pending(self) -> int:
        return 1 if self._flag else 0


class CounterEvent(EventRelation):
    """An event counting its occurrences.

    ``max_count`` optionally saturates the counter (a bounded token
    pool); by default it is unbounded.
    """

    def __init__(self, sim: Simulator, name: str = "event",
                 wake_order: str = "fifo",
                 max_count: Optional[int] = None,
                 initial: int = 0) -> None:
        super().__init__(sim, name, wake_order)
        if max_count is not None and max_count < 1:
            raise ModelError(f"max_count must be >= 1, got {max_count}")
        if initial < 0 or (max_count is not None and initial > max_count):
            raise ModelError(
                f"initial count {initial} outside [0, "
                f"{max_count if max_count is not None else 'inf'}]"
            )
        self._count = initial
        self.max_count = max_count
        #: Signals dropped because the counter was saturated.
        self.saturated_count = 0

    @property
    def count(self) -> int:
        """Memorized, unconsumed signal count."""
        return self._count

    def signal(self) -> None:
        self.access_count += 1
        waiter = self._pop_waiter()
        if waiter is not None:
            self._deliver(waiter)
            return
        if self.max_count is not None and self._count >= self.max_count:
            self.saturated_count += 1
            return
        self._count += 1
        self._occ_set(self._count)

    def try_wait(self) -> bool:
        if self._count > 0:
            self._count -= 1
            self._occ_set(self._count)
            return True
        return False

    def pending(self) -> int:
        return self._count


#: Wait modes an eventflag waiter may ask for.
FLAG_MODES = ("and", "or")


class EventFlags(Relation):
    """A bit-pattern synchronization relation (ITRON-style eventflags).

    Functions *set* bits (OR into the pattern), *clear* bits (AND with a
    mask) and *wait* for a pattern with mode ``"and"`` (all requested
    bits set) or ``"or"`` (any requested bit set).  Unlike the event
    relations, what a waiter consumes is parameterized per call, so the
    waiter carries its ``(pattern, mode)`` request in the payload.

    ``clear_on_wake`` mirrors ITRON's ``TA_CLR`` attribute: the whole
    pattern resets to zero when a wait is satisfied, so each release
    serves exactly one waiter.
    """

    def __init__(self, sim: Simulator, name: str = "flags",
                 wake_order: str = "fifo", initial: int = 0,
                 clear_on_wake: bool = False) -> None:
        super().__init__(sim, name, wake_order)
        if initial < 0:
            raise ModelError(f"initial flag pattern must be >= 0: {initial}")
        self.pattern = initial
        self.clear_on_wake = clear_on_wake
        if initial:
            self._occ_set(1)

    # ------------------------------------------------------------------
    def satisfies(self, pattern: int, mode: str) -> bool:
        """Whether the current bit pattern satisfies a wait request."""
        if mode not in FLAG_MODES:
            raise ModelError(
                f"unknown flag wait mode {mode!r}; pick one of {FLAG_MODES}"
            )
        if pattern <= 0:
            raise ModelError(f"flag wait pattern must be positive: {pattern}")
        if mode == "and":
            return (self.pattern & pattern) == pattern
        return bool(self.pattern & pattern)

    def try_wait_pattern(self, pattern: int, mode: str) -> bool:
        """Consume a satisfied pattern now; False if unsatisfied."""
        if not self.satisfies(pattern, mode):
            return False
        if self.clear_on_wake:
            self.pattern = 0
            self._occ_set(0)
        return True

    def enqueue_flag_waiter(self, function, pattern: int, mode: str):
        """Suspend ``function`` until ``(pattern, mode)`` is satisfied."""
        self.satisfies(pattern, mode)  # validate the request eagerly
        return self._enqueue_waiter(function, payload=(pattern, mode))

    # ------------------------------------------------------------------
    def set(self, bits: int) -> None:
        """OR ``bits`` into the pattern, waking satisfied waiters.

        Waiters are served in wait-queue order; with ``clear_on_wake``
        the first satisfied waiter consumes the whole pattern.
        """
        if bits <= 0:
            raise ModelError(f"flag set pattern must be positive: {bits}")
        self.access_count += 1
        self.pattern |= bits
        self._occ_set(1 if self.pattern else 0)
        while True:
            waiter = self._pop_satisfied()
            if waiter is None:
                return
            self._deliver(waiter, self.pattern)
            if self.clear_on_wake:
                self.pattern = 0
                self._occ_set(0)
                return

    def clear(self, mask: int) -> None:
        """AND the pattern with ``mask`` (ITRON ``clr_flg`` semantics)."""
        self.pattern &= mask
        self._occ_set(1 if self.pattern else 0)

    def _pop_satisfied(self):
        for index, waiter in enumerate(self._waiters):
            pattern, mode = waiter.payload
            if self.satisfies(pattern, mode):
                return self._waiters.pop(index)
        return None
