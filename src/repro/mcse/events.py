"""MCSE event relations: fugitive, boolean and counter memorization.

The paper (§2) models synchronization between functions with events that
differ only in how they *memorize* a signal that arrives while nobody is
waiting:

* :class:`FugitiveEvent` -- no memorization, like SystemC's ``sc_event``:
  a signal with no waiter is lost.
* :class:`BooleanEvent` -- one level of memorization: a single flag
  remembers that at least one signal occurred; the next wait consumes it.
* :class:`CounterEvent` -- every signal is counted; each wait consumes
  one count.

Delivery semantics with waiters present (documented model decisions,
enforced by tests):

* fugitive and boolean events are *broadcast*: one signal wakes every
  current waiter (they synchronize a set of functions);
* a counter event is *token-like*: one signal wakes exactly one waiter,
  chosen by the relation's wake order.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ModelError
from ..kernel.simulator import Simulator
from .relations import Relation


class EventRelation(Relation):
    """Base class for the three MCSE event policies."""

    def signal(self) -> None:
        """Notify the event (never blocks)."""
        raise NotImplementedError

    def try_wait(self) -> bool:
        """Consume a memorized occurrence; True if one was available."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of memorized occurrences a wait could consume now."""
        raise NotImplementedError


class FugitiveEvent(EventRelation):
    """An event with no memory (``sc_event`` behaviour).

    A signal wakes every waiter present at that instant; with no waiter
    it is simply lost (the ``lost_count`` counter records how many).
    """

    def __init__(self, sim: Simulator, name: str = "event",
                 wake_order: str = "fifo") -> None:
        super().__init__(sim, name, wake_order)
        self.lost_count = 0

    def signal(self) -> None:
        self.access_count += 1
        if not self._waiters:
            self.lost_count += 1
            return
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self._deliver(waiter)

    def try_wait(self) -> bool:
        return False

    def pending(self) -> int:
        return 0


class BooleanEvent(EventRelation):
    """An event with a single memorization level."""

    def __init__(self, sim: Simulator, name: str = "event",
                 wake_order: str = "fifo") -> None:
        super().__init__(sim, name, wake_order)
        self._flag = False

    @property
    def flag(self) -> bool:
        """Whether an unconsumed signal is memorized."""
        return self._flag

    def signal(self) -> None:
        self.access_count += 1
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                self._deliver(waiter)
            return
        if not self._flag:
            self._flag = True
            self._occ_set(1)

    def try_wait(self) -> bool:
        if self._flag:
            self._flag = False
            self._occ_set(0)
            return True
        return False

    def pending(self) -> int:
        return 1 if self._flag else 0


class CounterEvent(EventRelation):
    """An event counting its occurrences.

    ``max_count`` optionally saturates the counter (a bounded token
    pool); by default it is unbounded.
    """

    def __init__(self, sim: Simulator, name: str = "event",
                 wake_order: str = "fifo",
                 max_count: Optional[int] = None) -> None:
        super().__init__(sim, name, wake_order)
        if max_count is not None and max_count < 1:
            raise ModelError(f"max_count must be >= 1, got {max_count}")
        self._count = 0
        self.max_count = max_count
        #: Signals dropped because the counter was saturated.
        self.saturated_count = 0

    @property
    def count(self) -> int:
        """Memorized, unconsumed signal count."""
        return self._count

    def signal(self) -> None:
        self.access_count += 1
        waiter = self._pop_waiter()
        if waiter is not None:
            self._deliver(waiter)
            return
        if self.max_count is not None and self._count >= self.max_count:
            self.saturated_count += 1
            return
        self._count += 1
        self._occ_set(self._count)

    def try_wait(self) -> bool:
        if self._count > 0:
            self._count -= 1
            self._occ_set(self._count)
            return True
        return False

    def pending(self) -> int:
        return self._count
