"""The MCSE functional model: functions connected by typed relations.

This is the application model of the paper's §2: a system is a set of
:class:`~repro.mcse.function.Function` objects (tasks), each running a
sequential behavior, communicating only through three relation kinds:

* events with fugitive / boolean / counter memorization,
* bounded message queues,
* mutex-protected shared variables.

The model is platform-independent: map functions onto RTOS processors
(:mod:`repro.rtos`) or leave them as concurrent hardware.
"""

from .builder import build_system, compile_script
from .context import HARDWARE_CONTEXT, ExecutionContext, HardwareContext
from .events import BooleanEvent, CounterEvent, EventRelation, FugitiveEvent
from .function import Function
from .model import EVENT_POLICIES, System
from .queues import MessageQueue
from .relations import Relation, Waiter
from .shared import SharedVariable

__all__ = [
    "BooleanEvent",
    "CounterEvent",
    "EVENT_POLICIES",
    "EventRelation",
    "ExecutionContext",
    "FugitiveEvent",
    "Function",
    "HARDWARE_CONTEXT",
    "HardwareContext",
    "MessageQueue",
    "Relation",
    "SharedVariable",
    "System",
    "Waiter",
    "build_system",
    "compile_script",
]
