"""MCSE shared variables: data exchange under mutual exclusion.

A :class:`SharedVariable` is the paper's third relation kind: a piece of
global data with no synchronization *except* mutual exclusion (§2).  A
function locks it, reads/writes the value, and unlocks.  Blocking on a
locked shared variable is what the TimeLine chart renders as the
"waiting for resource" state and what Figure 7 uses to demonstrate
priority inversion.

Ownership is handed off directly to the next waiter on unlock, so
fairness follows the relation's wake order (``"fifo"`` by default,
``"priority"`` to model priority-ordered mutex queues).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import ModelError
from ..kernel.simulator import Simulator
from ..kernel.time import Time
from .relations import Relation

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function


class SharedVariable(Relation):
    """Mutex-protected shared data."""

    resource = True

    def __init__(
        self,
        sim: Simulator,
        name: str = "shared",
        initial: object = None,
        wake_order: str = "fifo",
    ) -> None:
        super().__init__(sim, name, wake_order)
        self.value = initial
        self.owner: Optional["Function"] = None
        #: Lifetime lock acquisitions and contended acquisitions.
        self.acquisitions = 0
        self.contentions = 0
        self._locked_since: Optional[Time] = None
        self._locked_total: Time = 0

    # ------------------------------------------------------------------
    # Lock state
    # ------------------------------------------------------------------
    @property
    def locked(self) -> bool:
        return self.owner is not None

    def try_lock(self, function: Optional["Function"]) -> bool:
        """Acquire the lock for ``function``; False when held."""
        self.access_count += 1
        if self.owner is not None:
            self.access_count -= 1  # failed attempt will block and retry
            return False
        self._take(function)
        return True

    def _take(self, function: Optional["Function"]) -> None:
        self.owner = function
        self.acquisitions += 1
        self._locked_since = self.sim.now
        self._occ_set(1)

    def unlock(self, function: Optional["Function"]) -> None:
        """Release the lock; ownership is handed to the next waiter."""
        if self.owner is None:
            raise ModelError(f"unlock of unlocked shared variable {self.name!r}")
        if function is not None and self.owner is not function:
            raise ModelError(
                f"{function.name!r} unlocking {self.name!r} owned by "
                f"{self.owner.name!r}"
            )
        if self._locked_since is not None:
            self._locked_total += self.sim.now - self._locked_since
            self._locked_since = None
        self.owner = None
        self._occ_set(0)
        waiter = self._pop_waiter()
        if waiter is not None:
            # direct handoff: the woken function owns the lock on wake
            self.access_count += 1
            self._take(waiter.function)
            self._deliver(waiter)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def locked_time(self) -> Time:
        """Total time spent locked up to the current instant."""
        total = self._locked_total
        if self._locked_since is not None:
            total += self.sim.now - self._locked_since
        return total

    def utilization(self) -> float:
        """Fraction of elapsed time the variable was locked."""
        now = self.sim.now
        if now == 0:
            return 0.0
        return self.locked_time() / now
