"""Base machinery shared by all MCSE relations.

A *relation* is one of the three MCSE communication links between
functions: an event, a message queue, or a shared variable.  All three
share the same blocking discipline, implemented here:

* A function that cannot complete an operation immediately enqueues a
  :class:`Waiter` on the relation and suspends through its execution
  context (plain kernel wait for hardware functions, the full RTOS
  blocking protocol for software tasks).
* Whoever later makes the operation possible *delivers* directly to a
  chosen waiter (direct handoff).  There is no thundering herd: exactly
  the waiters that can proceed are woken, which is also what a real RTOS
  does and what keeps the RTOS model's Ready queue truthful.

The wakeup order is selectable per relation: ``"fifo"`` (default) or
``"priority"`` (highest function priority first, FIFO within equals),
matching the wait-queue options of common RTOS APIs.

Relations also keep an occupancy integral so the statistics module can
report the paper's Figure-8 "communication utilization ratio" without
any tracing overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..errors import ModelError
from ..kernel.event import Event
from ..kernel.simulator import Simulator
from ..kernel.time import Time

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function

#: Valid wakeup-order policies for relation wait queues.
WAKE_ORDERS = ("fifo", "priority")


class Waiter:
    """One suspended operation on a relation.

    ``value`` carries the delivered payload (message, event token, lock
    ownership marker) and ``delivered`` flips exactly once; execution
    contexts check it before suspending so a same-instant delivery is
    never lost.
    """

    __slots__ = ("function", "event", "value", "delivered", "payload")

    def __init__(self, function: Optional["Function"], event: Event,
                 payload: object = None) -> None:
        self.function = function
        self.event = event
        #: What a blocked producer is trying to hand over (queues only).
        self.payload = payload
        self.value: object = None
        self.delivered = False


class Relation:
    """Common state of every MCSE relation."""

    #: Whether blocking on this relation counts as "waiting for resource"
    #: (shared variables) rather than "waiting for synchronization".
    resource = False

    def __init__(self, sim: Simulator, name: str, wake_order: str = "fifo") -> None:
        if wake_order not in WAKE_ORDERS:
            raise ModelError(
                f"unknown wake order {wake_order!r}; pick one of {WAKE_ORDERS}"
            )
        self.sim = sim
        self.name = sim.unique_name(name)
        self.wake_order = wake_order
        self._waiters: List[Waiter] = []
        #: Lifetime access counters (signals/puts vs waits/gets that blocked).
        self.access_count = 0
        self.blocked_count = 0
        # occupancy integral bookkeeping
        self._occ_level = 0
        self._occ_time: Time = 0
        self._occ_integral = 0

    # ------------------------------------------------------------------
    # Waiter management
    # ------------------------------------------------------------------
    def _enqueue_waiter(self, function: Optional["Function"],
                        payload: object = None) -> Waiter:
        event = self._wake_event_for(function)
        waiter = Waiter(function, event, payload)
        self._waiters.append(waiter)
        self.blocked_count += 1
        return waiter

    def _wake_event_for(self, function: Optional["Function"]) -> Event:
        if function is not None:
            return function.wake_event
        return Event(self.sim, f"{self.name}.anon_wake")

    def _pop_waiter(self) -> Optional[Waiter]:
        if not self._waiters:
            return None
        if self.wake_order == "priority":
            best_index = 0
            best_priority = self._priority_of(self._waiters[0])
            for index in range(1, len(self._waiters)):
                priority = self._priority_of(self._waiters[index])
                if priority > best_priority:
                    best_priority = priority
                    best_index = index
            controller = self.sim.choice_controller
            if controller is not None:
                # Equal-priority waiters tie-break FIFO here, but RTOS
                # wait-queue APIs promise no order among equals: let the
                # model checker (:mod:`repro.verify`) branch over them.
                ties = [
                    i for i, w in enumerate(self._waiters)
                    if self._priority_of(w) == best_priority
                ]
                if len(ties) > 1:
                    pick = controller.choose(
                        "wake", self.name, len(ties),
                        labels=tuple(
                            w.function.name if w.function else "?"
                            for w in (self._waiters[i] for i in ties)
                        ),
                    )
                    best_index = ties[pick]
            return self._waiters.pop(best_index)
        return self._waiters.pop(0)

    @staticmethod
    def _priority_of(waiter: Waiter) -> float:
        if waiter.function is None:
            return float("-inf")
        return waiter.function.priority

    def _deliver(self, waiter: Waiter, value: object = None) -> None:
        """Hand the relation over to ``waiter`` and wake it."""
        waiter.value = value
        waiter.delivered = True
        function = waiter.function
        if function is not None and function.context is not None:
            function.context.on_deliver(function, waiter)
        else:
            waiter.event.notify()

    def remove_waiter(self, waiter: Waiter) -> None:
        """Withdraw an undelivered waiter (used by bounded waits)."""
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass

    def withdraw(self, waiter: Waiter) -> None:
        """Withdraw ``waiter`` from every wait list of this relation.

        The timed-block machinery calls this on timeout expiry; queue
        relations extend it to cover their writer-side list too.
        """
        self.remove_waiter(waiter)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    # ------------------------------------------------------------------
    # Occupancy accounting (for utilization statistics)
    # ------------------------------------------------------------------
    def _occ_set(self, level: int) -> None:
        now = self.sim.now
        self._occ_integral += self._occ_level * (now - self._occ_time)
        self._occ_time = now
        self._occ_level = level

    def occupancy_integral(self) -> int:
        """Time-weighted occupancy sum up to the current instant."""
        now = self.sim.now
        return self._occ_integral + self._occ_level * (now - self._occ_time)

    def mean_occupancy(self) -> float:
        """Average occupancy level over the whole run so far."""
        now = self.sim.now
        if now == 0:
            return float(self._occ_level)
        return self.occupancy_integral() / now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
