"""The :class:`System` facade: one object holding a whole model.

Collects the simulator, functions, relations and processors of a model
behind short factory methods, so examples and the declarative builder
read like the MCSE diagrams they come from::

    system = System("demo")
    clk = system.event("Clk", policy="boolean")
    f1 = system.function("Function_1", behavior=f1_behavior, priority=5)
    cpu = system.processor("Processor", scheduling_duration=5 * US)
    cpu.map(f1)
    system.run(200 * US)
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from ..errors import ModelError
from ..kernel.simulator import Simulator
from ..kernel.time import Time
from .events import BooleanEvent, CounterEvent, EventFlags, EventRelation, \
    FugitiveEvent
from .function import Function
from .queues import MessageQueue
from .relations import Relation
from .shared import SharedVariable

#: Event memorization policies accepted by :meth:`System.event`.
EVENT_POLICIES = {
    "fugitive": FugitiveEvent,
    "boolean": BooleanEvent,
    "counter": CounterEvent,
}


def _plain_shared():
    return SharedVariable


def _inheritance_shared():
    from ..rtos.services import InheritanceSharedVariable  # avoid a cycle

    return InheritanceSharedVariable


def _ceiling_shared():
    from ..rtos.services import CeilingSharedVariable  # avoid a cycle

    return CeilingSharedVariable


#: Resource-access protocols accepted by :meth:`System.shared` (lazy
#: class lookups: the RTOS protocols live above the MCSE layer).
SHARED_PROTOCOLS = {
    "none": _plain_shared,
    "inheritance": _inheritance_shared,
    "ceiling": _ceiling_shared,
}


class System:
    """A complete MCSE model: functions + relations (+ processors)."""

    def __init__(self, name: str = "system", sim: Optional[Simulator] = None) -> None:
        self.name = name
        self.sim = sim if sim is not None else Simulator(name)
        self.functions: Dict[str, Function] = {}
        self.relations: Dict[str, Relation] = {}
        self.processors: Dict[str, object] = {}
        self.domains: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def function(
        self,
        name: str,
        behavior: Optional[Callable[[Function], Generator]] = None,
        **kwargs,
    ) -> Function:
        """Create and register a :class:`Function`."""
        if name in self.functions:
            raise ModelError(f"duplicate function name {name!r}")
        fn = Function(self.sim, name, behavior, **kwargs)
        self.functions[name] = fn
        return fn

    def add_function(self, fn: Function) -> Function:
        """Register an externally constructed function (e.g. a subclass)."""
        if fn.basename in self.functions:
            raise ModelError(f"duplicate function name {fn.basename!r}")
        self.functions[fn.basename] = fn
        return fn

    def event(self, name: str, policy: str = "fugitive", **kwargs) -> EventRelation:
        """Create an MCSE event with the given memorization policy."""
        try:
            cls = EVENT_POLICIES[policy]
        except KeyError:
            raise ModelError(
                f"unknown event policy {policy!r}; "
                f"pick one of {sorted(EVENT_POLICIES)}"
            ) from None
        self._check_relation_name(name)
        return self._register(name, cls(self.sim, name, **kwargs))

    def queue(self, name: str, capacity: Optional[int] = 8, **kwargs) -> MessageQueue:
        """Create a bounded message queue."""
        self._check_relation_name(name)
        return self._register(name, MessageQueue(self.sim, name, capacity, **kwargs))

    def flags(self, name: str, initial: int = 0, **kwargs) -> EventFlags:
        """Create an eventflag relation (bit-pattern synchronization)."""
        self._check_relation_name(name)
        return self._register(
            name, EventFlags(self.sim, name, initial=initial, **kwargs)
        )

    def shared(self, name: str, initial: object = None,
               protocol: str = "none", **kwargs) -> SharedVariable:
        """Create a mutex-protected shared variable.

        ``protocol`` selects the resource-access protocol: ``"none"``
        (plain mutex), ``"inheritance"`` (priority inheritance) or
        ``"ceiling"`` (immediate priority ceiling; pass ``ceiling=``).
        """
        try:
            cls = SHARED_PROTOCOLS[protocol]()
        except KeyError:
            raise ModelError(
                f"unknown shared-variable protocol {protocol!r}; "
                f"pick one of {sorted(SHARED_PROTOCOLS)}"
            ) from None
        self._check_relation_name(name)
        return self._register(name, cls(self.sim, name, initial, **kwargs))

    def _check_relation_name(self, name: str) -> None:
        if name in self.relations:
            raise ModelError(f"duplicate relation name {name!r}")

    def processor(self, name: str, engine: str = "procedural", **kwargs):
        """Create an RTOS processor (see :mod:`repro.rtos.processor`).

        ``engine`` selects the implementation technique of the paper's
        §4: ``"procedural"`` (§4.2, default) or ``"threaded"`` (§4.1).
        """
        from ..rtos import make_processor  # local import avoids a cycle

        if name in self.processors:
            raise ModelError(f"duplicate processor name {name!r}")
        cpu = make_processor(self.sim, name, engine=engine, **kwargs)
        self.processors[name] = cpu
        return cpu

    def scheduling_domain(self, name: str, processors, **kwargs):
        """Group processors into an SMP scheduling domain.

        See :class:`repro.smp.SchedulingDomain` for the dispatch kinds
        (``global`` / ``partitioned`` / ``clustered``), affinity and
        migration semantics.
        """
        from ..smp import SchedulingDomain  # local import avoids a cycle

        if name in self.domains:
            raise ModelError(f"duplicate scheduling domain name {name!r}")
        domain = SchedulingDomain(self.sim, name, processors, **kwargs)
        self.domains[name] = domain
        return domain

    def _register(self, name: str, relation: Relation) -> Relation:
        self.relations[name] = relation
        return relation

    # ------------------------------------------------------------------
    # Lookup & run control
    # ------------------------------------------------------------------
    def __getitem__(self, name: str):
        for registry in (self.functions, self.relations, self.processors,
                         self.domains):
            if name in registry:
                return registry[name]
        raise KeyError(name)

    def run(self, duration: Optional[Time] = None, **kwargs) -> Time:
        """Run the underlying simulator."""
        return self.sim.run(duration, **kwargs)

    @property
    def now(self) -> Time:
        return self.sim.now
