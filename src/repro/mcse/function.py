"""MCSE functions: the tasks of the functional model.

A :class:`Function` runs a sequential *behavior* (a generator) and talks
to other functions exclusively through MCSE relations.  Its behavior
uses the function's own wrappers, all of which are generator methods to
be driven with ``yield from``::

    class Producer(Function):
        def behavior(self):
            for i in range(10):
                yield from self.execute(2 * US)      # crunch for 2us of CPU
                yield from self.write(self.out_q, i) # may block when full
                yield from self.wait(self.go)        # event synchronization

Whether those operations run concurrently (hardware) or serialized under
an RTOS is decided by the function's *execution context*, set when the
function is mapped onto a :class:`~repro.rtos.processor.Processor`.
Unmapped functions are hardware.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..errors import ModelError
from ..kernel.event import Event
from ..kernel.module import Module
from ..kernel.simulator import Simulator
from ..kernel.time import Time
from ..trace.records import AccessKind, AccessRecord, StateRecord, TaskState
from .context import HARDWARE_CONTEXT, ExecutionContext
from .events import EventFlags, EventRelation
from .queues import MessageQueue
from .shared import SharedVariable


class Function(Module):
    """A task of the functional model.

    Parameters
    ----------
    behavior:
        Generator function taking this Function; alternatively subclass
        and override :meth:`behavior`.
    priority:
        Scheduling priority once mapped on a processor (larger = more
        urgent, as in the paper's Figure 6).
    start_time:
        Simulated time of the function's creation.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        behavior: Optional[Callable[["Function"], Generator]] = None,
        *,
        priority: int = 0,
        parent: Optional[Module] = None,
        start_time: Time = 0,
        auto_start: bool = True,
    ) -> None:
        super().__init__(sim, name, parent)
        self._behavior = behavior
        self.priority = priority
        self.start_time = start_time
        #: Execution context; replaced by Processor.map() for SW tasks.
        self.context: ExecutionContext = HARDWARE_CONTEXT
        #: RTOS task control block once mapped (None for HW functions).
        self.task = None
        #: Kernel event used to wake this function from relation waits.
        self.wake_event = Event(sim, f"{self.name}.wake")
        # --- state tracking -------------------------------------------
        self.state: Optional[TaskState] = None
        self._state_since: Time = 0
        self._ready_reason: Optional[str] = None
        #: Accumulated time per state (Figure-8 statistics source).
        self.state_durations = {state: 0 for state in TaskState}
        #: READY time entered specifically through preemption.
        self.preempted_time: Time = 0
        self.preempted_count = 0
        self.process = None
        if auto_start:
            self.start()

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    def behavior(self) -> Generator:
        """The sequential algorithm of this function (override me)."""
        if self._behavior is None:
            raise ModelError(
                f"function {self.name!r} has no behavior; pass behavior= or "
                "override behavior()"
            )
        return self._behavior(self)

    def start(self):
        """Create the kernel process running this function."""
        if self.process is not None:
            raise ModelError(f"function {self.name!r} already started")
        self.process = self.sim.thread(self._bootstrap, name=f"{self.name}.proc")
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.register_function(self)
        return self.process

    def _bootstrap(self) -> Generator:
        if self.start_time > 0:
            yield self.start_time
        yield from self.context.run(self)

    @property
    def processor_name(self) -> Optional[str]:
        if self.task is not None:
            return self.task.processor.name
        return None

    # ------------------------------------------------------------------
    # State tracking
    # ------------------------------------------------------------------
    def _set_state(self, state: TaskState, reason: Optional[str] = None) -> None:
        now = self.sim.now
        previous = self.state
        if previous is not None:
            elapsed = now - self._state_since
            self.state_durations[previous] += elapsed
            if previous is TaskState.READY and self._ready_reason == "preempted":
                self.preempted_time += elapsed
        if state is TaskState.READY and reason == "preempted":
            self.preempted_count += 1
        self._ready_reason = reason if state is TaskState.READY else None
        self.state = state
        self._state_since = now
        self.sim.record(
            StateRecord(now, self.name, state, self.processor_name, reason)
        )

    def state_ratio(self, state: TaskState, total: Optional[Time] = None) -> float:
        """Fraction of time spent in ``state`` (up to now by default)."""
        total = self.sim.now if total is None else total
        if total == 0:
            return 0.0
        duration = self.state_durations[state]
        if self.state is state:
            duration += self.sim.now - self._state_since
        return duration / total

    # ------------------------------------------------------------------
    # Primitive operations (generator methods; drive with ``yield from``)
    # ------------------------------------------------------------------
    def execute(self, duration: Time) -> Generator:
        """Consume ``duration`` of CPU time (preemptible under an RTOS)."""
        if duration < 0:
            raise ModelError(f"negative execute duration: {duration}")
        yield from self.context.execute(self, duration)

    def delay(self, duration: Time) -> Generator:
        """Suspend for wall-clock time without consuming the CPU."""
        if duration < 0:
            raise ModelError(f"negative delay duration: {duration}")
        yield from self.context.delay(self, duration)

    # -- events ---------------------------------------------------------
    def wait(self, event: EventRelation,
             timeout: Optional[Time] = None) -> Generator:
        """Wait on an MCSE event (consumes one memorized occurrence).

        ``timeout`` bounds the wait: ``0`` polls without blocking, any
        other value resumes empty-handed once it expires.  Returns True
        when an occurrence was consumed (always, for unbounded waits).
        """
        if event.try_wait():
            self._record_access(event, AccessKind.WAIT, blocked=False)
            return True
        if timeout == 0:
            self._record_access(event, AccessKind.WAIT, blocked=False)
            return False
        self._record_access(event, AccessKind.WAIT, blocked=True)
        waiter = event._enqueue_waiter(self)
        yield from self.context.block(self, waiter, event, timeout)
        return waiter.delivered

    def signal(self, event: EventRelation) -> Generator:
        """Signal an MCSE event (never blocks; may pay RTOS overhead)."""
        self._record_access(event, AccessKind.SIGNAL, blocked=False)
        event.signal()
        yield from self.context.after_signal(self, event)

    # -- message queues ---------------------------------------------------
    def read(self, queue: MessageQueue,
             timeout: Optional[Time] = None) -> Generator:
        """Take the oldest message from ``queue`` (blocks when empty).

        With a ``timeout`` the read is bounded: ``0`` polls, any other
        value gives up once it expires; a failed bounded read returns
        None.
        """
        ok, item = queue.try_get()
        if ok:
            self._record_access(queue, AccessKind.READ, blocked=False, value=item)
            # taking a message may have unblocked a writer
            yield from self.context.after_signal(self, queue)
            return item
        if timeout == 0:
            self._record_access(queue, AccessKind.READ, blocked=False)
            return None
        self._record_access(queue, AccessKind.READ, blocked=True)
        waiter = queue._enqueue_waiter(self)
        value = yield from self.context.block(self, waiter, queue, timeout)
        return value

    def write(self, queue: MessageQueue, item: object,
              timeout: Optional[Time] = None) -> Generator:
        """Append ``item`` to ``queue`` (blocks when full).

        With a ``timeout`` the write is bounded (``0`` polls); returns
        True when the message was accepted.
        """
        if queue.try_put(item):
            self._record_access(queue, AccessKind.WRITE, blocked=False, value=item)
            yield from self.context.after_signal(self, queue)
            return True
        if timeout == 0:
            self._record_access(queue, AccessKind.WRITE, blocked=False, value=item)
            return False
        self._record_access(queue, AccessKind.WRITE, blocked=True, value=item)
        waiter = queue.enqueue_writer(self, item)
        yield from self.context.block(self, waiter, queue, timeout)
        return waiter.delivered

    # -- eventflags -------------------------------------------------------
    def set_flag(self, flags: EventFlags, pattern: int) -> Generator:
        """OR ``pattern`` into an eventflag relation (never blocks)."""
        self._record_access(flags, AccessKind.SIGNAL, blocked=False,
                            value=pattern)
        flags.set(pattern)
        yield from self.context.after_signal(self, flags)

    def clear_flag(self, flags: EventFlags, mask: int) -> Generator:
        """AND an eventflag pattern with ``mask`` (never wakes anyone)."""
        self._record_access(flags, AccessKind.WRITE, blocked=False, value=mask)
        flags.clear(mask)
        return
        yield  # pragma: no cover - makes this a generator function

    def wait_flag(self, flags: EventFlags, pattern: int, mode: str = "or",
                  timeout: Optional[Time] = None) -> Generator:
        """Wait until ``pattern`` is satisfied under ``mode`` (and/or).

        Bounded like :meth:`wait`; returns True when satisfied.
        """
        if flags.try_wait_pattern(pattern, mode):
            self._record_access(flags, AccessKind.WAIT, blocked=False,
                                value=pattern)
            return True
        if timeout == 0:
            self._record_access(flags, AccessKind.WAIT, blocked=False,
                                value=pattern)
            return False
        self._record_access(flags, AccessKind.WAIT, blocked=True,
                            value=pattern)
        waiter = flags.enqueue_flag_waiter(self, pattern, mode)
        yield from self.context.block(self, waiter, flags, timeout)
        return waiter.delivered

    # -- shared variables -------------------------------------------------
    def lock(self, shared: SharedVariable) -> Generator:
        """Acquire exclusive access to ``shared``."""
        if shared.try_lock(self):
            self._record_access(shared, AccessKind.LOCK, blocked=False)
            return
        self._record_access(shared, AccessKind.LOCK, blocked=True)
        shared.contentions += 1
        waiter = shared._enqueue_waiter(self)
        yield from self.context.block(self, waiter, shared)

    def unlock(self, shared: SharedVariable) -> Generator:
        """Release ``shared``; ownership passes to the next waiter."""
        shared.unlock(self)
        self._record_access(shared, AccessKind.UNLOCK, blocked=False)
        yield from self.context.after_signal(self, shared)

    def read_shared(self, shared: SharedVariable, hold: Time = 0) -> Generator:
        """Convenience: lock, optionally hold for ``hold`` CPU time, read,
        unlock; returns the value."""
        yield from self.lock(shared)
        if hold:
            yield from self.execute(hold)
        value = shared.value
        yield from self.unlock(shared)
        return value

    def write_shared(self, shared: SharedVariable, value: object,
                     hold: Time = 0) -> Generator:
        """Convenience: lock, optionally hold, write ``value``, unlock."""
        yield from self.lock(shared)
        if hold:
            yield from self.execute(hold)
        shared.value = value
        yield from self.unlock(shared)

    # ------------------------------------------------------------------
    def _record_access(self, relation, kind: AccessKind, *, blocked: bool,
                       value: object = None) -> None:
        sim = self.sim
        if sim.recorder is not None or sim._observers:
            sim.record(
                AccessRecord(sim.now, self.name, relation.name, kind,
                             blocked, value)
            )
