"""Execution contexts: how a function's operations map onto a platform.

The same MCSE functional model can run

* directly on the simulation kernel -- a **hardware** function, fully
  concurrent with everything else (this module's
  :class:`HardwareContext`), or
* serialized on a processor under an RTOS -- a **software** task (the
  contexts in :mod:`repro.rtos`, which subclass
  :class:`ExecutionContext`).

A context translates the four primitive operations of a function --
*execute* (consume CPU time), *block* (suspend on a relation), *delay*
(wait wall-clock time) and *deliver* (be woken by someone else) -- into
kernel waits plus, for RTOS contexts, the scheduling protocol of the
paper's §4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..kernel.time import Time
from ..trace.records import TaskState
from .relations import Relation, Waiter

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function


class ExecutionContext:
    """Abstract mapping of function operations onto a platform."""

    #: Short platform label used in traces ("hw", "rtos").
    kind = "abstract"

    def run(self, function: "Function") -> Generator:
        """Wrap the function's behavior with platform start/stop protocol."""
        raise NotImplementedError

    def execute(self, function: "Function", duration: Time) -> Generator:
        """Consume ``duration`` of CPU time (preemptible under an RTOS)."""
        raise NotImplementedError

    def block(self, function: "Function", waiter: Waiter,
              relation: Relation, timeout: Optional[Time] = None) -> Generator:
        """Suspend until ``waiter`` is delivered; returns the value.

        With a ``timeout`` the suspension is bounded: on expiry the
        waiter is withdrawn from the relation and the function resumes
        with ``waiter.delivered`` still False.
        """
        raise NotImplementedError

    def delay(self, function: "Function", duration: Time) -> Generator:
        """Suspend for wall-clock ``duration`` without consuming CPU."""
        raise NotImplementedError

    def on_deliver(self, function: "Function", waiter: Waiter) -> None:
        """React to ``function`` being woken (called on the waker's thread)."""
        raise NotImplementedError

    def after_signal(self, function: "Function",
                     relation: Relation) -> Generator:
        """Account platform costs of an operation that may have woken
        someone (RTOS scheduling duration, possible self-preemption)."""
        raise NotImplementedError


class HardwareContext(ExecutionContext):
    """Fully concurrent execution directly on the kernel.

    A hardware function is never preempted and pays no OS overhead: an
    execute is a plain timed wait, a block is a plain event wait.
    """

    kind = "hw"

    def run(self, function: "Function") -> Generator:
        function._set_state(TaskState.CREATED)
        function._set_state(TaskState.RUNNING)
        try:
            yield from function.behavior()
        finally:
            function._set_state(TaskState.TERMINATED)

    def execute(self, function: "Function", duration: Time) -> Generator:
        if duration > 0:
            yield duration

    def block(self, function: "Function", waiter: Waiter,
              relation: Relation, timeout: Optional[Time] = None) -> Generator:
        state = (
            TaskState.WAITING_RESOURCE if relation.resource else TaskState.WAITING
        )
        function._set_state(state, reason="blocked")
        if not waiter.delivered:
            if timeout is None:
                yield waiter.event
            else:
                from ..kernel.process import wait_any

                yield wait_any(waiter.event, timeout=timeout)
                if not waiter.delivered:
                    relation.withdraw(waiter)
        function._set_state(
            TaskState.RUNNING,
            reason="woken" if waiter.delivered else "timeout",
        )
        return waiter.value

    def delay(self, function: "Function", duration: Time) -> Generator:
        function._set_state(TaskState.WAITING, reason="delay")
        if duration > 0:
            yield duration
        function._set_state(TaskState.RUNNING, reason="woken")

    def on_deliver(self, function: "Function", waiter: Waiter) -> None:
        waiter.event.notify()

    def after_signal(self, function: "Function",
                     relation: Relation) -> Generator:
        return
        yield  # pragma: no cover - makes this a generator function


#: Shared stateless instance used as every function's default context.
HARDWARE_CONTEXT = HardwareContext()
