"""MCSE message queues: bounded producer/consumer relations.

A :class:`MessageQueue` implements the paper's producer/consumer relation
with a configurable message capacity (§2).  Readers block on an empty
queue, writers on a full one.  Both sides use direct handoff:

* a ``put`` on a queue with blocked readers bypasses the buffer and
  delivers to the first reader (the buffer is necessarily empty then);
* a ``get`` that frees a slot immediately pulls in the payload of the
  oldest blocked writer and wakes it.

This keeps the number of Ready transitions seen by the RTOS layer equal
to the number of messages actually exchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ModelError
from ..kernel.simulator import Simulator
from .relations import Relation, Waiter


class MessageQueue(Relation):
    """A bounded FIFO message relation.

    Parameters
    ----------
    capacity:
        Maximum buffered messages; ``None`` means unbounded (writers
        never block).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "queue",
        capacity: Optional[int] = 8,
        wake_order: str = "fifo",
    ) -> None:
        super().__init__(sim, name, wake_order)
        if capacity is not None and capacity < 1:
            raise ModelError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: List[object] = []
        # reader waiters live in the base-class list; writer waiters here
        self._writer_waiters: List[Waiter] = []
        self.total_put = 0
        self.total_got = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def writer_waiter_count(self) -> int:
        return len(self._writer_waiters)

    # ------------------------------------------------------------------
    # Non-blocking halves (the Function wrappers build on these)
    # ------------------------------------------------------------------
    def try_put(self, item: object) -> bool:
        """Store or hand off ``item``; False when the queue is full."""
        self.access_count += 1
        reader = self._pop_waiter()
        if reader is not None:
            # buffer must be empty, or the reader would have drained it
            self.total_put += 1
            self.total_got += 1
            self._deliver(reader, item)
            return True
        if self.full:
            self.access_count -= 1  # the failed attempt will be retried
            return False
        self._items.append(item)
        self.total_put += 1
        self._occ_set(len(self._items))
        return True

    def try_get(self) -> Tuple[bool, object]:
        """Take the oldest message; ``(False, None)`` when empty."""
        if not self._items:
            return False, None
        self.access_count += 1
        item = self._items.pop(0)
        self.total_got += 1
        # a freed slot un-blocks the oldest writer, if any
        writer = self._pop_writer_waiter()
        if writer is not None:
            self._items.append(writer.payload)
            self.total_put += 1
            self._deliver(writer)
        self._occ_set(len(self._items))
        return True, item

    # ------------------------------------------------------------------
    # Waiter plumbing used by Function wrappers
    # ------------------------------------------------------------------
    def enqueue_writer(self, function, item: object) -> Waiter:
        waiter = Waiter(function, self._wake_event_for(function), item)
        self._writer_waiters.append(waiter)
        self.blocked_count += 1
        return waiter

    def _pop_writer_waiter(self) -> Optional[Waiter]:
        if not self._writer_waiters:
            return None
        if self.wake_order == "priority":
            best = max(
                range(len(self._writer_waiters)),
                key=lambda i: self._priority_of(self._writer_waiters[i]),
            )
            return self._writer_waiters.pop(best)
        return self._writer_waiters.pop(0)

    def remove_writer_waiter(self, waiter: Waiter) -> None:
        try:
            self._writer_waiters.remove(waiter)
        except ValueError:
            pass

    def withdraw(self, waiter: Waiter) -> None:
        self.remove_waiter(waiter)
        self.remove_writer_waiter(waiter)
