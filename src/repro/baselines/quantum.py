"""The clock-quantum preemption baseline (Gerstlauer/Gajski-style [1]).

The paper's central accuracy claim against the SpecC RTOS model of
DATE'03 is that *their* preemption precision "depends on the model's
clock accuracy", whereas the model reproduced in :mod:`repro.rtos`
preempts at exact event times.  To quantify that difference we implement
the quantum-limited behaviour as a drop-in processor: computation
advances in indivisible quanta, and preemption requests are only honored
at quantum boundaries.

With quantum ``q``, a hardware event arriving mid-quantum waits up to
``q`` before the scheduler reacts; the benchmark
``bench_quantum_accuracy`` sweeps ``q`` and shows the reaction-latency
error growing linearly while the exact model stays at zero -- the
paper's Figure-6-style reaction stays 15us regardless of any clock.
"""

from __future__ import annotations

from typing import Generator

from ..errors import RTOSError
from ..kernel.process import wait_for
from ..kernel.time import Time
from ..rtos.procedural import ProceduralContext, ProceduralProcessor


class QuantumContext(ProceduralContext):
    """Execute in indivisible quanta; preemption only at boundaries."""

    def __init__(self, processor: "QuantumProcessor") -> None:
        super().__init__(processor)
        self.quantum = processor.quantum

    def execute(self, function, duration: Time) -> Generator:
        cpu = self.processor
        task = function.task
        duration = cpu.scale_duration(duration)
        if duration == 0:
            if task.preempt_pending:
                yield from self._self_preempt(task, pay_sched=True)
            return
        remaining = duration
        task.remaining_budget = remaining
        while remaining > 0:
            if task.preempt_pending:
                yield from self._self_preempt(task, pay_sched=True)
                continue
            chunk = min(self.quantum, remaining)
            # the quantum is indivisible: a preemption request arriving
            # inside it is only observed at the boundary (the modelling
            # error of clock-driven RTOS models)
            yield wait_for(chunk)
            remaining -= chunk
            task.cpu_time += chunk
            task.remaining_budget = remaining
        task.remaining_budget = None


class QuantumProcessor(ProceduralProcessor):
    """A processor whose RTOS model has quantum-limited preemption."""

    engine = "quantum"

    def __init__(self, sim, name, *, quantum: Time, **kwargs) -> None:
        if quantum <= 0:
            raise RTOSError(f"quantum must be positive: {quantum}")
        self.quantum = quantum
        super().__init__(sim, name, **kwargs)

    def _make_context(self) -> QuantumContext:
        return QuantumContext(self)

    def request_preempt(self, running, by=None) -> None:
        """Record the request but do NOT interrupt the current quantum."""
        if running.preempt_pending:
            return
        running.preempt_pending = True
        running.preempted_by = by.name if by is not None else None
        # note: no preempt_event notification -- the boundary check in
        # QuantumContext.execute is the only reaction point
