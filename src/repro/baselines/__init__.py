"""Comparison baselines: the untimed functional model and the
quantum-limited preemption model the paper positions itself against."""

from .quantum import QuantumContext, QuantumProcessor
from .untimed import build_untimed, strip_mapping

__all__ = [
    "QuantumContext",
    "QuantumProcessor",
    "build_untimed",
    "strip_mapping",
]
