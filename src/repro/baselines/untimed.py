"""The untimed / fully-concurrent baseline ("SystemC 2.0 only").

The paper's §2 first level of simulation: run the functional model with
every function concurrent and no platform at all.  This "verifies the
correctness of the system's behavior and algorithms" but, as the paper
stresses, tells you nothing about the effect of task serialization or
RTOS overheads -- which is exactly what the benchmarks demonstrate by
comparing this baseline against the RTOS-mapped runs.
"""

from __future__ import annotations

import copy
from typing import Dict

from ..mcse.builder import build_system
from ..mcse.model import System


def strip_mapping(spec: Dict) -> Dict:
    """Remove processors and mappings from a declarative system spec.

    Returns a deep copy: the original spec is untouched.
    """
    stripped = copy.deepcopy(spec)
    stripped.pop("processors", None)
    for fn_spec in stripped.get("functions", ()):
        fn_spec.pop("processor", None)
    return stripped


def build_untimed(spec: Dict, sim=None) -> System:
    """Elaborate ``spec`` with all platform effects removed.

    Every function becomes a concurrent hardware function; executes take
    their nominal durations with no serialization and no RTOS overheads.
    """
    return build_system(strip_mapping(spec), sim=sim)
