"""pyrtos-sc: a generic RTOS model for real-time systems simulation.

A Python reproduction of R. Le Moigne, O. Pasquier and J-P. Calvez,
*A Generic RTOS Model for Real-time Systems Simulation with SystemC*,
DATE 2004.

Layers (bottom-up):

* :mod:`repro.kernel`   -- SystemC-like discrete-event kernel.
* :mod:`repro.mcse`     -- MCSE functional model (functions + relations).
* :mod:`repro.rtos`     -- the paper's contribution: the generic RTOS model.
* :mod:`repro.trace`    -- timeline charts, statistics, VCD/SVG export.
* :mod:`repro.analysis` -- latency measurements, timing constraints, RTA.
* :mod:`repro.campaign` -- parallel/cached batch execution of campaigns.
* :mod:`repro.baselines`-- untimed and quantum-preemption baselines.
* :mod:`repro.comm`     -- shared-bus interconnect substrate.
* :mod:`repro.codegen`  -- C software generation (the paper's future work).
* :mod:`repro.workloads`-- synthetic task sets and the MPEG-2 SoC model.

The most common names are re-exported here for quick starts::

    from repro import MS, System, TraceRecorder, US
"""

__version__ = "1.0.0"

from .kernel import Simulator
from .kernel.time import FS, MS, NS, PS, SEC, US, format_time, parse_time
from .mcse import Function, System, build_system
from .trace import TimelineChart, TraceRecorder

__all__ = [
    "FS",
    "Function",
    "MS",
    "NS",
    "PS",
    "SEC",
    "Simulator",
    "System",
    "TimelineChart",
    "TraceRecorder",
    "US",
    "__version__",
    "build_system",
    "format_time",
    "parse_time",
]
