"""Service metrics: counters, gauges, latency summaries, Prometheus text.

The gateway keeps every operational signal in one :class:`Registry` so
``GET /metrics`` can render a self-consistent snapshot in the Prometheus
`text exposition format`__ without any third-party client library:

* :class:`Counter` -- monotonically increasing totals, optionally
  labelled (``pyrtos_requests_total{endpoint="/v1/simulate"}``);
* :class:`Gauge` -- point-in-time values, either set explicitly or
  computed by a callback at scrape time (queue depth, cache size);
* :class:`Summary` -- latency quantiles (p50/p95/p99) over a bounded
  sliding window of observations, plus lifetime ``_count``/``_sum``.

Everything is thread-safe: handler threads, worker threads and the
scraper all touch the registry concurrently.

__ https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: Quantiles every summary exposes, matching the ISSUE's p50/p95/p99.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

#: Observations kept per summary window; old samples age out so the
#: quantiles track recent behaviour rather than the whole process life.
SUMMARY_WINDOW = 2048


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    rendered = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + rendered + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class Metric:
    """Base class: a named family of labelled series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Iterable[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _label_key(self, labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple((name, str(labels[name])) for name in self.labelnames)

    # Subclasses yield (suffix, labels, value) triples.
    def samples(self) -> Iterable[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        raise NotImplementedError

    def render(self) -> str:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for suffix, labels, value in self.samples():
            lines.append(
                f"{self.name}{suffix}{_format_labels(labels)} "
                f"{_format_value(value)}"
            )
        return "\n".join(lines)


class Counter(Metric):
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def samples(self):
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0)]
        for labels, value in items:
            yield "", labels, value


class Gauge(Metric):
    """A point-in-time value, set directly or computed at scrape time."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, *,
                 callback: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name, help_text)
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def value(self) -> float:
        if self._callback is not None:
            return self._callback()
        with self._lock:
            return self._value

    def samples(self):
        yield "", (), self.value()


class Summary(Metric):
    """Latency quantiles over a sliding window plus lifetime count/sum.

    Exposes ``name{<labels>,quantile="0.5|0.95|0.99"}`` computed over
    the last :data:`SUMMARY_WINDOW` observations per label set, and the
    conventional ``name_count`` / ``name_sum`` lifetime series.
    """

    kind = "summary"

    def __init__(self, name: str, help_text: str,
                 labelnames: Iterable[str] = (),
                 window: int = SUMMARY_WINDOW) -> None:
        super().__init__(name, help_text, labelnames)
        self.window = window
        self._observations: Dict[Tuple[Tuple[str, str], ...], deque] = {}
        self._counts: Dict[Tuple[Tuple[str, str], ...], int] = {}
        self._sums: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._label_key(labels)
        with self._lock:
            bucket = self._observations.get(key)
            if bucket is None:
                bucket = self._observations[key] = deque(maxlen=self.window)
            bucket.append(float(value))
            self._counts[key] = self._counts.get(key, 0) + 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        key = self._label_key(labels)
        with self._lock:
            bucket = self._observations.get(key)
            window = sorted(bucket) if bucket else []
        return _quantile(window, q)

    def samples(self):
        with self._lock:
            snapshot = {
                key: (sorted(bucket), self._counts[key], self._sums[key])
                for key, bucket in self._observations.items()
            }
        for key in sorted(snapshot):
            window, count, total = snapshot[key]
            for q in SUMMARY_QUANTILES:
                value = _quantile(window, q)
                if value is None:
                    continue
                yield "", key + (("quantile", str(q)),), value
            yield "_count", key, count
            yield "_sum", key, round(total, 9)


def _quantile(window: List[float], q: float) -> Optional[float]:
    """Nearest-rank quantile of an already-sorted sample (None if empty)."""
    if not window:
        return None
    rank = max(0, min(len(window) - 1, int(round(q * (len(window) - 1)))))
    return window[rank]


class Registry:
    """An ordered collection of metrics rendered as one scrape payload."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def register(self, metric: Metric) -> Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str,
                labelnames: Iterable[str] = ()) -> Counter:
        return self.register(Counter(name, help_text, labelnames))

    def gauge(self, name: str, help_text: str, *,
              callback: Optional[Callable[[], float]] = None) -> Gauge:
        return self.register(Gauge(name, help_text, callback=callback))

    def summary(self, name: str, help_text: str,
                labelnames: Iterable[str] = ()) -> Summary:
        return self.register(Summary(name, help_text, labelnames))

    def get(self, name: str) -> Metric:
        with self._lock:
            return self._metrics[name]

    def render(self) -> str:
        """The full scrape payload (Prometheus text exposition v0.0.4)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return "\n".join(metric.render() for metric in metrics) + "\n"


def build_gateway_metrics(registry: Registry) -> Dict[str, Metric]:
    """Register the gateway's standard metric families on ``registry``."""
    return {
        "requests": registry.counter(
            "pyrtos_requests_total",
            "HTTP requests received, by endpoint and status code.",
            ("endpoint", "status"),
        ),
        "admissions": registry.counter(
            "pyrtos_admissions_total",
            "Jobs admitted to the execution queue, by kind.",
            ("kind",),
        ),
        "rejections": registry.counter(
            "pyrtos_rejections_total",
            "Requests rejected before execution, by reason "
            "(rate_limit, queue_full, lint, draining, invalid).",
            ("reason",),
        ),
        "jobs_completed": registry.counter(
            "pyrtos_jobs_completed_total",
            "Jobs finished, by kind and outcome (done, failed).",
            ("kind", "outcome"),
        ),
        "cache_hits": registry.counter(
            "pyrtos_cache_hits_total",
            "Job-dedup cache hits (request served without re-simulating).",
        ),
        "cache_misses": registry.counter(
            "pyrtos_cache_misses_total",
            "Job-dedup cache misses (request required a fresh simulation).",
        ),
        "latency": registry.summary(
            "pyrtos_request_seconds",
            "Wall-clock request latency by endpoint "
            "(p50/p95/p99 over a sliding window).",
            ("endpoint",),
        ),
        "job_latency": registry.summary(
            "pyrtos_job_seconds",
            "Job execution latency by kind (queue wait excluded).",
            ("kind",),
        ),
    }
