"""Simulation-as-a-service: an HTTP gateway over the whole toolchain.

The paper pitches the RTOS model as a *shared* early-design-phase tool;
this package is the delivery layer that makes it one.  ``pyrtos-sc
serve --port N`` runs a stdlib-only HTTP service accepting the same
JSON system specs as ``pyrtos-sc run``/``campaign`` and composing every
prior subsystem behind a network API:

* :class:`Gateway` -- router + lifecycle (``/v1/simulate``,
  ``/v1/campaign``, ``/v1/lint``, job polling, trace exports,
  ``/healthz``, ``/metrics``; graceful SIGTERM drain);
* :class:`JobStore` -- content-hash request dedup reusing the
  :mod:`repro.campaign` cache hashing (a re-submitted spec is a cache
  hit, not a re-run);
* :class:`AdmissionQueue` / :class:`TokenBucket` -- bounded admission
  with 429 + ``Retry-After`` backpressure and per-client rate limits;
* :class:`WorkerPool` + :func:`validate_spec` -- execution through the
  campaign Runner, gated by :mod:`repro.analyze` (bad specs are 422s,
  never simulations);
* :class:`Registry` -- counters and latency summaries in Prometheus
  text exposition.

See ``docs/serving.md`` for the API reference and deployment notes.
"""

from .app import Gateway
from .jobs import CAMPAIGN_SPEC, SIMULATE_SPEC, Job, JobStore, UnknownJob
from .metrics import Counter, Gauge, Registry, Summary
from .queue import AdmissionQueue, QueueFull, RateLimited, TokenBucket
from .workers import LintRejected, WorkerPool, validate_spec

__all__ = [
    "AdmissionQueue",
    "CAMPAIGN_SPEC",
    "Counter",
    "Gauge",
    "Gateway",
    "Job",
    "JobStore",
    "LintRejected",
    "QueueFull",
    "RateLimited",
    "Registry",
    "SIMULATE_SPEC",
    "Summary",
    "TokenBucket",
    "UnknownJob",
    "WorkerPool",
    "validate_spec",
]
